//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde
//! derive machinery (syn/quote/proc-macro2) cannot be used. Nothing in this
//! workspace serializes through serde at runtime — the derives only keep the
//! public API source-compatible with the real crate — so the stub derive
//! macros accept the input and expand to nothing. Types therefore do *not*
//! implement `serde::Serialize`/`Deserialize`; swap in the real crates once
//! a registry is reachable.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
