//! Offline stub of `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of the proptest API the workspace's property tests use, backed by
//! a deterministic SplitMix64 generator seeded from each test's module path:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`strategy::Strategy`] with `prop_map`, integer-range and tuple
//!   strategies, [`prelude::any`] and `prop::collection::vec`.
//!
//! Differences from real proptest: no shrinking on failure (the failing
//! input is printed instead via the assertion message), and generation is
//! fully deterministic — the same inputs are replayed on every run, which
//! this repository prefers (bit-reproducible CI) over fresh exploration.

pub mod test_runner {
    //! Deterministic random generation for test cases.

    /// SplitMix64 generator (same constants as `tnpu_sim::rng`, duplicated
    //  here so the stub stays dependency-free and usable from every crate).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from raw state.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed deterministically from a test's fully-qualified name.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name seeds the SplitMix64 state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be non-zero");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Per-run configuration; mirrors `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property is exercised with.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`; mirrors
        /// `Strategy::prop_map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value; mirrors `Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                #[allow(unused_comparisons)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                #[allow(unused_comparisons)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    (start as i128 + rng.below(span.saturating_add(1)) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );

    /// Types with a canonical whole-domain strategy; mirrors `Arbitrary`.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform choice between same-valued strategies; produced by
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from the already-erased options; mirrors `Union::new`.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Erase a strategy's concrete type for [`Union`] storage.
    #[doc(hidden)]
    #[must_use]
    pub fn __erase<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Whole-domain strategy returned by [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: core::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive size specification; built from a `usize` (exact
    /// length) or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    /// Strategy yielding `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec`: vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prop` facade module (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{Any, Arbitrary, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The canonical whole-domain strategy for `T`; mirrors
    /// `proptest::prelude::any`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Uniform choice between strategies yielding the same value type;
/// mirrors `proptest::prop_oneof!` (unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::__erase($strategy)),+])
    };
}

/// Property assertion; panics (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; panics (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion; panics (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The `proptest!` block: each contained `#[test] fn name(pat in strategy,
/// ...) { .. }` becomes a test running its body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
            let w = Strategy::generate(&(0usize..=3), &mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        let mut c = TestRng::for_test("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::new(11);
        let exact = collection::vec(any::<u8>(), 64).generate(&mut rng);
        assert_eq!(exact.len(), 64);
        for _ in 0..100 {
            let v = collection::vec(0u64..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::new(7);
        let strat = (0u64..4, any::<bool>()).prop_map(|(a, b)| (a * 2, !b));
        let (a, _b) = strat.generate(&mut rng);
        assert!(a < 8 && a % 2 == 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 1u64..100, flip in any::<bool>()) {
            prop_assert!((1..100).contains(&x));
            let y = if flip { x } else { x + 1 };
            prop_assert_ne!(y, 0);
        }
    }
}
