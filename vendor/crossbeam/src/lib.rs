//! Offline stub of `crossbeam`.
//!
//! Only the `crossbeam::thread` scoped-spawn API used by this workspace is
//! provided, implemented directly over [`std::thread::scope`] (stable since
//! Rust 1.63, which predates this toolchain). Semantics match crossbeam's:
//! spawned threads may borrow from the enclosing stack frame and are joined
//! before `scope` returns.

pub mod thread {
    //! Scoped threads mirroring `crossbeam::thread`.

    use std::any::Any;
    use std::thread as std_thread;

    /// A scope for spawning borrowing threads; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; mirrors
    /// `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope again so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope, run `f` inside it, and join every spawned thread
    /// before returning.
    ///
    /// crossbeam returns `Err` with the first panic payload when a child
    /// panicked and its handle was not joined; with `std::thread::scope`
    /// such a panic propagates out of the scope instead, so this stub
    /// catches it to preserve the `Result` contract callers match on.
    ///
    /// # Errors
    ///
    /// Returns the panic payload of `f` or of an unjoined child thread.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std_thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let sum = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panic"))
                    .sum::<u64>()
            })
            .expect("scope");
            assert_eq!(sum, 100);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let r = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().expect("inner"))
                    .join()
                    .expect("outer")
            })
            .expect("scope");
            assert_eq!(r, 7);
        }

        #[test]
        fn child_panic_reported_as_err() {
            let r = super::scope(|s| {
                s.spawn::<_, ()>(|_| panic!("child dies"));
            });
            assert!(r.is_err());
        }
    }
}
