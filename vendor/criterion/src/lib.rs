//! Offline stub of `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, throughput
//! annotation, `Bencher::iter`) as a plain wall-clock harness: each
//! benchmark is warmed up, then timed over enough iterations to cover a
//! fixed measurement window, and a single `ns/iter` line is printed. No
//! statistics, plotting, or HTML reports — swap in the real crate when a
//! registry is reachable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation; only affects the printed rate line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives one benchmark's timed closure.
pub struct Bencher {
    /// Measured mean duration of one iteration.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Time `f`, first warming up briefly, then measuring over enough
    /// iterations to fill the measurement window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        const WARMUP: Duration = Duration::from_millis(20);
        const MEASURE: Duration = Duration::from_millis(120);

        // Warm-up: also discovers an iteration-count estimate.
        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < WARMUP || iters == 0 {
            black_box(f());
            iters += 1;
        }
        let per_iter = WARMUP.as_secs_f64() / iters as f64;
        let timed_iters = ((MEASURE.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let start = Instant::now();
        for _ in 0..timed_iters {
            black_box(f());
        }
        self.elapsed_per_iter = start.elapsed() / u32::try_from(timed_iters).unwrap_or(u32::MAX);
    }
}

/// A named collection of benchmarks; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark and print its timing.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, self.throughput, &mut f);
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level harness handle; mirrors `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, None, &mut f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut F,
    ) {
        let mut bencher = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher);
        let ns = bencher.elapsed_per_iter.as_nanos();
        let secs = bencher.elapsed_per_iter.as_secs_f64();
        let rate = match throughput {
            Some(Throughput::Bytes(b)) if secs > 0.0 => {
                format!("  ({:.1} MiB/s)", b as f64 / secs / (1 << 20) as f64)
            }
            Some(Throughput::Elements(e)) if secs > 0.0 => {
                format!("  ({:.2} Melem/s)", e as f64 / secs / 1e6)
            }
            _ => String::new(),
        };
        println!("{id:<40} {ns:>12} ns/iter{rate}");
    }
}

/// Declare a group function running each listed benchmark; mirrors
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`; mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(1));
        group.bench_function("spin", |b| {
            b.iter(|| black_box(1u64 + 1));
        });
        group.finish();
    }
}
