//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros from the stub `serde_derive`, so code written against
//! the real serde API (`#[derive(serde::Serialize, serde::Deserialize)]`)
//! compiles unchanged in this offline build environment. No serialization is
//! performed anywhere in the workspace; replace with the real crates when a
//! registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods, no lifetime —
/// the stub derive never implements it).
pub trait Deserialize {}
