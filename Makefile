# Convenience aliases for the checks CI runs. `make check` is the full gate.

.PHONY: build test fmt clippy lint lint-sarif attacks faults serve decode check bench

build:
	cargo build --release --workspace --locked

test:
	cargo test -q --workspace --locked

fmt:
	cargo fmt --all --check

clippy:
	cargo clippy --workspace --all-targets --locked -- -D warnings

# Workspace-policy linter (determinism / unit-safety / security-hygiene
# rules plus the call-graph semantic families); --deny-all turns every
# finding into a nonzero exit and --deny-unused-allows fails on stale
# suppression comments. See LINTS.md.
lint:
	cargo run -p tnpu-lint --release --locked -- --deny-all --deny-unused-allows

# SARIF 2.1.0 report for code-scanning upload (written to tnpu-lint.sarif).
lint-sarif:
	cargo run -p tnpu-lint --release --locked -- --format sarif > tnpu-lint.sarif

# Adversarial attack-injection matrix over the functional schemes;
# --deny-undetected fails if any cell contradicts the paper's claims.
attacks:
	cargo run -p tnpu-bench --release --locked --bin attacks -- --deny-undetected

# Environmental-fault resilience matrix (transient/persistent bit errors,
# DMA drops/stalls, crypto soft errors) with the recovery layer enabled;
# --deny-corrupted fails if any protected scheme computed on faulty data.
faults:
	cargo run -p tnpu-bench --release --locked --bin faults -- --deny-corrupted

# Multi-tenant serving tables (tail latency / throughput with context
# switches charged through each scheme's engine) plus the attack matrix
# on preempted and co-resident contexts; --deny-undetected fails if any
# extended cell contradicts the claims or the stale-TLB window is open.
serve:
	cargo run -p tnpu-bench --release --locked --bin serve -- --quick --deny-undetected

# Dynamic-dataflow crossover (autoregressive decode + training churn):
# sequence length x version limit x scheme with the tree-less scheme's
# epoch sweeps amortized in, joined with the attack and fault matrices
# on the decode model; both deny gates must hold.
decode:
	cargo run -p tnpu-bench --release --locked --bin decode -- --quick --deny-undetected --deny-corrupted

# Perf-trajectory harness: run the full experiment matrix and append one
# timing record (per-pool and total wall seconds, thread count, cell
# count) to BENCH_sweep.json. stdout still carries the byte-stable
# results; compare it against the checked-in golden output.
bench:
	cargo build --release -p tnpu-bench --locked
	./target/release/experiments --bench-json BENCH_sweep.json all > /tmp/tnpu_bench_out.txt
	diff -q results_full.txt /tmp/tnpu_bench_out.txt

check: build test fmt clippy lint attacks faults serve decode
