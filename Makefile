# Convenience aliases for the checks CI runs. `make check` is the full gate.

.PHONY: build test fmt clippy lint attacks check

build:
	cargo build --release --workspace --locked

test:
	cargo test -q --workspace --locked

fmt:
	cargo fmt --all --check

clippy:
	cargo clippy --workspace --all-targets --locked -- -D warnings

# Workspace-policy linter (determinism / unit-safety / security-hygiene
# rules); --deny-all turns every finding into a nonzero exit. See LINTS.md.
lint:
	cargo run -p tnpu-lint --release --locked -- --deny-all

# Adversarial attack-injection matrix over the functional schemes;
# --deny-undetected fails if any cell contradicts the paper's claims.
attacks:
	cargo run -p tnpu-bench --release --locked --bin attacks -- --deny-undetected

check: build test fmt clippy lint attacks
