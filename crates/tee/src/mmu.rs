//! MMU / IOMMU with a validated TLB (paper Fig. 11).
//!
//! The security invariant: *"the TLB must always contain only validated
//! translation"* (§II-A). A TLB miss walks the (untrusted) page table and
//! then validates the candidate translation against the EEPCM; only on
//! success is the entry cached. TLB entries are tagged with the enclave and
//! access rights they were validated for.

use crate::epcm::Eepcm;
use crate::pagetable::PageTable;
use crate::{Access, AccessError, EnclaveId, Perms, Ppn, Vpn};
use std::collections::BTreeMap;

/// Statistics of one MMU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// TLB hits.
    pub hits: u64,
    /// TLB misses that validated successfully.
    pub fills: u64,
    /// Validation failures (attacks or misconfigurations caught).
    pub faults: u64,
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    ppn: Ppn,
    perms: Perms,
    stamp: u64,
}

/// An MMU (for a CPU core) or IOMMU (for an NPU), bound to one enclave
/// context.
#[derive(Debug)]
pub struct Mmu {
    owner: EnclaveId,
    capacity: usize,
    tlb: BTreeMap<u64, TlbEntry>,
    tick: u64,
    stats: MmuStats,
}

impl Mmu {
    /// An MMU serving `owner` with a TLB of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(owner: EnclaveId, capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Mmu {
            owner,
            capacity,
            tlb: BTreeMap::new(),
            tick: 0,
            stats: MmuStats::default(),
        }
    }

    /// The enclave this MMU serves.
    #[must_use]
    pub fn owner(&self) -> EnclaveId {
        self.owner
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// Translate `vpn` for `access`, walking `table` and validating
    /// against `eepcm` on a miss.
    ///
    /// # Errors
    ///
    /// Any [`AccessError`] from the EEPCM validation, or
    /// [`AccessError::NotMapped`] if the OS removed the mapping. Failed
    /// translations never enter the TLB.
    pub fn translate(
        &mut self,
        table: &PageTable,
        eepcm: &Eepcm,
        vpn: Vpn,
        access: Access,
    ) -> Result<Ppn, AccessError> {
        self.tick += 1;
        if let Some(entry) = self.tlb.get_mut(&vpn.0) {
            if entry.perms.allows(access) {
                entry.stamp = self.tick;
                self.stats.hits += 1;
                return Ok(entry.ppn);
            }
            // Cached translation lacks the right; treat as a permission
            // fault (re-walking would not help — perms come from EEPCM).
            self.stats.faults += 1;
            return Err(AccessError::PermissionDenied { access });
        }
        let ppn = match table.walk(vpn) {
            Some(p) => p,
            None => {
                self.stats.faults += 1;
                return Err(AccessError::NotMapped { vpn });
            }
        };
        if let Err(e) = eepcm.validate(self.owner, vpn, ppn, access) {
            self.stats.faults += 1;
            return Err(e);
        }
        let perms = match eepcm.state(ppn) {
            crate::epcm::PageState::Protected { perms, .. } => perms,
            // tnpu-lint: allow(panic-path) — validate() above errored out
            // on any non-Protected page, so Free cannot reach this arm.
            crate::epcm::PageState::Free => unreachable!("validated pages are protected"),
        };
        if self.tlb.len() >= self.capacity {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = self.tlb.iter().min_by_key(|(_, e)| e.stamp) {
                self.tlb.remove(&victim);
            }
        }
        self.tlb.insert(
            vpn.0,
            TlbEntry {
                ppn,
                perms,
                stamp: self.tick,
            },
        );
        self.stats.fills += 1;
        Ok(ppn)
    }

    /// Re-point this MMU at a new owning enclave (a context switch on the
    /// NPU this IOMMU fronts).
    ///
    /// Deliberately does **not** touch the TLB: the ownership register and
    /// the TLB array are distinct hardware state, and the shoot-down is a
    /// separate, explicit step the driver must issue ([`flush_tlb`]).
    /// Skipping it leaves translations validated for the previous tenant
    /// live — the stale-TLB window the session teardown path must close.
    ///
    /// [`flush_tlb`]: Mmu::flush_tlb
    pub fn assign(&mut self, owner: EnclaveId) {
        self.owner = owner;
    }

    /// Invalidate the whole TLB (context switch / page release — the OS
    /// must shoot down stale validated entries; the hardware enforces this
    /// on EEPCM state transitions).
    pub fn flush_tlb(&mut self) {
        self.tlb.clear();
    }

    /// Whether a translation for `vpn` is cached.
    #[must_use]
    pub fn cached(&self, vpn: Vpn) -> bool {
        self.tlb.contains_key(&vpn.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E1: EnclaveId = EnclaveId(1);
    const E2: EnclaveId = EnclaveId(2);

    fn setup() -> (PageTable, Eepcm, Mmu) {
        let mut pt = PageTable::new();
        let mut eepcm = Eepcm::new();
        pt.map(Vpn(1), Ppn(100));
        eepcm
            .assign(Ppn(100), E1, Vpn(1), Perms::RW, true)
            .expect("free");
        (pt, eepcm, Mmu::new(E1, 4))
    }

    #[test]
    fn miss_validates_then_hits() {
        let (pt, eepcm, mut mmu) = setup();
        assert_eq!(
            mmu.translate(&pt, &eepcm, Vpn(1), Access::Read),
            Ok(Ppn(100))
        );
        assert_eq!(mmu.stats().fills, 1);
        assert_eq!(
            mmu.translate(&pt, &eepcm, Vpn(1), Access::Read),
            Ok(Ppn(100))
        );
        assert_eq!(mmu.stats().hits, 1);
    }

    #[test]
    fn os_remap_attack_caught_at_fill() {
        let (mut pt, mut eepcm, mut mmu) = setup();
        // A second page of the victim at vpn 2.
        pt.map(Vpn(2), Ppn(101));
        eepcm
            .assign(Ppn(101), E1, Vpn(2), Perms::RW, true)
            .expect("free");
        // The OS swaps the two mappings (remap attack).
        pt.map(Vpn(1), Ppn(101));
        assert!(matches!(
            mmu.translate(&pt, &eepcm, Vpn(1), Access::Read),
            Err(AccessError::RemapDetected { .. })
        ));
        assert_eq!(mmu.stats().faults, 1);
        assert!(!mmu.cached(Vpn(1)), "failed translation must not be cached");
    }

    #[test]
    fn cross_enclave_mapping_caught() {
        let (mut pt, mut eepcm, mut mmu) = setup();
        // The OS maps the victim's vpn to an attacker enclave's page.
        eepcm
            .assign(Ppn(200), E2, Vpn(9), Perms::RW, true)
            .expect("free");
        pt.map(Vpn(3), Ppn(200));
        assert!(matches!(
            mmu.translate(&pt, &eepcm, Vpn(3), Access::Read),
            Err(AccessError::WrongOwner { .. })
        ));
    }

    #[test]
    fn mapping_to_unprotected_frame_caught() {
        let (mut pt, eepcm, mut mmu) = setup();
        pt.map(Vpn(4), Ppn(999));
        assert!(matches!(
            mmu.translate(&pt, &eepcm, Vpn(4), Access::Read),
            Err(AccessError::UnprotectedPage { .. })
        ));
    }

    #[test]
    fn stale_tlb_entry_survives_until_flush() {
        // The validated-TLB invariant: entries validated once stay usable;
        // releasing a page requires a TLB shootdown, which flush_tlb models.
        let (mut pt, eepcm, mut mmu) = setup();
        mmu.translate(&pt, &eepcm, Vpn(1), Access::Read)
            .expect("fill");
        pt.unmap(Vpn(1));
        // Still hits: the TLB caches the validated translation.
        assert_eq!(
            mmu.translate(&pt, &eepcm, Vpn(1), Access::Read),
            Ok(Ppn(100))
        );
        mmu.flush_tlb();
        assert!(matches!(
            mmu.translate(&pt, &eepcm, Vpn(1), Access::Read),
            Err(AccessError::NotMapped { .. })
        ));
    }

    #[test]
    fn assign_reowns_but_keeps_the_tlb() {
        // The ownership register and the TLB are distinct state: re-owning
        // without a shoot-down leaves the old tenant's validated
        // translations live. This is the raw material of the stale-TLB
        // window; the driver teardown path must pair assign with flush_tlb.
        let (pt, eepcm, mut mmu) = setup();
        mmu.translate(&pt, &eepcm, Vpn(1), Access::Read)
            .expect("fill for E1");
        mmu.assign(E2);
        assert_eq!(mmu.owner(), E2);
        assert!(mmu.cached(Vpn(1)), "assign alone must not flush");
        // The stale hit still serves E1's frame to the new owner.
        assert_eq!(
            mmu.translate(&pt, &eepcm, Vpn(1), Access::Read),
            Ok(Ppn(100))
        );
        mmu.flush_tlb();
        // After the shoot-down, the walk re-validates — and E2 does not
        // own Ppn(100), so the stale frame is unreachable.
        assert!(matches!(
            mmu.translate(&pt, &eepcm, Vpn(1), Access::Read),
            Err(AccessError::WrongOwner { .. })
        ));
    }

    #[test]
    fn tlb_capacity_evicts_lru() {
        let (mut pt, mut eepcm, mut mmu) = setup();
        for i in 2..=5u64 {
            pt.map(Vpn(i), Ppn(100 + i));
            eepcm
                .assign(Ppn(100 + i), E1, Vpn(i), Perms::RW, true)
                .expect("free");
        }
        for i in 1..=5u64 {
            mmu.translate(&pt, &eepcm, Vpn(i), Access::Read)
                .expect("valid");
        }
        // Capacity 4: vpn 1 (least recently used) was evicted.
        assert!(!mmu.cached(Vpn(1)));
        assert!(mmu.cached(Vpn(5)));
    }

    #[test]
    fn write_to_readonly_page_denied() {
        let (mut pt, mut eepcm, mut mmu) = setup();
        pt.map(Vpn(6), Ppn(300));
        eepcm
            .assign(Ppn(300), E1, Vpn(6), Perms::RO, true)
            .expect("free");
        assert!(mmu.translate(&pt, &eepcm, Vpn(6), Access::Read).is_ok());
        assert!(matches!(
            mmu.translate(&pt, &eepcm, Vpn(6), Access::Write),
            Err(AccessError::PermissionDenied { .. })
        ));
    }
}
