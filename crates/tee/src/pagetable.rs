//! The OS-controlled forward page table.
//!
//! The page table "is still maintained by the vulnerable operating system"
//! (paper §II-A): nothing here is trusted. The adversary may insert,
//! remove, or rewrite any mapping at any time — the security comes from
//! the EEPCM validation that happens on TLB fill, never from this table.

use crate::{Ppn, Vpn};
use std::collections::BTreeMap;

/// One address space's virtual → physical map.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: BTreeMap<u64, Ppn>,
}

impl PageTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or overwrite) a mapping — an OS-privileged operation, and
    /// therefore also the attack hook.
    pub fn map(&mut self, vpn: Vpn, ppn: Ppn) {
        self.entries.insert(vpn.0, ppn);
    }

    /// Remove a mapping.
    pub fn unmap(&mut self, vpn: Vpn) {
        self.entries.remove(&vpn.0);
    }

    /// Walk the table.
    #[must_use]
    pub fn walk(&self, vpn: Vpn) -> Option<Ppn> {
        self.entries.get(&vpn.0).copied()
    }

    /// Number of mappings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_walk_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        pt.map(Vpn(1), Ppn(100));
        assert_eq!(pt.walk(Vpn(1)), Some(Ppn(100)));
        pt.map(Vpn(1), Ppn(200)); // the OS may rewrite at will
        assert_eq!(pt.walk(Vpn(1)), Some(Ppn(200)));
        pt.unmap(Vpn(1));
        assert_eq!(pt.walk(Vpn(1)), None);
        assert_eq!(pt.len(), 0);
    }
}
