//! The Extended EPCM (EEPCM): a flat inverse page map covering the entire
//! physical memory (paper §IV-B).
//!
//! SGX's EPCM covers only the EPC; TNPU extends it because NPU tensors live
//! *outside* the fixed fully-protected region. For each physical page the
//! EEPCM records whether it is free, an EPC page, or a tree-less protected
//! page, and for protected pages: the owner enclave, the virtual page it
//! must be mapped at, and its permissions. The hardware consults this map
//! on every TLB miss (CPU MMU and NPU IOMMU alike).

use crate::{Access, AccessError, EnclaveId, Perms, Ppn, Vpn};
use std::collections::BTreeMap;

/// State of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Unassigned, ordinary OS-managed memory.
    Free,
    /// Owned by an enclave; protected (EPC or tree-less region).
    Protected {
        /// Owning enclave.
        owner: EnclaveId,
        /// The only virtual page this physical page may be mapped at.
        vpn: Vpn,
        /// Permissions.
        perms: Perms,
        /// Whether MAC generation/verification is enabled for the page
        /// ("MAC generation and verification can be selectively turned on
        /// or off, depending on the page status set in EEPCM", §IV-C).
        mac_enabled: bool,
    },
}

/// The inverse page map, indexed by physical page number.
#[derive(Debug, Clone, Default)]
pub struct Eepcm {
    pages: BTreeMap<u64, PageState>,
}

impl Eepcm {
    /// Empty map (all pages free).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// State of a physical page.
    #[must_use]
    pub fn state(&self, ppn: Ppn) -> PageState {
        self.pages.get(&ppn.0).copied().unwrap_or(PageState::Free)
    }

    /// Assign a free physical page to `owner`, fixed at virtual page `vpn`.
    ///
    /// # Errors
    ///
    /// Returns the current owner if the page is already protected.
    pub fn assign(
        &mut self,
        ppn: Ppn,
        owner: EnclaveId,
        vpn: Vpn,
        perms: Perms,
        mac_enabled: bool,
    ) -> Result<(), EnclaveId> {
        match self.state(ppn) {
            PageState::Free => {
                self.pages.insert(
                    ppn.0,
                    PageState::Protected {
                        owner,
                        vpn,
                        perms,
                        mac_enabled,
                    },
                );
                Ok(())
            }
            PageState::Protected { owner: cur, .. } => Err(cur),
        }
    }

    /// Release a page owned by `owner` back to the free pool.
    ///
    /// # Errors
    ///
    /// Fails if the page is not owned by `owner`.
    pub fn release(&mut self, ppn: Ppn, owner: EnclaveId) -> Result<(), AccessError> {
        match self.state(ppn) {
            PageState::Protected { owner: cur, .. } if cur == owner => {
                self.pages.remove(&ppn.0);
                Ok(())
            }
            _ => Err(AccessError::WrongOwner { ppn }),
        }
    }

    /// The validation step of Fig. 11: check that mapping `vpn → ppn` used
    /// by `owner` for `access` is consistent with the page's EEPCM entry.
    ///
    /// # Errors
    ///
    /// * [`AccessError::UnprotectedPage`] — the OS mapped a protected
    ///   virtual page to an unprotected frame.
    /// * [`AccessError::WrongOwner`] — the frame belongs to another
    ///   enclave.
    /// * [`AccessError::RemapDetected`] — the frame is the enclave's but
    ///   recorded for a different virtual page.
    /// * [`AccessError::PermissionDenied`] — permissions forbid `access`.
    pub fn validate(
        &self,
        owner: EnclaveId,
        vpn: Vpn,
        ppn: Ppn,
        access: Access,
    ) -> Result<(), AccessError> {
        match self.state(ppn) {
            PageState::Free => Err(AccessError::UnprotectedPage { ppn }),
            PageState::Protected {
                owner: cur,
                vpn: expected,
                perms,
                ..
            } => {
                if cur != owner {
                    return Err(AccessError::WrongOwner { ppn });
                }
                if expected != vpn {
                    return Err(AccessError::RemapDetected { expected, got: vpn });
                }
                if !perms.allows(access) {
                    return Err(AccessError::PermissionDenied { access });
                }
                Ok(())
            }
        }
    }

    /// Number of protected pages.
    #[must_use]
    pub fn protected_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E1: EnclaveId = EnclaveId(1);
    const E2: EnclaveId = EnclaveId(2);

    fn map_with_page() -> Eepcm {
        let mut m = Eepcm::new();
        m.assign(Ppn(100), E1, Vpn(7), Perms::RW, true)
            .expect("free page");
        m
    }

    #[test]
    fn assign_and_validate() {
        let m = map_with_page();
        m.validate(E1, Vpn(7), Ppn(100), Access::Read)
            .expect("valid");
        m.validate(E1, Vpn(7), Ppn(100), Access::Write)
            .expect("valid");
    }

    #[test]
    fn double_assign_rejected() {
        let mut m = map_with_page();
        assert_eq!(m.assign(Ppn(100), E2, Vpn(9), Perms::RW, true), Err(E1));
    }

    #[test]
    fn wrong_owner_detected() {
        let m = map_with_page();
        assert_eq!(
            m.validate(E2, Vpn(7), Ppn(100), Access::Read),
            Err(AccessError::WrongOwner { ppn: Ppn(100) })
        );
    }

    #[test]
    fn remap_detected() {
        // The OS points a different virtual page of the same enclave at
        // the frame — classic page-remapping attack.
        let m = map_with_page();
        assert_eq!(
            m.validate(E1, Vpn(8), Ppn(100), Access::Read),
            Err(AccessError::RemapDetected {
                expected: Vpn(7),
                got: Vpn(8)
            })
        );
    }

    #[test]
    fn permissions_enforced() {
        let mut m = Eepcm::new();
        m.assign(Ppn(5), E1, Vpn(1), Perms::RO, true)
            .expect("free page");
        assert!(m.validate(E1, Vpn(1), Ppn(5), Access::Read).is_ok());
        assert_eq!(
            m.validate(E1, Vpn(1), Ppn(5), Access::Write),
            Err(AccessError::PermissionDenied {
                access: Access::Write
            })
        );
    }

    #[test]
    fn unprotected_page_rejected() {
        let m = map_with_page();
        assert_eq!(
            m.validate(E1, Vpn(7), Ppn(999), Access::Read),
            Err(AccessError::UnprotectedPage { ppn: Ppn(999) })
        );
    }

    #[test]
    fn release_and_reassign() {
        let mut m = map_with_page();
        assert!(m.release(Ppn(100), E2).is_err(), "only owner releases");
        m.release(Ppn(100), E1).expect("owner releases");
        assert_eq!(m.protected_pages(), 0);
        m.assign(Ppn(100), E2, Vpn(3), Perms::RX, false)
            .expect("now free");
    }
}
