//! The protected NPU driver enclave (paper §IV-A).
//!
//! "The NPU driver which controls NPUs must be running in a CPU driver
//! enclave. The OS can only send requests to the protected driver." The
//! driver owns the NPU MMIO path; user enclaves ask the driver for an NPU
//! context, and only the context's owner may issue commands on it.

use crate::EnclaveId;
use std::collections::BTreeMap;

/// A command the CPU-side software issues to the NPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NpuCommand {
    /// Load data from memory into the SPM, with the expected version.
    Mvin {
        /// Version number for MAC verification.
        version: u64,
    },
    /// Write SPM data back to memory, with the new version.
    Mvout {
        /// Version number for MAC generation.
        version: u64,
    },
    /// Run the systolic array on SPM-resident data.
    Compute,
}

/// Errors of the driver protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverError {
    /// All NPUs are assigned.
    NoFreeNpu,
    /// The NPU id is out of range.
    NoSuchNpu(usize),
    /// The caller does not own the NPU context.
    NotOwner {
        /// Who asked.
        caller: EnclaveId,
        /// The NPU in question.
        npu: usize,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::NoFreeNpu => write!(f, "no free npu"),
            DriverError::NoSuchNpu(i) => write!(f, "npu {i} does not exist"),
            DriverError::NotOwner { caller, npu } => {
                write!(f, "{caller} does not own npu {npu}")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// The driver enclave: tracks NPU-context ownership and gates commands.
#[derive(Debug)]
pub struct NpuDriverEnclave {
    /// The driver's own enclave identity (attested separately, §IV-E).
    pub id: EnclaveId,
    npu_count: usize,
    contexts: BTreeMap<usize, EnclaveId>,
    commands_issued: u64,
}

impl NpuDriverEnclave {
    /// A driver managing `npu_count` NPUs.
    ///
    /// # Panics
    ///
    /// Panics if `npu_count` is zero.
    #[must_use]
    pub fn new(id: EnclaveId, npu_count: usize) -> Self {
        assert!(npu_count > 0, "need at least one NPU");
        NpuDriverEnclave {
            id,
            npu_count,
            contexts: BTreeMap::new(),
            commands_issued: 0,
        }
    }

    /// A user enclave requests an NPU context.
    ///
    /// # Errors
    ///
    /// [`DriverError::NoFreeNpu`] when all NPUs are assigned.
    pub fn acquire(&mut self, caller: EnclaveId) -> Result<usize, DriverError> {
        let npu = (0..self.npu_count)
            .find(|i| !self.contexts.contains_key(i))
            .ok_or(DriverError::NoFreeNpu)?;
        self.contexts.insert(npu, caller);
        Ok(npu)
    }

    /// Release an NPU context (owner only).
    ///
    /// # Errors
    ///
    /// [`DriverError`] on unknown NPU or wrong owner.
    pub fn release(&mut self, caller: EnclaveId, npu: usize) -> Result<(), DriverError> {
        match self.contexts.get(&npu) {
            None => Err(DriverError::NoSuchNpu(npu)),
            Some(&owner) if owner != caller => Err(DriverError::NotOwner { caller, npu }),
            Some(_) => {
                self.contexts.remove(&npu);
                Ok(())
            }
        }
    }

    /// Issue a command on an NPU context — only the owner may.
    ///
    /// # Errors
    ///
    /// [`DriverError`] on unknown NPU or wrong owner.
    pub fn issue(
        &mut self,
        caller: EnclaveId,
        npu: usize,
        _command: NpuCommand,
    ) -> Result<(), DriverError> {
        if npu >= self.npu_count {
            return Err(DriverError::NoSuchNpu(npu));
        }
        match self.contexts.get(&npu) {
            Some(&owner) if owner == caller => {
                self.commands_issued += 1;
                Ok(())
            }
            Some(_) | None => Err(DriverError::NotOwner { caller, npu }),
        }
    }

    /// Commands successfully issued so far.
    #[must_use]
    pub fn commands_issued(&self) -> u64 {
        self.commands_issued
    }

    /// The enclave owning an NPU, if any.
    #[must_use]
    pub fn owner_of(&self, npu: usize) -> Option<EnclaveId> {
        self.contexts.get(&npu).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DRIVER: EnclaveId = EnclaveId(0);
    const USER: EnclaveId = EnclaveId(1);
    const OTHER: EnclaveId = EnclaveId(2);

    #[test]
    fn acquire_issue_release() {
        let mut d = NpuDriverEnclave::new(DRIVER, 2);
        let npu = d.acquire(USER).expect("free npu");
        d.issue(USER, npu, NpuCommand::Mvin { version: 1 })
            .expect("owner");
        d.issue(USER, npu, NpuCommand::Compute).expect("owner");
        assert_eq!(d.commands_issued(), 2);
        d.release(USER, npu).expect("owner");
        assert_eq!(d.owner_of(npu), None);
    }

    #[test]
    fn non_owner_cannot_issue() {
        let mut d = NpuDriverEnclave::new(DRIVER, 1);
        let npu = d.acquire(USER).expect("free npu");
        assert_eq!(
            d.issue(OTHER, npu, NpuCommand::Compute),
            Err(DriverError::NotOwner { caller: OTHER, npu })
        );
        assert_eq!(d.commands_issued(), 0);
    }

    #[test]
    fn non_owner_cannot_release() {
        let mut d = NpuDriverEnclave::new(DRIVER, 1);
        let npu = d.acquire(USER).expect("free npu");
        assert!(d.release(OTHER, npu).is_err());
        assert_eq!(d.owner_of(npu), Some(USER));
    }

    #[test]
    fn exhaustion() {
        let mut d = NpuDriverEnclave::new(DRIVER, 1);
        d.acquire(USER).expect("free npu");
        assert_eq!(d.acquire(OTHER), Err(DriverError::NoFreeNpu));
    }

    #[test]
    fn out_of_range_npu() {
        let mut d = NpuDriverEnclave::new(DRIVER, 1);
        assert_eq!(
            d.issue(USER, 5, NpuCommand::Compute),
            Err(DriverError::NoSuchNpu(5))
        );
    }
}
