//! Enclave lifecycle and NPU contexts (paper §IV-B, §IV-E).
//!
//! The CPU enclave initiates secure NPU computation: it allocates EPC
//! pages for its own code/data (fully-protected region) and non-EPC pages
//! for the NPU's tensors (tree-less region), and designates a contiguous
//! protected virtual range — `NELRANGE` — for the NPU context. Enclave
//! contents are measured page by page for attestation.

use crate::epcm::Eepcm;
use crate::pagetable::PageTable;
use crate::{EnclaveId, Perms, Ppn, Vpn, PAGE_SIZE};
use std::collections::BTreeMap;
use std::ops::Range;
use tnpu_crypto::sha256::Sha256;

/// What kind of protection a page region uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Fully-protected region (counter tree; EPC-like).
    FullyProtected,
    /// Tree-less region (AES-XTS + versioned MACs; NPU tensors).
    Treeless,
}

/// A live enclave.
#[derive(Debug)]
pub struct Enclave {
    /// Identity.
    pub id: EnclaveId,
    /// The NPU context's protected virtual range, if one was set.
    pub nelrange: Option<Range<u64>>,
    /// Measured content per virtual page (what `measure` hashes).
    content: BTreeMap<u64, Vec<u8>>,
    /// Pages donated to the enclave, with their region kind.
    pages: Vec<(Vpn, Ppn, RegionKind)>,
    /// Whether initialization finished (measurement is then frozen).
    initialized: bool,
}

impl Enclave {
    /// Pages owned by the enclave.
    #[must_use]
    pub fn pages(&self) -> &[(Vpn, Ppn, RegionKind)] {
        &self.pages
    }

    /// Whether `vpn` falls inside the NPU context's protected range.
    #[must_use]
    pub fn in_nelrange(&self, vpn: Vpn) -> bool {
        self.nelrange
            .as_ref()
            .is_some_and(|r| r.contains(&(vpn.0 * PAGE_SIZE)))
    }

    /// SGX-style measurement: a running hash over (vpn, content) of every
    /// added page, in address order.
    #[must_use]
    pub fn measure(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        for (vpn, content) in &self.content {
            h.update(&vpn.to_le_bytes());
            h.update(content);
        }
        h.finalize()
    }
}

/// Errors of the enclave life cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnclaveError {
    /// The physical page is already owned.
    PageBusy(Ppn),
    /// The enclave is already initialized (no more pages may be added —
    /// the measurement is frozen).
    AlreadyInitialized(EnclaveId),
    /// Unknown enclave id.
    NoSuchEnclave(EnclaveId),
}

impl std::fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnclaveError::PageBusy(p) => write!(f, "physical page {} is busy", p.0),
            EnclaveError::AlreadyInitialized(id) => write!(f, "{id} is already initialized"),
            EnclaveError::NoSuchEnclave(id) => write!(f, "{id} does not exist"),
        }
    }
}

impl std::error::Error for EnclaveError {}

/// Creates enclaves and donates pages, updating the EEPCM and the (OS)
/// page table consistently.
#[derive(Debug, Default)]
pub struct EnclaveManager {
    enclaves: BTreeMap<u32, Enclave>,
    next_id: u32,
}

impl EnclaveManager {
    /// Empty manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a new, empty enclave.
    pub fn create(&mut self) -> EnclaveId {
        let id = EnclaveId(self.next_id);
        self.next_id += 1;
        self.enclaves.insert(
            id.0,
            Enclave {
                id,
                nelrange: None,
                content: BTreeMap::new(),
                pages: Vec::new(),
                initialized: false,
            },
        );
        id
    }

    /// Look up an enclave.
    #[must_use]
    pub fn get(&self, id: EnclaveId) -> Option<&Enclave> {
        self.enclaves.get(&id.0)
    }

    /// Add a page with `content` to `id` at `vpn`, backed by `ppn`:
    /// records ownership in the EEPCM, installs the page-table mapping,
    /// and extends the measurement.
    ///
    /// # Errors
    ///
    /// [`EnclaveError`] if the enclave is unknown/initialized or the frame
    /// is busy.
    #[allow(clippy::too_many_arguments)]
    pub fn add_page(
        &mut self,
        eepcm: &mut Eepcm,
        table: &mut PageTable,
        id: EnclaveId,
        vpn: Vpn,
        ppn: Ppn,
        kind: RegionKind,
        perms: Perms,
        content: &[u8],
    ) -> Result<(), EnclaveError> {
        let enclave = self
            .enclaves
            .get_mut(&id.0)
            .ok_or(EnclaveError::NoSuchEnclave(id))?;
        if enclave.initialized {
            return Err(EnclaveError::AlreadyInitialized(id));
        }
        let mac_enabled = kind == RegionKind::Treeless;
        eepcm
            .assign(ppn, id, vpn, perms, mac_enabled)
            .map_err(|_| EnclaveError::PageBusy(ppn))?;
        table.map(vpn, ppn);
        enclave.pages.push((vpn, ppn, kind));
        enclave.content.insert(vpn.0, content.to_vec());
        Ok(())
    }

    /// Set the NPU context's protected virtual byte range.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::NoSuchEnclave`] if unknown.
    pub fn set_nelrange(&mut self, id: EnclaveId, range: Range<u64>) -> Result<(), EnclaveError> {
        let enclave = self
            .enclaves
            .get_mut(&id.0)
            .ok_or(EnclaveError::NoSuchEnclave(id))?;
        enclave.nelrange = Some(range);
        Ok(())
    }

    /// Tear an enclave down, removing it from the manager and returning it
    /// so the caller can release its EEPCM frames and unmap its pages —
    /// the manager does not own the EEPCM/page table, so the cleanup is
    /// the caller's half of the contract. Once destroyed, `get` returns
    /// `None` and attestation/translation for the id must fail.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::NoSuchEnclave`] if unknown (or already destroyed).
    pub fn destroy(&mut self, id: EnclaveId) -> Result<Enclave, EnclaveError> {
        self.enclaves
            .remove(&id.0)
            .ok_or(EnclaveError::NoSuchEnclave(id))
    }

    /// Finish initialization: freezes the measurement.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::NoSuchEnclave`] if unknown.
    pub fn initialize(&mut self, id: EnclaveId) -> Result<[u8; 32], EnclaveError> {
        let enclave = self
            .enclaves
            .get_mut(&id.0)
            .ok_or(EnclaveError::NoSuchEnclave(id))?;
        enclave.initialized = true;
        Ok(enclave.measure())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EnclaveManager, Eepcm, PageTable, EnclaveId) {
        let mut mgr = EnclaveManager::new();
        let id = mgr.create();
        (mgr, Eepcm::new(), PageTable::new(), id)
    }

    #[test]
    fn create_add_initialize() {
        let (mut mgr, mut eepcm, mut pt, id) = setup();
        mgr.add_page(
            &mut eepcm,
            &mut pt,
            id,
            Vpn(1),
            Ppn(10),
            RegionKind::FullyProtected,
            Perms::RX,
            b"code",
        )
        .expect("add");
        let m = mgr.initialize(id).expect("init");
        assert_eq!(m, mgr.get(id).expect("exists").measure());
        // No more pages after initialization.
        assert_eq!(
            mgr.add_page(
                &mut eepcm,
                &mut pt,
                id,
                Vpn(2),
                Ppn(11),
                RegionKind::Treeless,
                Perms::RW,
                b"",
            ),
            Err(EnclaveError::AlreadyInitialized(id))
        );
    }

    #[test]
    fn measurement_depends_on_content_and_layout() {
        let (mut mgr, mut eepcm, mut pt, id) = setup();
        mgr.add_page(
            &mut eepcm,
            &mut pt,
            id,
            Vpn(1),
            Ppn(10),
            RegionKind::FullyProtected,
            Perms::RX,
            b"code-v1",
        )
        .expect("add");
        let m1 = mgr.get(id).expect("exists").measure();

        let (mut mgr2, mut eepcm2, mut pt2, id2) = setup();
        mgr2.add_page(
            &mut eepcm2,
            &mut pt2,
            id2,
            Vpn(1),
            Ppn(10),
            RegionKind::FullyProtected,
            Perms::RX,
            b"code-v2",
        )
        .expect("add");
        assert_ne!(m1, mgr2.get(id2).expect("exists").measure());

        let (mut mgr3, mut eepcm3, mut pt3, id3) = setup();
        mgr3.add_page(
            &mut eepcm3,
            &mut pt3,
            id3,
            Vpn(2),
            Ppn(10),
            RegionKind::FullyProtected,
            Perms::RX,
            b"code-v1",
        )
        .expect("add");
        assert_ne!(m1, mgr3.get(id3).expect("exists").measure(), "vpn matters");
    }

    #[test]
    fn nelrange_membership() {
        let (mut mgr, _, _, id) = setup();
        mgr.set_nelrange(id, 0x10000..0x20000).expect("set");
        let e = mgr.get(id).expect("exists");
        assert!(e.in_nelrange(Vpn(0x10000 / PAGE_SIZE)));
        assert!(!e.in_nelrange(Vpn(0x20000 / PAGE_SIZE)));
    }

    #[test]
    fn page_busy_propagates() {
        let (mut mgr, mut eepcm, mut pt, id) = setup();
        let id2 = mgr.create();
        mgr.add_page(
            &mut eepcm,
            &mut pt,
            id,
            Vpn(1),
            Ppn(10),
            RegionKind::Treeless,
            Perms::RW,
            b"",
        )
        .expect("add");
        assert_eq!(
            mgr.add_page(
                &mut eepcm,
                &mut pt,
                id2,
                Vpn(5),
                Ppn(10),
                RegionKind::Treeless,
                Perms::RW,
                b"",
            ),
            Err(EnclaveError::PageBusy(Ppn(10)))
        );
    }

    #[test]
    fn destroy_removes_and_returns_pages_for_cleanup() {
        let (mut mgr, mut eepcm, mut pt, id) = setup();
        mgr.add_page(
            &mut eepcm,
            &mut pt,
            id,
            Vpn(1),
            Ppn(10),
            RegionKind::Treeless,
            Perms::RW,
            b"",
        )
        .expect("add");
        let dead = mgr.destroy(id).expect("destroy");
        assert_eq!(dead.pages(), &[(Vpn(1), Ppn(10), RegionKind::Treeless)]);
        assert!(mgr.get(id).is_none(), "destroyed enclave is gone");
        assert!(matches!(
            mgr.destroy(id),
            Err(EnclaveError::NoSuchEnclave(e)) if e == id
        ));
        // The caller's half: release the frame, after which it is
        // assignable again.
        eepcm.release(Ppn(10), id).expect("release");
        let id2 = mgr.create();
        mgr.add_page(
            &mut eepcm,
            &mut pt,
            id2,
            Vpn(7),
            Ppn(10),
            RegionKind::Treeless,
            Perms::RW,
            b"",
        )
        .expect("frame reusable after release");
    }

    #[test]
    fn treeless_pages_enable_macs() {
        let (mut mgr, mut eepcm, mut pt, id) = setup();
        mgr.add_page(
            &mut eepcm,
            &mut pt,
            id,
            Vpn(1),
            Ppn(10),
            RegionKind::Treeless,
            Perms::RW,
            b"",
        )
        .expect("add");
        match eepcm.state(Ppn(10)) {
            crate::epcm::PageState::Protected { mac_enabled, .. } => assert!(mac_enabled),
            other => panic!("unexpected state {other:?}"),
        }
    }
}
