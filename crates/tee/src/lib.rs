#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! Access control and trusted-execution plumbing for TNPU (paper §IV-A/B/E).
//!
//! The memory-protection engines guard against *physical* attacks; this
//! crate implements the defences against *privileged software*:
//!
//! * [`epcm::Eepcm`] — the Extended EPCM: a flat inverse page map covering
//!   the whole physical memory, holding per-page security metadata (owner
//!   enclave, expected virtual page, permissions).
//! * [`pagetable::PageTable`] — the OS-controlled forward map. The OS (the
//!   adversary) may rewrite it arbitrarily.
//! * [`mmu::Mmu`] — MMU/IOMMU with a TLB whose security invariant is that
//!   it only ever caches *validated* translations: every page-table walk is
//!   checked against the EEPCM before the TLB is filled (Fig. 11).
//! * [`enclave::EnclaveManager`] — enclave lifecycle: creation, page
//!   donation, the NPU context's protected virtual range (`NELRANGE`), and
//!   content measurement.
//! * [`driver::NpuDriverEnclave`] — the protected NPU driver: the OS can
//!   only *request* NPU operations; the driver enclave owns the MMIO path
//!   and checks that the requesting enclave owns the NPU context.
//! * [`attest::AttestationAuthority`] — SGX-style local attestation:
//!   measurement-bound reports under a device key.

pub mod attest;
pub mod driver;
pub mod enclave;
pub mod epcm;
pub mod mmu;
pub mod pagetable;

/// Page size of the simulated machine.
pub const PAGE_SIZE: u64 = 4096;

/// Identifier of an enclave (also used for the NPU driver enclave).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct EnclaveId(pub u32);

impl std::fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "enclave#{}", self.0)
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

/// A physical page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ppn(pub u64);

/// Requested access type, checked against page permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

/// Page permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub execute: bool,
}

impl Perms {
    /// Read/write data page.
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        execute: false,
    };
    /// Read-only page.
    pub const RO: Perms = Perms {
        read: true,
        write: false,
        execute: false,
    };
    /// Read/execute code page.
    pub const RX: Perms = Perms {
        read: true,
        write: false,
        execute: true,
    };

    /// Whether this permission set allows `access`.
    #[must_use]
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.read,
            Access::Write => self.write,
            Access::Execute => self.execute,
        }
    }
}

/// Why an access was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// No page-table mapping for the virtual page.
    NotMapped {
        /// The unmapped virtual page.
        vpn: Vpn,
    },
    /// The physical page belongs to a different enclave (or none).
    WrongOwner {
        /// The physical page.
        ppn: Ppn,
    },
    /// The EEPCM records a different virtual page for this physical page —
    /// the OS remapped the page table.
    RemapDetected {
        /// The expected virtual page per EEPCM.
        expected: Vpn,
        /// The virtual page actually used.
        got: Vpn,
    },
    /// Permissions do not allow the requested access.
    PermissionDenied {
        /// The denied access kind.
        access: Access,
    },
    /// The virtual page falls inside the protected range but the physical
    /// page is not a protected page at all.
    UnprotectedPage {
        /// The physical page.
        ppn: Ppn,
    },
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::NotMapped { vpn } => write!(f, "no mapping for vpn {}", vpn.0),
            AccessError::WrongOwner { ppn } => {
                write!(f, "physical page {} owned by another enclave", ppn.0)
            }
            AccessError::RemapDetected { expected, got } => write!(
                f,
                "page remap detected: eepcm expects vpn {}, translation used vpn {}",
                expected.0, got.0
            ),
            AccessError::PermissionDenied { access } => {
                write!(f, "permission denied for {access:?}")
            }
            AccessError::UnprotectedPage { ppn } => {
                write!(f, "physical page {} is not protected", ppn.0)
            }
        }
    }
}

impl std::error::Error for AccessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perms_allow() {
        assert!(Perms::RW.allows(Access::Read));
        assert!(Perms::RW.allows(Access::Write));
        assert!(!Perms::RW.allows(Access::Execute));
        assert!(!Perms::RO.allows(Access::Write));
        assert!(Perms::RX.allows(Access::Execute));
    }

    #[test]
    fn error_display() {
        let e = AccessError::RemapDetected {
            expected: Vpn(1),
            got: Vpn(2),
        };
        assert!(e.to_string().contains("remap"));
    }
}
