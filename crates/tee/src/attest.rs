//! Remote/local attestation (paper §IV-E).
//!
//! "The remote attestation is provided by the CPU-side enclave attestation
//! mechanism": the processor holds a device key; an attestation report
//! binds an enclave's measurement and a verifier-chosen nonce under that
//! key. We model the signature with HMAC (a symmetric stand-in for the
//! EPID/DCAP machinery, sufficient to test the protocol logic).

use crate::enclave::Enclave;
use tnpu_crypto::hmac::hmac_sha256;
use tnpu_crypto::Key128;

/// An attestation report: measurement + nonce, authenticated by the
/// device key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The attested enclave's measurement.
    pub measurement: [u8; 32],
    /// The verifier's challenge.
    pub nonce: [u8; 16],
    /// Authentication tag over (measurement, nonce).
    pub tag: [u8; 32],
}

/// The processor's attestation authority (holds the device key).
pub struct AttestationAuthority {
    device_key: Key128,
}

impl std::fmt::Debug for AttestationAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttestationAuthority")
            .finish_non_exhaustive()
    }
}

impl AttestationAuthority {
    /// An authority with the given device key (fused at manufacturing).
    #[must_use]
    pub fn new(device_key: Key128) -> Self {
        AttestationAuthority { device_key }
    }

    fn tag(&self, measurement: &[u8; 32], nonce: &[u8; 16]) -> [u8; 32] {
        let mut msg = Vec::with_capacity(48);
        msg.extend_from_slice(measurement);
        msg.extend_from_slice(nonce);
        hmac_sha256(&self.device_key.0, &msg)
    }

    /// Produce a report for `enclave` answering `nonce`.
    #[must_use]
    pub fn report(&self, enclave: &Enclave, nonce: [u8; 16]) -> Report {
        let measurement = enclave.measure();
        Report {
            measurement,
            nonce,
            tag: self.tag(&measurement, &nonce),
        }
    }

    /// Verify a report against an expected measurement and the nonce the
    /// verifier chose.
    #[must_use]
    pub fn verify(&self, report: &Report, expected: &[u8; 32], nonce: &[u8; 16]) -> bool {
        report.measurement == *expected
            && report.nonce == *nonce
            && report.tag == self.tag(&report.measurement, &report.nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::{EnclaveManager, RegionKind};
    use crate::epcm::Eepcm;
    use crate::pagetable::PageTable;
    use crate::{Perms, Ppn, Vpn};

    fn enclave_with(content: &[u8]) -> (EnclaveManager, crate::EnclaveId) {
        let mut mgr = EnclaveManager::new();
        let id = mgr.create();
        let mut eepcm = Eepcm::new();
        let mut pt = PageTable::new();
        mgr.add_page(
            &mut eepcm,
            &mut pt,
            id,
            Vpn(1),
            Ppn(10),
            RegionKind::FullyProtected,
            Perms::RX,
            content,
        )
        .expect("add page");
        (mgr, id)
    }

    #[test]
    fn report_verifies() {
        let (mgr, id) = enclave_with(b"trusted-npu-app");
        let authority = AttestationAuthority::new(Key128::derive(b"device"));
        let enclave = mgr.get(id).expect("exists");
        let nonce = [7u8; 16];
        let report = authority.report(enclave, nonce);
        assert!(authority.verify(&report, &enclave.measure(), &nonce));
    }

    #[test]
    fn tampered_measurement_rejected() {
        let (mgr, id) = enclave_with(b"trusted-npu-app");
        let authority = AttestationAuthority::new(Key128::derive(b"device"));
        let enclave = mgr.get(id).expect("exists");
        let nonce = [7u8; 16];
        let mut report = authority.report(enclave, nonce);
        report.measurement[0] ^= 1;
        assert!(!authority.verify(&report, &enclave.measure(), &nonce));
    }

    #[test]
    fn different_binary_has_different_measurement() {
        let (mgr_a, id_a) = enclave_with(b"genuine app");
        let (mgr_b, id_b) = enclave_with(b"trojaned app");
        let authority = AttestationAuthority::new(Key128::derive(b"device"));
        let genuine = mgr_a.get(id_a).expect("exists").measure();
        let nonce = [9u8; 16];
        let report = authority.report(mgr_b.get(id_b).expect("exists"), nonce);
        assert!(!authority.verify(&report, &genuine, &nonce));
    }

    #[test]
    fn replayed_nonce_rejected() {
        let (mgr, id) = enclave_with(b"app");
        let authority = AttestationAuthority::new(Key128::derive(b"device"));
        let enclave = mgr.get(id).expect("exists");
        let report = authority.report(enclave, [1u8; 16]);
        // The verifier asked with a fresh nonce; an old report fails.
        assert!(!authority.verify(&report, &enclave.measure(), &[2u8; 16]));
    }

    #[test]
    fn forged_device_key_rejected() {
        let (mgr, id) = enclave_with(b"app");
        let genuine = AttestationAuthority::new(Key128::derive(b"device"));
        let forger = AttestationAuthority::new(Key128::derive(b"attacker"));
        let enclave = mgr.get(id).expect("exists");
        let nonce = [3u8; 16];
        let forged = forger.report(enclave, nonce);
        assert!(!genuine.verify(&forged, &enclave.measure(), &nonce));
    }
}
