//! Golden shape tests: pin down each network's structure so accidental
//! edits to the definitions are caught (the figures depend on these
//! shapes).

use tnpu_models::{registry, LayerKind, Model};

fn model(name: &str) -> Model {
    registry::model(name).expect("registered")
}

fn count(m: &Model, pred: fn(&LayerKind) -> bool) -> usize {
    m.layers.iter().filter(|l| pred(&l.kind)).count()
}

#[test]
fn googlenet_structure() {
    let m = model("goo");
    assert_eq!(
        count(&m, |k| matches!(k, LayerKind::Conv { .. })),
        3 + 9 * 6
    );
    assert_eq!(count(&m, |k| matches!(k, LayerKind::Concat { .. })), 9);
    // Final inception output is 1024 channels at 7x7.
    let last_cat = m
        .layers
        .iter()
        .rev()
        .find(|l| matches!(l.kind, LayerKind::Concat { .. }))
        .expect("has concats");
    assert_eq!(last_cat.kind.out_shape(), (1024, 7, 7));
}

#[test]
fn mobilenet_structure() {
    let m = model("mob");
    assert_eq!(count(&m, |k| matches!(k, LayerKind::DwConv { .. })), 13);
    assert_eq!(count(&m, |k| matches!(k, LayerKind::Conv { .. })), 14);
    // Last pointwise output: 1024 x 7 x 7.
    let pw13 = &m.layers[m.layers.len() - 3];
    assert_eq!(pw13.kind.out_shape(), (1024, 7, 7));
}

#[test]
fn resnet50_structure() {
    let m = model("res");
    // 1 stem + 16 blocks x 3 convs + 4 downsample convs + fc.
    assert_eq!(
        count(&m, |k| matches!(k, LayerKind::Conv { .. })),
        1 + 48 + 4
    );
    assert_eq!(count(&m, |k| matches!(k, LayerKind::Eltwise { .. })), 16);
    assert_eq!(count(&m, |k| matches!(k, LayerKind::Fc { .. })), 1);
    assert_eq!(m.layers.last().expect("fc").kind.out_elements(), 1000);
}

#[test]
fn vgg_backbone_structure() {
    let m = model("rcnn");
    assert_eq!(count(&m, |k| matches!(k, LayerKind::Conv { .. })), 13 + 1);
    assert_eq!(count(&m, |k| matches!(k, LayerKind::Pool { .. })), 4);
    // conv5_3 keeps 512 x 14 x 14.
    let conv5_3 = m
        .layers
        .iter()
        .find(|l| l.name == "conv5_3")
        .expect("named");
    assert_eq!(conv5_3.kind.out_shape(), (512, 14, 14));
}

#[test]
fn transformer_structure() {
    let m = model("tf");
    // embedding + 6 x (6 matmuls + 2 adds) + tied projection.
    assert_eq!(
        count(&m, |k| matches!(k, LayerKind::MatMul { .. })),
        6 * 6 + 1
    );
    assert_eq!(count(&m, |k| matches!(k, LayerKind::Eltwise { .. })), 12);
    assert_eq!(count(&m, |k| matches!(k, LayerKind::Embedding { .. })), 1);
    // Logits cover the vocabulary.
    assert_eq!(
        m.layers.last().expect("proj").kind.out_shape(),
        (32_000, 256, 1)
    );
}

#[test]
fn embedding_dimensions() {
    for (name, vocab, dim, seq) in [
        ("sent", 88_000, 300, 8192),
        ("tf", 32_000, 512, 256),
        ("tx", 256, 256, 512),
    ] {
        let m = model(name);
        let e = m
            .layers
            .iter()
            .find(|l| matches!(l.kind, LayerKind::Embedding { .. }))
            .expect("has embedding");
        assert_eq!(e.kind, LayerKind::Embedding { vocab, dim, seq }, "{name}");
    }
}

#[test]
fn recurrent_models_use_batched_matmuls() {
    for name in ["med", "tx", "ds2"] {
        let m = model(name);
        let mm = count(&m, |k| matches!(k, LayerKind::MatMul { .. }));
        assert!(mm >= 4, "{name} has {mm} matmuls");
        for l in &m.layers {
            if let LayerKind::MatMul { m: rows, .. } = l.kind {
                assert!(rows > 1, "{name}/{}: sequence must be batched", l.name);
            }
        }
    }
}

#[test]
fn total_macs_are_stable() {
    // Pin the compute totals (GMACs) within 1 % so dimension edits are
    // deliberate.
    let expected: [(&str, f64); 5] = [
        ("alex", 1.08),
        ("res", 3.86),
        ("rcnn", 15.35),
        ("tf", 9.43),
        ("mob", 0.57),
    ];
    for (name, gmacs) in expected {
        let got = model(name).total_macs() as f64 / 1e9;
        assert!(
            (got - gmacs).abs() / gmacs < 0.01,
            "{name}: {got:.3} GMACs vs pinned {gmacs}"
        );
    }
}
