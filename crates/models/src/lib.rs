#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! The 14 benchmark DNN models of the paper's evaluation (Table III),
//! described layer-by-layer.
//!
//! The paper evaluates the SCALE-Sim topology suite: GoogleNet, MobileNet,
//! Yolo-tiny, AlexNet, FasterRCNN, DeepFace, ResNet50, MelodyExtraction,
//! Text-generation, AlphaGoZero, Sentimental-seqCNN, DeepSpeech2,
//! Transformer, and NCF. We re-describe each network from its published
//! architecture; recurrent layers are lowered to batched matrix multiplies
//! (the simulated NPU processes "convolution, fully-connected, matrix-matrix
//! multiplication, and matrix-vector multiplication", §V-A), and embedding
//! layers become row *gathers* — the fine-grained, low-spatial-locality
//! access pattern that makes `sent` and `tf` the stress cases of Figs. 4/5.
//!
//! Every layer exposes its GEMM lowering ([`LayerKind::gemm`]) and its
//! tensor sizes, from which the NPU simulator derives tiling, traffic and
//! compute cycles, and [`Model::footprint_bytes`] reproduces the *Mem
//! Footprint* column of Table III.

pub mod builder;
pub mod defs;
pub mod registry;

pub use builder::ModelBuilder;

/// Bytes per tensor element — the paper evaluates Float16 (Table II).
pub const ELEM_BYTES: u64 = 2;

/// GEMM dimensions of a layer after lowering: `C[M×N] = A[M×K] × B[K×N]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Gemm {
    /// Output rows (spatial positions / batch).
    pub m: u64,
    /// Reduction dimension.
    pub k: u64,
    /// Output columns (output channels / features).
    pub n: u64,
}

impl Gemm {
    /// Multiply-accumulate count.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }
}

/// Where a layer's activation input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TensorSource {
    /// The model's external input tensor.
    ModelInput,
    /// The output of an earlier layer (by index).
    Layer(usize),
}

/// The shape/kind of one layer.
///
/// All spatial fields are in elements; all layers compute in Float16
/// ([`ELEM_BYTES`] per element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LayerKind {
    /// 2-D convolution, lowered by on-the-fly im2col (the simulated NPU has
    /// a hardware im2col block, §V-A).
    Conv {
        /// Input channels.
        in_c: u64,
        /// Input height.
        in_h: u64,
        /// Input width.
        in_w: u64,
        /// Output channels.
        out_c: u64,
        /// Kernel height.
        kh: u64,
        /// Kernel width.
        kw: u64,
        /// Stride (same in both dims).
        stride: u64,
        /// Zero padding (same on all sides).
        pad: u64,
    },
    /// Depthwise convolution (one filter per channel).
    DwConv {
        /// Channels.
        c: u64,
        /// Input height.
        in_h: u64,
        /// Input width.
        in_w: u64,
        /// Kernel size (square).
        k: u64,
        /// Stride.
        stride: u64,
        /// Padding.
        pad: u64,
    },
    /// Fully-connected layer over a batch.
    Fc {
        /// Input features.
        in_f: u64,
        /// Output features.
        out_f: u64,
        /// Batch size (rows).
        batch: u64,
    },
    /// General matrix multiply with explicit dimensions (used for attention
    /// and for recurrent layers lowered to batched GEMMs).
    MatMul {
        /// Rows of the activation operand.
        m: u64,
        /// Reduction dimension.
        k: u64,
        /// Columns of the weight operand.
        n: u64,
    },
    /// Embedding lookup: gather `seq` rows of `dim` elements from a
    /// `vocab × dim` table at data-dependent (pseudo-random) rows.
    Embedding {
        /// Table rows.
        vocab: u64,
        /// Table columns (row length in elements).
        dim: u64,
        /// Number of lookups.
        seq: u64,
    },
    /// Elementwise binary op (residual add): reads two tensors of the same
    /// shape, writes one.
    Eltwise {
        /// Channels.
        c: u64,
        /// Height.
        h: u64,
        /// Width.
        w: u64,
    },
    /// Max/avg pooling.
    Pool {
        /// Channels.
        c: u64,
        /// Input height.
        in_h: u64,
        /// Input width.
        in_w: u64,
        /// Window (square).
        k: u64,
        /// Stride.
        stride: u64,
    },
    /// Channel concatenation of several branch outputs (inception modules).
    /// Zero-cost in the simulator: branches write into adjacent buffers.
    Concat {
        /// Output channels (sum of branch channels).
        c: u64,
        /// Height.
        h: u64,
        /// Width.
        w: u64,
    },
}

impl LayerKind {
    fn conv_out(in_dim: u64, k: u64, stride: u64, pad: u64) -> u64 {
        // Saturate for windows larger than the input (global pooling,
        // pooling over a singleton dimension): output one position.
        (in_dim + 2 * pad).saturating_sub(k) / stride + 1
    }

    /// Output shape as `(channels, height, width)`; 1-D shapes use
    /// `(features, rows, 1)`.
    #[must_use]
    pub fn out_shape(&self) -> (u64, u64, u64) {
        match *self {
            LayerKind::Conv {
                in_h,
                in_w,
                out_c,
                kh,
                kw,
                stride,
                pad,
                ..
            } => (
                out_c,
                Self::conv_out(in_h, kh, stride, pad),
                Self::conv_out(in_w, kw, stride, pad),
            ),
            LayerKind::DwConv {
                c,
                in_h,
                in_w,
                k,
                stride,
                pad,
            } => (
                c,
                Self::conv_out(in_h, k, stride, pad),
                Self::conv_out(in_w, k, stride, pad),
            ),
            LayerKind::Fc { out_f, batch, .. } => (out_f, batch, 1),
            LayerKind::MatMul { m, n, .. } => (n, m, 1),
            LayerKind::Embedding { dim, seq, .. } => (dim, seq, 1),
            LayerKind::Eltwise { c, h, w } => (c, h, w),
            LayerKind::Pool {
                c,
                in_h,
                in_w,
                k,
                stride,
            } => (
                c,
                Self::conv_out(in_h, k, stride, 0),
                Self::conv_out(in_w, k, stride, 0),
            ),
            LayerKind::Concat { c, h, w } => (c, h, w),
        }
    }

    /// Output tensor size in elements.
    #[must_use]
    pub fn out_elements(&self) -> u64 {
        let (c, h, w) = self.out_shape();
        c * h * w
    }

    /// Activation-input size in elements (per input tensor).
    #[must_use]
    pub fn in_elements(&self) -> u64 {
        match *self {
            LayerKind::Conv {
                in_c, in_h, in_w, ..
            } => in_c * in_h * in_w,
            LayerKind::DwConv { c, in_h, in_w, .. } => c * in_h * in_w,
            LayerKind::Fc { in_f, batch, .. } => in_f * batch,
            LayerKind::MatMul { m, k, .. } => m * k,
            // Embedding's data-dependent *indices* are the activation input;
            // the table itself counts as the weight tensor.
            LayerKind::Embedding { seq, .. } => seq,
            LayerKind::Eltwise { c, h, w } => c * h * w,
            LayerKind::Pool { c, in_h, in_w, .. } => c * in_h * in_w,
            // Concat moves no data of its own; inputs are accounted at
            // their producers.
            LayerKind::Concat { .. } => 0,
        }
    }

    /// Weight/parameter tensor size in elements (zero for layers without
    /// parameters).
    #[must_use]
    pub fn weight_elements(&self) -> u64 {
        match *self {
            LayerKind::Conv {
                in_c,
                out_c,
                kh,
                kw,
                ..
            } => in_c * out_c * kh * kw,
            LayerKind::DwConv { c, k, .. } => c * k * k,
            LayerKind::Fc { in_f, out_f, .. } => in_f * out_f,
            LayerKind::MatMul { k, n, .. } => k * n,
            LayerKind::Embedding { vocab, dim, .. } => vocab * dim,
            LayerKind::Eltwise { .. } | LayerKind::Pool { .. } | LayerKind::Concat { .. } => 0,
        }
    }

    /// The GEMM this layer lowers to, if it is matrix-multiply shaped.
    #[must_use]
    pub fn gemm(&self) -> Option<Gemm> {
        match *self {
            LayerKind::Conv {
                in_c,
                out_c,
                kh,
                kw,
                ..
            } => {
                let (_, oh, ow) = self.out_shape();
                Some(Gemm {
                    m: oh * ow,
                    k: in_c * kh * kw,
                    n: out_c,
                })
            }
            // Depthwise conv: per-channel K = k*k GEMMs; expressed as one
            // GEMM with the channel count folded into M (array-utilization
            // is handled by the systolic model's folding).
            LayerKind::DwConv { c, k, .. } => {
                let (_, oh, ow) = self.out_shape();
                Some(Gemm {
                    m: oh * ow * c,
                    k: k * k,
                    n: 1,
                })
            }
            LayerKind::Fc { in_f, out_f, batch } => Some(Gemm {
                m: batch,
                k: in_f,
                n: out_f,
            }),
            LayerKind::MatMul { m, k, n } => Some(Gemm { m, k, n }),
            LayerKind::Embedding { .. }
            | LayerKind::Eltwise { .. }
            | LayerKind::Pool { .. }
            | LayerKind::Concat { .. } => None,
        }
    }

    /// Multiply-accumulate count (zero for data-movement layers).
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.gemm().map_or(0, |g| g.macs())
    }
}

/// A named layer with its data-flow inputs.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Layer {
    /// Layer name (unique within the model).
    pub name: String,
    /// Shape/kind.
    pub kind: LayerKind,
    /// Activation inputs ([`TensorSource::Layer`] indices must be earlier
    /// layers). Most layers have one; `Eltwise` has two, `Concat` several.
    pub inputs: Vec<TensorSource>,
    /// If set, this layer reuses the weight tensor of the referenced
    /// earlier layer (tied weights, e.g. a transformer's output projection
    /// sharing its embedding table). The shared tensor is counted once in
    /// the footprint and allocated once by the runtime.
    pub weights_shared_with: Option<usize>,
}

/// A benchmark network: an ordered list of layers forming a DAG.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Model {
    /// Short name used in the paper's figures (e.g. `"res"`).
    pub name: String,
    /// Full name (e.g. `"ResNet50"`).
    pub full_name: String,
    /// Model-input tensor size in elements.
    pub input_elements: u64,
    /// Layers in topological order.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Total memory footprint in bytes: model input + every layer's
    /// parameters + every layer's output tensor (each tensor counted once)
    /// — the accounting of Table III ("ifmap, ofmap, and model
    /// parameters").
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        let mut bytes = self.input_elements * ELEM_BYTES;
        for layer in &self.layers {
            let weights = if layer.weights_shared_with.is_some() {
                0
            } else {
                layer.kind.weight_elements()
            };
            bytes += (weights + layer.kind.out_elements()) * ELEM_BYTES;
        }
        bytes
    }

    /// Total multiply-accumulates for one inference.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.kind.macs()).sum()
    }

    /// Validate the data-flow graph: inputs reference earlier layers only,
    /// `Eltwise` has two inputs and they agree in size, everything else has
    /// one.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (i, layer) in self.layers.iter().enumerate() {
            match layer.kind {
                LayerKind::Eltwise { .. } if layer.inputs.len() != 2 => {
                    return Err(format!(
                        "layer {i} ({}) eltwise needs 2 inputs, has {}",
                        layer.name,
                        layer.inputs.len()
                    ));
                }
                LayerKind::Concat { .. } if layer.inputs.len() < 2 => {
                    return Err(format!(
                        "layer {i} ({}) concat needs >= 2 inputs, has {}",
                        layer.name,
                        layer.inputs.len()
                    ));
                }
                LayerKind::Eltwise { .. } | LayerKind::Concat { .. } => {}
                _ if layer.inputs.len() != 1 => {
                    return Err(format!(
                        "layer {i} ({}) has {} inputs, expected 1",
                        layer.name,
                        layer.inputs.len()
                    ));
                }
                _ => {}
            }
            if let Some(j) = layer.weights_shared_with {
                if j >= i {
                    return Err(format!(
                        "layer {i} ({}) shares weights with layer {j}, which is not earlier",
                        layer.name
                    ));
                }
                if self.layers[j].kind.weight_elements() != layer.kind.weight_elements() {
                    return Err(format!(
                        "layer {i} ({}) shares weights with layer {j} of different size",
                        layer.name
                    ));
                }
            }
            for src in &layer.inputs {
                match *src {
                    TensorSource::ModelInput => {}
                    TensorSource::Layer(j) => {
                        if j >= i {
                            return Err(format!(
                                "layer {i} ({}) reads layer {j}, which is not earlier",
                                layer.name
                            ));
                        }
                    }
                }
            }
            if let LayerKind::Eltwise { .. } = layer.kind {
                let elements = layer.kind.out_elements();
                for src in &layer.inputs {
                    let size = match *src {
                        TensorSource::ModelInput => self.input_elements,
                        TensorSource::Layer(j) => self.layers[j].kind.out_elements(),
                    };
                    if size != elements {
                        return Err(format!(
                            "layer {i} ({}) eltwise over {elements} elements but input has {size}",
                            layer.name
                        ));
                    }
                }
            }
            if let LayerKind::Concat { .. } = layer.kind {
                let sum: u64 = layer
                    .inputs
                    .iter()
                    .map(|src| match *src {
                        TensorSource::ModelInput => self.input_elements,
                        TensorSource::Layer(j) => self.layers[j].kind.out_elements(),
                    })
                    .sum();
                if sum != layer.kind.out_elements() {
                    return Err(format!(
                        "layer {i} ({}) concat inputs sum to {sum}, output has {}",
                        layer.name,
                        layer.kind.out_elements()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> LayerKind {
        LayerKind::Conv {
            in_c: 3,
            in_h: 224,
            in_w: 224,
            out_c: 64,
            kh: 7,
            kw: 7,
            stride: 2,
            pad: 3,
        }
    }

    #[test]
    fn conv_shapes() {
        let c = conv();
        assert_eq!(c.out_shape(), (64, 112, 112));
        assert_eq!(c.in_elements(), 3 * 224 * 224);
        assert_eq!(c.weight_elements(), 3 * 64 * 49);
        let g = c.gemm().expect("conv lowers to gemm");
        assert_eq!(
            g,
            Gemm {
                m: 112 * 112,
                k: 147,
                n: 64
            }
        );
        assert_eq!(c.macs(), g.macs());
    }

    #[test]
    fn dwconv_shapes() {
        let d = LayerKind::DwConv {
            c: 32,
            in_h: 112,
            in_w: 112,
            k: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(d.out_shape(), (32, 112, 112));
        assert_eq!(d.weight_elements(), 32 * 9);
        assert_eq!(d.gemm().expect("gemm").k, 9);
    }

    #[test]
    fn fc_and_matmul() {
        let fc = LayerKind::Fc {
            in_f: 1024,
            out_f: 1000,
            batch: 1,
        };
        assert_eq!(
            fc.gemm(),
            Some(Gemm {
                m: 1,
                k: 1024,
                n: 1000
            })
        );
        let mm = LayerKind::MatMul {
            m: 128,
            k: 512,
            n: 512,
        };
        assert_eq!(mm.macs(), 128 * 512 * 512);
    }

    #[test]
    fn embedding_and_pool_have_no_gemm() {
        let e = LayerKind::Embedding {
            vocab: 1000,
            dim: 64,
            seq: 16,
        };
        assert!(e.gemm().is_none());
        assert_eq!(e.weight_elements(), 64_000);
        assert_eq!(e.out_elements(), 16 * 64);
        let p = LayerKind::Pool {
            c: 64,
            in_h: 112,
            in_w: 112,
            k: 2,
            stride: 2,
        };
        assert!(p.gemm().is_none());
        assert_eq!(p.out_shape(), (64, 56, 56));
    }

    #[test]
    fn footprint_accounting() {
        let m = Model {
            name: "t".into(),
            full_name: "tiny".into(),
            input_elements: 100,
            layers: vec![Layer {
                name: "fc".into(),
                kind: LayerKind::Fc {
                    in_f: 100,
                    out_f: 10,
                    batch: 1,
                },
                inputs: vec![TensorSource::ModelInput],
                weights_shared_with: None,
            }],
        };
        assert_eq!(m.footprint_bytes(), (100 + 1000 + 10) * 2);
        assert_eq!(m.total_macs(), 1000);
        m.validate().expect("valid");
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let m = Model {
            name: "bad".into(),
            full_name: "bad".into(),
            input_elements: 4,
            layers: vec![Layer {
                name: "l0".into(),
                kind: LayerKind::Eltwise { c: 4, h: 1, w: 1 },
                inputs: vec![TensorSource::ModelInput, TensorSource::Layer(5)],
                weights_shared_with: None,
            }],
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_size_mismatch() {
        let m = Model {
            name: "bad".into(),
            full_name: "bad".into(),
            input_elements: 4,
            layers: vec![Layer {
                name: "l0".into(),
                kind: LayerKind::Eltwise { c: 8, h: 1, w: 1 },
                inputs: vec![TensorSource::ModelInput, TensorSource::ModelInput],
                weights_shared_with: None,
            }],
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let m = Model {
            name: "bad".into(),
            full_name: "bad".into(),
            input_elements: 4,
            layers: vec![Layer {
                name: "l0".into(),
                kind: LayerKind::Pool {
                    c: 1,
                    in_h: 2,
                    in_w: 2,
                    k: 2,
                    stride: 2,
                },
                inputs: vec![],
                weights_shared_with: None,
            }],
        };
        assert!(m.validate().is_err());
    }
}
