//! Dynamic-dataflow workloads: autoregressive decode and training steps.
//!
//! The paper's 14 benchmarks (Table III) are all static-dataflow — each
//! tensor is written exactly once per inference, which is the assumption
//! the tree-less scheme's single-version-per-tensor design rests on
//! (§III-A). These two models exist to break that assumption on purpose:
//!
//! * [`decode`] — one step of autoregressive transformer decoding. The
//!   per-layer K/V caches are "weight" tensors of the attention matmuls
//!   (layer names carry a `k_cache` / `v_cache` marker) that a stepped
//!   runner appends to every step: their version state is tile-expanded
//!   on each append and never merged mid-sequence.
//! * [`train`] — one SGD iteration of a small MLP (forward plus
//!   weight-gradient GEMMs). Every weight tensor is rewritten each
//!   iteration, so versions churn at the iteration rate and exhaust
//!   small version limits quickly.
//!
//! Both are registered under [`crate::registry::DYNAMIC_MODEL_NAMES`],
//! deliberately outside the Table III `MODEL_NAMES` suite so the static
//! figures stay byte-identical.

use crate::{Model, ModelBuilder};

/// Decoder context length the fixed registry entry ([`decode`]) models:
/// the K/V caches hold this many tokens. At `d_model = 256` one token's
/// cache entry is 512 B, so a full sequence spans several 16 KB version
/// tiles — the KV version state must *grow* its expansion mid-sequence.
pub const DECODE_CTX: u64 = 128;

/// Decoder depth shared by every [`decode_step`] instance.
pub const DECODE_LAYERS: usize = 2;

/// Model width (`d_model`) of the decode workload.
pub const DECODE_DIM: u64 = 256;

/// Marker substring in attention-matmul layer names whose weight operand
/// is a per-sequence cache tensor rather than a trained parameter.
/// Stepped runners use it to find the tensors that grow per step.
pub const CACHE_MARKER: &str = "_cache";

/// One autoregressive decode step at the registry's fixed context length.
#[must_use]
pub fn decode() -> Model {
    decode_step(DECODE_CTX)
}

/// One decode step with `kv_len` tokens already cached: embedding gather
/// for the single new token, then per layer QKV projection, attention
/// against the K cache (`1×d · d×kv_len`), mixing of the V cache
/// (`1×kv_len · kv_len×d`), output projection, and FFN, finished by an
/// lm-head tied to the embedding table. The two attention matmuls' weight
/// operands *are* the caches — their sizes grow with `kv_len`, which is
/// how the per-step compute cost of a lengthening sequence enters the
/// trace.
#[must_use]
pub fn decode_step(kv_len: u64) -> Model {
    let vocab = 8_000;
    let d = DECODE_DIM;
    let d_ff = 1024;
    let ctx = kv_len.max(1);
    let mut b = ModelBuilder::new("decode", "Transformer-decode-step", (1, 1, 1))
        .embedding("embed", vocab, d, 1);
    let embed = b.next_index() - 1;
    b = b.repeat(DECODE_LAYERS, |mut b, l| {
        let block_in = b.next_index() - 1;
        b = b
            .matmul(&format!("l{l}_qkv"), 1, d, 3 * d)
            .matmul(&format!("l{l}_k_cache_scores"), 1, d, ctx)
            .matmul(&format!("l{l}_v_cache_attnv"), 1, ctx, d)
            .matmul(&format!("l{l}_proj"), 1, d, d)
            .add(&format!("l{l}_res1"), block_in)
            .matmul(&format!("l{l}_ffn1"), 1, d, d_ff)
            .matmul(&format!("l{l}_ffn2"), 1, d_ff, d);
        let res1 = b.next_index() - 3;
        b.add(&format!("l{l}_res2"), res1)
    });
    b = b.matmul("lm_head", 1, d, vocab).share_weights_with(embed);
    b.build()
}

/// One training iteration of a small MLP: a 3-layer forward pass over a
/// mini-batch plus the backward data-gradient GEMMs (`δ · Wᵀ`), which
/// re-stream each forward weight transposed (tied, so the layout keeps
/// one copy). A stepped runner rewrites every weight tensor after each
/// iteration — the SGD update — which is what drives the version churn
/// this workload exists to measure.
#[must_use]
pub fn train() -> Model {
    let batch = 32;
    let (d_in, d_h, d_out) = (784, 256, 10);
    let mut b = ModelBuilder::new("train", "SGD-step-MLP", (1, d_in, 1))
        .matmul("fc1", batch, d_in, d_h)
        .matmul("fc2", batch, d_h, d_h)
        .matmul("fc3", batch, d_h, d_out);
    let (fc1, fc2, fc3) = (0, 1, 2);
    b = b
        .matmul("bwd_fc3", batch, d_out, d_h)
        .share_weights_with(fc3)
        .matmul("bwd_fc2", batch, d_h, d_h)
        .share_weights_with(fc2)
        .matmul("bwd_fc1", batch, d_h, d_in)
        .share_weights_with(fc1);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerKind, ELEM_BYTES};

    #[test]
    fn dynamic_models_validate() {
        for m in [decode(), decode_step(1), decode_step(512), train()] {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn decode_ties_lm_head_to_embedding() {
        let m = decode();
        let out = m.layers.last().expect("non-empty");
        let shared = out.weights_shared_with.expect("tied lm head");
        assert!(matches!(m.layers[shared].kind, LayerKind::Embedding { .. }));
        assert_eq!(
            m.layers[shared].kind.weight_elements(),
            out.kind.weight_elements()
        );
    }

    #[test]
    fn cache_matmul_weights_scale_with_context() {
        // The cache-marked matmuls' weight operands are the K/V caches:
        // d × kv_len elements each, growing linearly with the context.
        for kv_len in [1u64, 16, 256] {
            let m = decode_step(kv_len);
            let caches: Vec<u64> = m
                .layers
                .iter()
                .filter(|l| l.name.contains(CACHE_MARKER))
                .map(|l| l.kind.weight_elements())
                .collect();
            assert_eq!(caches.len(), 2 * DECODE_LAYERS);
            for w in caches {
                assert_eq!(w, DECODE_DIM * kv_len);
            }
        }
    }

    #[test]
    fn decode_step_grows_only_the_caches() {
        // Every non-cache tensor is step-invariant — the premise that
        // lets a stepped trace reuse weights across the whole sequence.
        let a = decode_step(8);
        let b = decode_step(9);
        assert_eq!(a.layers.len(), b.layers.len());
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.name, lb.name);
            if la.name.contains(CACHE_MARKER) {
                assert!(lb.kind.weight_elements() > la.kind.weight_elements());
            } else {
                assert_eq!(la.kind.weight_elements(), lb.kind.weight_elements());
                assert_eq!(la.kind.out_elements(), lb.kind.out_elements());
            }
        }
    }

    #[test]
    fn train_backward_ties_transposed_forward_weights() {
        // Three unique weight tensors, each streamed twice per iteration
        // (forward and transposed in the backward pass); the SGD update
        // rewrites all three, the churn the version table must absorb.
        let m = train();
        assert_eq!(m.layers.len(), 6);
        for (bwd, fwd) in [(3usize, 2usize), (4, 1), (5, 0)] {
            assert_eq!(m.layers[bwd].weights_shared_with, Some(fwd));
            assert_eq!(
                m.layers[bwd].kind.weight_elements(),
                m.layers[fwd].kind.weight_elements()
            );
        }
        let params: u64 = m.layers[..3].iter().map(|l| l.kind.weight_elements()).sum();
        assert!(
            params * ELEM_BYTES > 500 * 1024,
            "non-trivial parameter set"
        );
    }
}
