//! The embedding-heavy benchmarks: sent, tf, ncf.
//!
//! These are the paper's stress cases (§III-B, §V-B): their embedding
//! layers perform many fine-grained lookups scattered across large tables,
//! which destroys the spatial locality the baseline's counter cache relies
//! on. `tf` additionally carries a full-vocabulary output projection (tied
//! to the embedding table), whose weight matrix is streamed in small
//! strided slices.

use crate::{Model, ModelBuilder};

/// Sentimental-seqCNN: word embeddings over a large vocabulary followed by
/// a sequence convolution and classifier. Long documents (`seq = 8192`)
/// make the scattered embedding gathers a dominant traffic component.
#[must_use]
pub fn sentimental() -> Model {
    let vocab = 88_000;
    let dim = 300;
    let seq = 8192;
    ModelBuilder::new("sent", "Sentimental-seqCNN", (1, seq, 1))
        .embedding("embed", vocab, dim, seq)
        // Sequence convolution with window 3 over the embedded text,
        // expressed as a 1-D convolution (channels = embedding dim).
        .conv_rect("seq_conv", 128, 3, 1, 1, 0)
        .pool("max_over_time", 4095, 4095)
        .fc("classifier", 2)
        .build()
}

/// Transformer encoder (base configuration: 6 layers, d_model 512,
/// d_ff 2048, 8 heads folded into aggregate attention GEMMs) with a tied
/// full-vocabulary output projection.
#[must_use]
pub fn transformer() -> Model {
    let vocab = 32_000;
    let d = 512;
    let d_ff = 2048;
    let seq = 256;
    let mut b =
        ModelBuilder::new("tf", "Transformer", (1, seq, 1)).embedding("embed", vocab, d, seq);
    let embed = b.next_index() - 1;
    for l in 0..6 {
        let block_in = b.next_index() - 1;
        b = b
            .matmul(&format!("l{l}_qkv"), seq, d, 3 * d)
            // All-head score computation, aggregated: per head m=seq,k=64,
            // n=seq; folded into one GEMM with the same MAC count.
            .matmul(&format!("l{l}_scores"), seq, d, seq)
            .matmul(&format!("l{l}_attnv"), seq, seq, d)
            .matmul(&format!("l{l}_proj"), seq, d, d)
            .add(&format!("l{l}_res1"), block_in)
            .matmul(&format!("l{l}_ffn1"), seq, d, d_ff)
            .matmul(&format!("l{l}_ffn2"), seq, d_ff, d);
        let ffn_out = b.next_index() - 1;
        let res1 = ffn_out - 2;
        b = b.from_layer(ffn_out).add(&format!("l{l}_res2"), res1);
    }
    // Tied output projection over the full vocabulary: streams the 32 MB
    // embedding table as a weight matrix in fine-grained strided slices.
    b = b
        .matmul("out_proj", seq, d, vocab)
        .share_weights_with(embed);
    b.build()
}

/// NCF recommendation: user and item embedding gathers (128 B rows — the
/// finest-grained access in the suite) followed by a small MLP over the
/// batch.
#[must_use]
pub fn ncf() -> Model {
    let users = 72_000;
    let items = 18_000;
    let dim = 64;
    let batch = 512;
    let mut b = ModelBuilder::new("ncf", "NCF-recommendation", (2, batch, 1));
    b = b.embedding("user_embed", users, dim, batch);
    let ue = b.next_index() - 1;
    // The item gather also reads the model input (the id pairs).
    b = b.from_input().embedding("item_embed", items, dim, batch);
    let ie = b.next_index() - 1;
    b = b
        .concat("pair", &[ue, ie])
        .matmul("mlp1", batch, 2 * dim, 512)
        .matmul("mlp2", batch, 512, 256)
        .matmul("mlp3", batch, 256, 128)
        .matmul("score", batch, 128, 1);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn all_attention_models_validate() {
        for m in [sentimental(), transformer(), ncf()] {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn footprints_near_table3() {
        let mb = |m: &Model| m.footprint_bytes() as f64 / (1 << 20) as f64;
        for (m, paper) in [(sentimental(), 58.8), (transformer(), 75.6), (ncf(), 11.6)] {
            let got = mb(&m);
            let rel = (got - paper).abs() / paper;
            assert!(rel < 1.0, "{}: {got:.1} MB vs paper {paper} MB", m.name);
        }
    }

    #[test]
    fn tf_tops_the_suite_and_sent_is_near_the_top() {
        // Table III: tf (75.6 MB) is the largest footprint and sent
        // (58.8 MB) is second. Our reconstruction keeps tf on top; sent
        // lands in the top three (our ResNet50 counts all activations).
        let mut sizes: Vec<(String, u64)> = crate::registry::all_models()
            .iter()
            .map(|m| (m.name.clone(), m.footprint_bytes()))
            .collect();
        sizes.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
        assert_eq!(sizes[0].0, "tf", "ordering: {sizes:?}");
        let top3: Vec<&str> = sizes[..3].iter().map(|(n, _)| n.as_str()).collect();
        assert!(top3.contains(&"sent"), "ordering: {sizes:?}");
    }

    #[test]
    fn transformer_ties_output_projection() {
        let m = transformer();
        let out = m.layers.last().expect("non-empty");
        assert!(out.weights_shared_with.is_some());
        let shared = out.weights_shared_with.expect("tied");
        assert!(matches!(m.layers[shared].kind, LayerKind::Embedding { .. }));
        assert_eq!(
            m.layers[shared].kind.weight_elements(),
            out.kind.weight_elements()
        );
    }

    #[test]
    fn ncf_has_two_embeddings() {
        let m = ncf();
        let gathers = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Embedding { .. }))
            .count();
        assert_eq!(gathers, 2);
    }

    #[test]
    fn embedding_rows_are_fine_grained() {
        // ncf rows are 128 B (2 blocks), sent rows 600 B — both far below
        // the 4 KB counter-block coverage, which is the paper's point.
        let m = ncf();
        if let LayerKind::Embedding { dim, .. } = m.layers[0].kind {
            assert_eq!(dim * crate::ELEM_BYTES, 128);
        } else {
            panic!("first ncf layer must be an embedding");
        }
    }
}
