//! The recurrent benchmarks, lowered to batched GEMMs: med, tx, ds2.
//!
//! Inference over a known input sequence lets the gate matmuls of
//! LSTM/GRU layers be batched over time steps (`M = seq`), which is how
//! layer-wise NPU simulators (SCALE-Sim and the paper's extension of it)
//! process recurrent models. Batched `M` makes these models compute-bound —
//! consistent with the paper's observation that `med` and `tx` show almost
//! no protection overhead at one NPU (§V-C).

use crate::{Model, ModelBuilder};

/// MelodyExtractionDetection: 2-layer bidirectional LSTM over a 513-bin
/// spectrogram, hidden size 512, plus the note classifier.
#[must_use]
pub fn melody_extraction() -> Model {
    let seq = 768;
    let input_bins = 513;
    let hidden = 512;
    let gates = 4 * hidden;
    ModelBuilder::new("med", "MelodyExtractionDetection", (input_bins, seq, 1))
        // Layer 1, forward and backward directions.
        .matmul("lstm1_fw", seq, input_bins + hidden, gates)
        .matmul("lstm1_bw", seq, input_bins + hidden, gates)
        // Layer 2 consumes the concatenated 2*hidden state.
        .matmul("lstm2_fw", seq, 2 * hidden + hidden, gates)
        .matmul("lstm2_bw", seq, 2 * hidden + hidden, gates)
        .matmul("classifier", seq, 2 * hidden, 722)
        .build()
}

/// Text-generation (Graves-style character LSTM): embedding + 3 LSTM layers
/// of hidden size 672 + output projection.
#[must_use]
pub fn text_generation() -> Model {
    let seq = 512;
    let vocab = 256;
    let dim = 256;
    let hidden = 672;
    let gates = 4 * hidden;
    ModelBuilder::new("tx", "Text-generation", (1, seq, 1))
        .embedding("embed", vocab, dim, seq)
        .matmul("lstm1", seq, dim + hidden, gates)
        .matmul("lstm2", seq, hidden + hidden, gates)
        .matmul("lstm3", seq, hidden + hidden, gates)
        .matmul("proj", seq, hidden, vocab)
        .build()
}

/// DeepSpeech2: 2-D convolutional front-end over the spectrogram, then five
/// GRU layers of hidden size 500, then the CTC classifier.
#[must_use]
pub fn deepspeech2() -> Model {
    let hidden = 500;
    let gates = 3 * hidden; // GRU
    let mut b = ModelBuilder::new("ds2", "DeepSpeech2", (1, 161, 200))
        .conv_rect("conv1", 32, 41, 11, 2, 0)
        .conv_rect("conv2", 32, 21, 11, 2, 0);
    // conv2 output: (32, 21, 43) -> features 672 per time step, seq 43.
    let (c, h, w) = b.shape();
    let features = c * h;
    let seq = w;
    b = b
        .matmul("gru1", seq, features + hidden, gates)
        .matmul("gru2", seq, hidden + hidden, gates)
        .matmul("gru3", seq, hidden + hidden, gates)
        .matmul("gru4", seq, hidden + hidden, gates)
        .matmul("gru5", seq, hidden + hidden, gates)
        .matmul("ctc", seq, hidden, 29);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sequence_models_validate() {
        for m in [melody_extraction(), text_generation(), deepspeech2()] {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn footprints_near_table3() {
        let mb = |m: &Model| m.footprint_bytes() as f64 / (1 << 20) as f64;
        for (m, paper) in [
            (melody_extraction(), 34.8),
            (text_generation(), 21.7),
            (deepspeech2(), 15.6),
        ] {
            let got = mb(&m);
            let rel = (got - paper).abs() / paper;
            assert!(rel < 0.45, "{}: {got:.1} MB vs paper {paper} MB", m.name);
        }
    }

    #[test]
    fn recurrent_models_are_compute_heavy() {
        // Batched sequence dims must make arithmetic intensity high enough
        // that double buffering can hide memory traffic (paper §V-C: med
        // and tx show no degradation at one NPU).
        for m in [melody_extraction(), text_generation()] {
            let macs = m.total_macs() as f64;
            let bytes = m.footprint_bytes() as f64;
            assert!(
                macs / bytes > 100.0,
                "{}: arithmetic intensity too low ({:.1})",
                m.name,
                macs / bytes
            );
        }
    }

    #[test]
    fn ds2_conv_frontend_shapes() {
        let m = deepspeech2();
        // conv1: (161-41)/2+1 = 61, (200-11)/2+1 = 95.
        assert_eq!(m.layers[0].kind.out_shape(), (32, 61, 95));
        // conv2: (61-21)/2+1 = 21, (95-11)/2+1 = 43.
        assert_eq!(m.layers[1].kind.out_shape(), (32, 21, 43));
    }

    #[test]
    fn text_generation_has_embedding() {
        let m = text_generation();
        assert!(matches!(
            m.layers[0].kind,
            crate::LayerKind::Embedding {
                vocab: 256,
                dim: 256,
                seq: 512
            }
        ));
    }
}
