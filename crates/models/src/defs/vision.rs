//! The CNN benchmarks: goo, mob, yt, alex, rcnn, df, res, agz.

use crate::{Model, ModelBuilder};

/// GoogleNet (Inception v1): stem + 9 inception modules.
///
/// Pool-projection branches are modelled as 1×1 convolutions on the module
/// input (our `Pool` layer has no padding, so a stride-1 3×3 pool would
/// shrink the map); the branch's GEMM shape and output size are identical.
#[must_use]
pub fn googlenet() -> Model {
    let mut b = ModelBuilder::new("goo", "GoogleNet", (3, 224, 224))
        .conv("conv1", 64, 7, 2, 3)
        .pool("pool1", 2, 2)
        .conv("conv2r", 64, 1, 1, 0)
        .conv("conv2", 192, 3, 1, 1)
        .pool("pool2", 2, 2);

    // (tag, n1x1, r3x3, n3x3, r5x5, n5x5, pool_proj)
    let modules: [(&str, u64, u64, u64, u64, u64, u64); 9] = [
        ("3a", 64, 96, 128, 16, 32, 32),
        ("3b", 128, 128, 192, 32, 96, 64),
        ("4a", 192, 96, 208, 16, 48, 64),
        ("4b", 160, 112, 224, 24, 64, 64),
        ("4c", 128, 128, 256, 24, 64, 64),
        ("4d", 112, 144, 288, 32, 64, 64),
        ("4e", 256, 160, 320, 32, 128, 128),
        ("5a", 256, 160, 320, 32, 128, 128),
        ("5b", 384, 192, 384, 48, 128, 128),
    ];
    for (i, &(tag, n1, r3, n3, r5, n5, pp)) in modules.iter().enumerate() {
        // Down-sample between stages 3/4 and 4/5.
        if tag == "4a" || tag == "5a" {
            b = b.pool(&format!("pool_{tag}"), 2, 2);
        }
        let _ = i;
        b = inception(b, tag, n1, r3, n3, r5, n5, pp);
    }
    b.pool("pool5", 7, 7).fc("fc", 1000).build()
}

#[allow(clippy::too_many_arguments)] // mirrors the module's published parameter list
fn inception(
    mut b: ModelBuilder,
    tag: &str,
    n1: u64,
    r3: u64,
    n3: u64,
    r5: u64,
    n5: u64,
    pp: u64,
) -> ModelBuilder {
    let input = b.next_index() - 1;
    b = b.conv(&format!("inc{tag}_1x1"), n1, 1, 1, 0);
    let br1 = b.next_index() - 1;
    b = b
        .from_layer(input)
        .conv(&format!("inc{tag}_3x3r"), r3, 1, 1, 0)
        .conv(&format!("inc{tag}_3x3"), n3, 3, 1, 1);
    let br2 = b.next_index() - 1;
    b = b
        .from_layer(input)
        .conv(&format!("inc{tag}_5x5r"), r5, 1, 1, 0)
        .conv(&format!("inc{tag}_5x5"), n5, 5, 1, 2);
    let br3 = b.next_index() - 1;
    b = b
        .from_layer(input)
        .conv(&format!("inc{tag}_pp"), pp, 1, 1, 0);
    let br4 = b.next_index() - 1;
    b.concat(&format!("inc{tag}_cat"), &[br1, br2, br3, br4])
}

/// MobileNet v1: standard depthwise-separable stack.
#[must_use]
pub fn mobilenet() -> Model {
    let mut b = ModelBuilder::new("mob", "MobileNet", (3, 224, 224)).conv("conv1", 32, 3, 2, 1);
    // (pointwise out channels, depthwise stride)
    let blocks: [(u64, u64); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, &(out_c, stride)) in blocks.iter().enumerate() {
        b = b.dwconv(&format!("dw{}", i + 1), 3, stride, 1).conv(
            &format!("pw{}", i + 1),
            out_c,
            1,
            1,
            0,
        );
    }
    b.pool("gap", 7, 7).fc("fc", 1000).build()
}

/// Tiny-YOLO: the small single-shot detector.
#[must_use]
pub fn yolo_tiny() -> Model {
    ModelBuilder::new("yt", "Yolo-tiny", (3, 416, 416))
        .conv("conv1", 16, 3, 1, 1)
        .pool("pool1", 2, 2)
        .conv("conv2", 32, 3, 1, 1)
        .pool("pool2", 2, 2)
        .conv("conv3", 64, 3, 1, 1)
        .pool("pool3", 2, 2)
        .conv("conv4", 128, 3, 1, 1)
        .pool("pool4", 2, 2)
        .conv("conv5", 256, 3, 1, 1)
        .pool("pool5", 2, 2)
        .conv("conv6", 512, 3, 1, 1)
        .conv("conv7", 1024, 3, 1, 1)
        .conv("conv8", 256, 1, 1, 0)
        .conv("conv9", 125, 1, 1, 0)
        .build()
}

/// AlexNet convolutional layers (the SCALE-Sim topology is conv-only, which
/// is what matches the paper's 11.7 MB footprint — the FC stack alone would
/// be 120 MB).
#[must_use]
pub fn alexnet() -> Model {
    ModelBuilder::new("alex", "AlexNet", (3, 227, 227))
        .conv("conv1", 96, 11, 4, 0)
        .pool("pool1", 3, 2)
        .conv("conv2", 256, 5, 1, 2)
        .pool("pool2", 3, 2)
        .conv("conv3", 384, 3, 1, 1)
        .conv("conv4", 384, 3, 1, 1)
        .conv("conv5", 256, 3, 1, 1)
        .pool("pool5", 3, 2)
        .build()
}

/// FasterRCNN: VGG16 convolutional backbone plus 1×1 detection heads.
#[must_use]
pub fn faster_rcnn() -> Model {
    ModelBuilder::new("rcnn", "FasterRCNN", (3, 224, 224))
        .conv("conv1_1", 64, 3, 1, 1)
        .conv("conv1_2", 64, 3, 1, 1)
        .pool("pool1", 2, 2)
        .conv("conv2_1", 128, 3, 1, 1)
        .conv("conv2_2", 128, 3, 1, 1)
        .pool("pool2", 2, 2)
        .conv("conv3_1", 256, 3, 1, 1)
        .conv("conv3_2", 256, 3, 1, 1)
        .conv("conv3_3", 256, 3, 1, 1)
        .pool("pool3", 2, 2)
        .conv("conv4_1", 512, 3, 1, 1)
        .conv("conv4_2", 512, 3, 1, 1)
        .conv("conv4_3", 512, 3, 1, 1)
        .pool("pool4", 2, 2)
        .conv("conv5_1", 512, 3, 1, 1)
        .conv("conv5_2", 512, 3, 1, 1)
        .conv("conv5_3", 512, 3, 1, 1)
        .conv("rpn_cls", 18, 1, 1, 0)
        .build()
}

/// DeepFace front-end; the locally-connected L4–L6 layers are modelled as
/// convolutions of the same kernel/channel shape (identical GEMM and tensor
/// sizes; locally-connected weights would be larger, but the SCALE-Sim
/// topology models them as convolutions too, matching the 2.2 MB
/// footprint).
#[must_use]
pub fn deepface() -> Model {
    ModelBuilder::new("df", "DeepFace", (3, 152, 152))
        .conv("c1", 32, 11, 1, 0)
        .pool("m2", 2, 2)
        .conv("c3", 16, 9, 1, 0)
        .conv("l4", 16, 9, 1, 0)
        .conv("l5", 16, 7, 1, 0)
        .conv("l6", 16, 5, 1, 0)
        .build()
}

/// ResNet50 with its residual adds (the running example of the paper's
/// Figs. 7 and 13).
#[must_use]
pub fn resnet50() -> Model {
    let mut b = ModelBuilder::new("res", "Resnet50", (3, 224, 224))
        .conv("conv1", 64, 7, 2, 3)
        .pool("pool1", 2, 2);
    // (stage, mid channels, out channels, blocks, first stride)
    let stages: [(u64, u64, u64, u64); 4] = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];
    for (s, &(mid, out, blocks, first_stride)) in stages.iter().enumerate() {
        for blk in 0..blocks {
            let stride = if blk == 0 { first_stride } else { 1 };
            let tag = format!("s{}b{}", s + 2, blk + 1);
            b = bottleneck(b, &tag, mid, out, stride, blk == 0);
        }
    }
    b.pool("gap", 7, 7).fc("fc", 1000).build()
}

fn bottleneck(
    mut b: ModelBuilder,
    tag: &str,
    mid: u64,
    out: u64,
    stride: u64,
    downsample: bool,
) -> ModelBuilder {
    let input = b.next_index() - 1;
    b = b
        .conv(&format!("{tag}_a"), mid, 1, stride, 0)
        .conv(&format!("{tag}_b"), mid, 3, 1, 1)
        .conv(&format!("{tag}_c"), out, 1, 1, 0);
    let trunk = b.next_index() - 1;
    if downsample {
        b = b
            .from_layer(input)
            .conv(&format!("{tag}_ds"), out, 1, stride, 0)
            .add(&format!("{tag}_add"), trunk)
    } else {
        b = b.add(&format!("{tag}_add"), input);
    }
    b
}

/// AlphaGoZero-style board network: stem + one residual block + heads (the
/// SCALE-Sim topology is a cut-down tower, matching the 2.2 MB footprint).
#[must_use]
pub fn alphagozero() -> Model {
    let mut b = ModelBuilder::new("agz", "AlphaGoZero", (17, 19, 19)).conv("stem", 192, 3, 1, 1);
    let stem = b.next_index() - 1;
    b = b
        .conv("res1_a", 192, 3, 1, 1)
        .conv("res1_b", 192, 3, 1, 1)
        .add("res1_add", stem);
    let tower = b.next_index() - 1;
    b = b
        .conv("policy_conv", 2, 1, 1, 0)
        .fc("policy_fc", 362)
        .from_layer(tower)
        .conv("value_conv", 1, 1, 1, 0)
        .fc("value_fc1", 192)
        .fc("value_fc2", 1);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_vision_models_validate() {
        for m in [
            googlenet(),
            mobilenet(),
            yolo_tiny(),
            alexnet(),
            faster_rcnn(),
            deepface(),
            resnet50(),
            alphagozero(),
        ] {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
            assert!(m.total_macs() > 0, "{} has zero compute", m.name);
        }
    }

    #[test]
    fn footprints_near_table3() {
        // (model, paper MB, tolerance factor)
        let mb = |m: &crate::Model| m.footprint_bytes() as f64 / (1 << 20) as f64;
        // Tolerances are loose: the paper's footprint accounting (Table III)
        // appears weights-dominated, while ours counts every activation
        // tensor too; EXPERIMENTS.md tabulates the exact deltas.
        let cases: [(crate::Model, f64, f64); 8] = [
            (googlenet(), 15.2, 1.0),
            (mobilenet(), 11.4, 1.0),
            (yolo_tiny(), 18.9, 1.0),
            (alexnet(), 11.7, 1.0),
            (faster_rcnn(), 29.3, 1.0),
            (deepface(), 2.2, 1.0),
            (resnet50(), 41.4, 1.0),
            (alphagozero(), 2.2, 1.0),
        ];
        for (m, paper, tol) in cases {
            let got = mb(&m);
            let rel = (got - paper).abs() / paper;
            assert!(
                rel <= tol,
                "{}: computed {got:.1} MB vs paper {paper} MB (rel {rel:.2})",
                m.name
            );
        }
    }

    #[test]
    fn resnet50_has_residual_adds() {
        let m = resnet50();
        let adds = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, crate::LayerKind::Eltwise { .. }))
            .count();
        assert_eq!(adds, 16, "3+4+6+3 bottleneck blocks");
    }

    #[test]
    fn googlenet_has_nine_concats() {
        let m = googlenet();
        let cats = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, crate::LayerKind::Concat { .. }))
            .count();
        assert_eq!(cats, 9);
    }

    #[test]
    fn mobilenet_alternates_dw_pw() {
        let m = mobilenet();
        let dw = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, crate::LayerKind::DwConv { .. }))
            .count();
        assert_eq!(dw, 13);
    }

    #[test]
    fn resnet50_final_shape() {
        let m = resnet50();
        // The layer before gap/fc must be the s5b3 add with 2048x7x7.
        let add = &m.layers[m.layers.len() - 3];
        assert_eq!(add.kind.out_elements(), 2048 * 7 * 7);
    }
}
