//! Definitions of the 14 benchmark networks (Table III).
//!
//! Grouped by family:
//!
//! * [`vision`] — the CNNs: GoogleNet, MobileNet, Yolo-tiny, AlexNet,
//!   FasterRCNN (VGG16 backbone), DeepFace, ResNet50, AlphaGoZero.
//! * [`sequence`] — the recurrent models, lowered to batched GEMMs:
//!   MelodyExtractionDetection, Text-generation, DeepSpeech2.
//! * [`attention`] — the embedding-heavy models that stress fine-grained
//!   memory access: Sentimental-seqCNN, Transformer, NCF.
//! * [`dynamic`] — the dynamic-dataflow workloads outside Table III
//!   (autoregressive decode with KV caches, SGD training steps) that
//!   deliberately break the write-once-per-inference assumption.
//!
//! Dimensions follow the published architectures; where the original uses a
//! structure our layer set cannot express exactly (inception pool-proj
//! branches, locally-connected DeepFace layers), the substitution keeps the
//! layer's GEMM shape and tensor sizes and is noted in the builder code.
//! Computed footprints are compared against the paper's Table III in
//! `EXPERIMENTS.md`.

pub mod attention;
pub mod dynamic;
pub mod sequence;
pub mod vision;
