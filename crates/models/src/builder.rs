//! A small builder that tracks the current activation shape while chaining
//! layers, so model definitions stay close to how architectures are written
//! in papers.

use crate::{Layer, LayerKind, Model, TensorSource};

/// Incrementally builds a [`Model`], tracking the `(c, h, w)` shape of the
/// most recent layer's output.
///
/// # Examples
///
/// ```
/// use tnpu_models::ModelBuilder;
///
/// let model = ModelBuilder::new("tiny", "TinyNet", (3, 32, 32))
///     .conv("c1", 16, 3, 1, 1)
///     .pool("p1", 2, 2)
///     .fc("fc", 10)
///     .build();
/// assert_eq!(model.layers.len(), 3);
/// model.validate().expect("valid model");
/// ```
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    name: String,
    full_name: String,
    input_elements: u64,
    shape: (u64, u64, u64),
    last: TensorSource,
    layers: Vec<Layer>,
}

impl ModelBuilder {
    /// Start a model whose input has shape `(c, h, w)`.
    #[must_use]
    pub fn new(name: &str, full_name: &str, input_shape: (u64, u64, u64)) -> Self {
        let (c, h, w) = input_shape;
        ModelBuilder {
            name: name.to_owned(),
            full_name: full_name.to_owned(),
            input_elements: c * h * w,
            shape: input_shape,
            last: TensorSource::ModelInput,
            layers: Vec::new(),
        }
    }

    /// Index that the *next* pushed layer will get.
    #[must_use]
    pub fn next_index(&self) -> usize {
        self.layers.len()
    }

    /// The source of the current (latest) activation.
    #[must_use]
    pub fn cursor(&self) -> TensorSource {
        self.last
    }

    /// Current activation shape `(c, h, w)`.
    #[must_use]
    pub fn shape(&self) -> (u64, u64, u64) {
        self.shape
    }

    /// Rewind the cursor back to the model input (for models with several
    /// consumers of the input, e.g. NCF's two embedding gathers).
    #[must_use]
    pub fn from_input(mut self) -> Self {
        self.last = TensorSource::ModelInput;
        self
    }

    /// Rewind the cursor to an earlier layer's output (for branches).
    #[must_use]
    pub fn from_layer(mut self, index: usize) -> Self {
        assert!(index < self.layers.len(), "layer {index} not defined yet");
        self.shape = self.layers[index].kind.out_shape();
        self.last = TensorSource::Layer(index);
        self
    }

    fn push(&mut self, name: &str, kind: LayerKind, inputs: Vec<TensorSource>) {
        self.layers.push(Layer {
            name: name.to_owned(),
            kind,
            inputs,
            weights_shared_with: None,
        });
        self.shape = kind.out_shape();
        self.last = TensorSource::Layer(self.layers.len() - 1);
    }

    /// 2-D convolution from the current shape.
    #[must_use]
    pub fn conv(mut self, name: &str, out_c: u64, k: u64, stride: u64, pad: u64) -> Self {
        let (in_c, in_h, in_w) = self.shape;
        let kind = LayerKind::Conv {
            in_c,
            in_h,
            in_w,
            out_c,
            kh: k,
            kw: k,
            stride,
            pad,
        };
        let input = self.last;
        self.push(name, kind, vec![input]);
        self
    }

    /// Non-square 2-D convolution (for speech front-ends).
    #[must_use]
    pub fn conv_rect(
        mut self,
        name: &str,
        out_c: u64,
        kh: u64,
        kw: u64,
        stride: u64,
        pad: u64,
    ) -> Self {
        let (in_c, in_h, in_w) = self.shape;
        let kind = LayerKind::Conv {
            in_c,
            in_h,
            in_w,
            out_c,
            kh,
            kw,
            stride,
            pad,
        };
        let input = self.last;
        self.push(name, kind, vec![input]);
        self
    }

    /// Depthwise convolution.
    #[must_use]
    pub fn dwconv(mut self, name: &str, k: u64, stride: u64, pad: u64) -> Self {
        let (c, in_h, in_w) = self.shape;
        let kind = LayerKind::DwConv {
            c,
            in_h,
            in_w,
            k,
            stride,
            pad,
        };
        let input = self.last;
        self.push(name, kind, vec![input]);
        self
    }

    /// Pooling.
    #[must_use]
    pub fn pool(mut self, name: &str, k: u64, stride: u64) -> Self {
        let (c, in_h, in_w) = self.shape;
        let kind = LayerKind::Pool {
            c,
            in_h,
            in_w,
            k,
            stride,
        };
        let input = self.last;
        self.push(name, kind, vec![input]);
        self
    }

    /// Fully-connected layer; flattens the current shape.
    #[must_use]
    pub fn fc(mut self, name: &str, out_f: u64) -> Self {
        let (c, h, w) = self.shape;
        let kind = LayerKind::Fc {
            in_f: c * h * w,
            out_f,
            batch: 1,
        };
        let input = self.last;
        self.push(name, kind, vec![input]);
        self
    }

    /// Explicit matmul (for attention / recurrent lowering). The current
    /// activation becomes the `M×K` operand.
    #[must_use]
    pub fn matmul(mut self, name: &str, m: u64, k: u64, n: u64) -> Self {
        let kind = LayerKind::MatMul { m, k, n };
        let input = self.last;
        self.push(name, kind, vec![input]);
        self
    }

    /// Embedding gather feeding from the model input (token indices).
    #[must_use]
    pub fn embedding(mut self, name: &str, vocab: u64, dim: u64, seq: u64) -> Self {
        let kind = LayerKind::Embedding { vocab, dim, seq };
        let input = self.last;
        self.push(name, kind, vec![input]);
        self
    }

    /// Residual add between the current activation and layer `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two operand sizes differ.
    #[must_use]
    pub fn add(mut self, name: &str, other: usize) -> Self {
        let elements = self.shape.0 * self.shape.1 * self.shape.2;
        let other_elements = self.layers[other].kind.out_elements();
        assert_eq!(
            elements, other_elements,
            "residual add operands disagree: {elements} vs {other_elements}"
        );
        let (c, h, w) = self.shape;
        let kind = LayerKind::Eltwise { c, h, w };
        let input = self.last;
        self.push(name, kind, vec![input, TensorSource::Layer(other)]);
        self
    }

    /// Concatenate the outputs of `parts` along channels; they must share
    /// spatial dims.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two parts are given.
    #[must_use]
    pub fn concat(mut self, name: &str, parts: &[usize]) -> Self {
        assert!(parts.len() >= 2, "concat needs at least two branches");
        let (_, h, w) = self.layers[parts[0]].kind.out_shape();
        let c: u64 = parts
            .iter()
            .map(|&p| self.layers[p].kind.out_shape().0)
            .sum();
        let kind = LayerKind::Concat { c, h, w };
        let inputs = parts.iter().map(|&p| TensorSource::Layer(p)).collect();
        self.push(name, kind, inputs);
        self
    }

    /// Apply `f` to the builder `n` times, passing the repetition index —
    /// the natural way to express a stack of identical blocks (decoder
    /// layers, residual stages) without threading the builder through a
    /// manual loop.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnpu_models::ModelBuilder;
    ///
    /// let model = ModelBuilder::new("t", "t", (3, 32, 32))
    ///     .repeat(3, |b, i| b.conv(&format!("c{i}"), 16, 3, 1, 1))
    ///     .build();
    /// assert_eq!(model.layers.len(), 3);
    /// ```
    #[must_use]
    pub fn repeat(mut self, n: usize, mut f: impl FnMut(Self, usize) -> Self) -> Self {
        for i in 0..n {
            self = f(self, i);
        }
        self
    }

    /// Mark the most recent layer as sharing its weight tensor with layer
    /// `index` (tied weights).
    ///
    /// # Panics
    ///
    /// Panics if no layer has been pushed yet.
    #[must_use]
    pub fn share_weights_with(mut self, index: usize) -> Self {
        let last = self.layers.last_mut().expect("no layer to annotate");
        last.weights_shared_with = Some(index);
        self
    }

    /// Finish and validate the model.
    ///
    /// # Panics
    ///
    /// Panics if the assembled data-flow graph is invalid (builder misuse).
    #[must_use]
    pub fn build(self) -> Model {
        let model = Model {
            name: self.name,
            full_name: self.full_name,
            input_elements: self.input_elements,
            layers: self.layers,
        };
        if let Err(e) = model.validate() {
            panic!("builder produced invalid model {}: {e}", model.name);
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ELEM_BYTES;

    #[test]
    fn shapes_chain_through_layers() {
        let b = ModelBuilder::new("t", "t", (3, 224, 224))
            .conv("c1", 64, 7, 2, 3)
            .pool("p1", 2, 2);
        assert_eq!(b.shape(), (64, 56, 56));
    }

    #[test]
    fn residual_block_builds_valid_dag() {
        let mut b = ModelBuilder::new("t", "t", (16, 8, 8));
        b = b.conv("c1", 16, 3, 1, 1);
        let trunk = b.next_index() - 1;
        b = b.conv("c2", 16, 3, 1, 1).add("add", trunk);
        let m = b.build();
        assert_eq!(m.layers.len(), 3);
        assert_eq!(
            m.layers[2].inputs,
            vec![TensorSource::Layer(1), TensorSource::Layer(0)]
        );
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mismatched_residual_panics() {
        let b = ModelBuilder::new("t", "t", (16, 8, 8)).conv("c1", 16, 3, 1, 1);
        let trunk = b.next_index() - 1;
        let _ = b.conv("c2", 32, 3, 1, 1).add("add", trunk);
    }

    #[test]
    fn fc_flattens() {
        let m = ModelBuilder::new("t", "t", (8, 4, 4)).fc("fc", 10).build();
        assert_eq!(
            m.layers[0].kind.weight_elements() * ELEM_BYTES,
            8 * 4 * 4 * 10 * 2
        );
    }

    #[test]
    fn from_layer_rewinds_cursor() {
        let b = ModelBuilder::new("t", "t", (3, 8, 8))
            .conv("c1", 4, 3, 1, 1)
            .conv("c2", 8, 3, 1, 1)
            .from_layer(0);
        assert_eq!(b.shape(), (4, 8, 8));
        assert_eq!(b.cursor(), TensorSource::Layer(0));
    }
}
