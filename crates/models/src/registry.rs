//! Lookup of the 14 benchmark models by their short names, plus the
//! dynamic-dataflow workloads that live outside the Table III suite.

use crate::defs::{attention, dynamic, sequence, vision};
use crate::Model;

/// Short names of all 14 models, in the order the paper's figures plot
/// them (Table III order).
pub const MODEL_NAMES: [&str; 14] = [
    "goo", "mob", "yt", "alex", "rcnn", "df", "res", "med", "tx", "agz", "sent", "ds2", "tf", "ncf",
];

/// The dynamic-dataflow workloads ([`crate::defs::dynamic`]). Registered
/// like any other model — the attack/fault matrices and the serving
/// plane resolve them by name — but kept out of [`MODEL_NAMES`] so the
/// paper's static figures are untouched.
pub const DYNAMIC_MODEL_NAMES: [&str; 2] = ["decode", "train"];

/// Construct the model with the given short name.
///
/// # Examples
///
/// ```
/// let res = tnpu_models::registry::model("res").expect("registered");
/// assert_eq!(res.full_name, "Resnet50");
/// assert!(tnpu_models::registry::model("nope").is_none());
/// ```
#[must_use]
pub fn model(name: &str) -> Option<Model> {
    let m = match name {
        "goo" => vision::googlenet(),
        "mob" => vision::mobilenet(),
        "yt" => vision::yolo_tiny(),
        "alex" => vision::alexnet(),
        "rcnn" => vision::faster_rcnn(),
        "df" => vision::deepface(),
        "res" => vision::resnet50(),
        "med" => sequence::melody_extraction(),
        "tx" => sequence::text_generation(),
        "agz" => vision::alphagozero(),
        "sent" => attention::sentimental(),
        "ds2" => sequence::deepspeech2(),
        "tf" => attention::transformer(),
        "ncf" => attention::ncf(),
        "decode" => dynamic::decode(),
        "train" => dynamic::train(),
        _ => return None,
    };
    Some(m)
}

/// All 14 models, in figure order.
#[must_use]
pub fn all_models() -> Vec<Model> {
    MODEL_NAMES
        .iter()
        .map(|n| model(n).expect("registered model"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fourteen_resolve_and_validate() {
        let models = all_models();
        assert_eq!(models.len(), 14);
        for m in &models {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn names_match_registry_keys() {
        for name in MODEL_NAMES {
            let m = model(name).expect("registered");
            assert_eq!(m.name, name);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(model("resnet101").is_none());
    }

    #[test]
    fn dynamic_models_resolve_but_stay_out_of_the_suite() {
        for name in DYNAMIC_MODEL_NAMES {
            let m = model(name).expect("registered");
            assert_eq!(m.name, name);
            m.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                !MODEL_NAMES.contains(&name),
                "{name} must not join Table III"
            );
        }
        assert_eq!(all_models().len(), 14, "figure order unchanged");
    }

    #[test]
    fn suite_average_footprint_near_paper() {
        // Table III footprints average ~25 MB across the suite; our
        // reconstructions should land in the same regime.
        let total: u64 = all_models().iter().map(Model::footprint_bytes).sum();
        let avg_mb = total as f64 / 14.0 / (1 << 20) as f64;
        assert!(
            (15.0..40.0).contains(&avg_mb),
            "suite average footprint {avg_mb:.1} MB out of range"
        );
    }
}
