//! Developer tool: computed footprint and MAC count per model (the data
//! behind Table III). `cargo run -p tnpu-models --example footprints`

fn main() {
    for m in tnpu_models::registry::all_models() {
        println!(
            "{:6} {:8.1} MB  macs {:.2} G",
            m.name,
            m.footprint_bytes() as f64 / (1 << 20) as f64,
            m.total_macs() as f64 / 1e9
        );
    }
}
