//! The shared memory controller.
//!
//! All NPUs' DMA transfers funnel through one controller, which owns the
//! (single, shared) security engine — exactly the paper's multi-NPU setup:
//! *"each NPU has a separate IOMMU while the memory controller and security
//! engine are shared, sharing memory bandwidth and the capacity of metadata
//! caches"* (§V-C).
//!
//! Transfers are served first-come-first-served and occupy the memory
//! system for their full duration:
//!
//! ```text
//! duration = (data + metadata bytes) / bandwidth
//!          + DRAM latency                  (stream fill)
//!          + cipher pipeline latency       (OTP or XTS fill)
//!          + tree-walk latency exposure    (dependent metadata fetches)
//! ```
//!
//! *Independent* metadata fetches (counter blocks, MAC blocks) interleave
//! with the bulk data stream, so they cost bandwidth only. *Dependent*
//! fetches — integrity-tree walk levels, which must verify parent before
//! child — expose DRAM latency; walks for different blocks overlap up to
//! the memory system's MLP depth. This is why counter-cache misses are the
//! baseline's critical bottleneck (paper §III-B) while MAC traffic mainly
//! costs bandwidth (§V-B).

use crate::config::NpuConfig;
use crate::dma::{Dir, Transfer};
use tnpu_memprot::engine::{AccessCost, EngineStats, ProtectionEngine};
use tnpu_sim::dram::{BandwidthModel, DramTiming};
use tnpu_sim::{Addr, Cycles, BLOCK_SIZE};

/// Outcome of serving one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    /// When the transfer completed.
    pub completion: Cycles,
    /// Payload bytes moved (whole 64 B blocks).
    pub data_bytes: u64,
    /// Security-metadata bytes moved alongside.
    pub meta_bytes: u64,
}

/// FCFS memory controller with an attached protection engine.
pub struct MemoryController {
    engine: Box<dyn ProtectionEngine>,
    bandwidth: BandwidthModel,
    dram: DramTiming,
    free_time: Cycles,
    data_read: u64,
    data_write: u64,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("scheme", &self.engine.scheme())
            .field("free_time", &self.free_time)
            .field("data_read", &self.data_read)
            .field("data_write", &self.data_write)
            .finish()
    }
}

/// Version-table entry address inside the fully-protected region.
///
/// The table is compact (§IV-D: 1.3 KB on average): reads use the
/// tensor-unit entry (8 B per tensor); writes go to the tile-expanded
/// scratch area, which is reused across layers — the expansion is merged
/// back into the tensor entry when the layer completes, so only the
/// currently-produced tensor is ever expanded.
#[must_use]
pub fn vtable_addr(tensor_id: u32, tile_id: u32, write: bool) -> Addr {
    /// Start of the tile-expansion scratch area.
    const EXPANDED_BASE: u64 = 64 << 10;
    if write {
        Addr(EXPANDED_BASE + u64::from(tile_id % 1024) * 8)
    } else {
        Addr(u64::from(tensor_id) * 8)
    }
}

impl MemoryController {
    /// Build a controller for NPUs of configuration `npu`, fronted by
    /// `engine`.
    #[must_use]
    pub fn new(engine: Box<dyn ProtectionEngine>, npu: &NpuConfig) -> Self {
        MemoryController {
            engine,
            bandwidth: npu.bandwidth,
            dram: npu.dram,
            free_time: Cycles::ZERO,
            data_read: 0,
            data_write: 0,
        }
    }

    /// Serve `transfer`, which became ready at `arrival`. Returns its
    /// completion time and byte counts.
    pub fn serve(&mut self, transfer: &Transfer, arrival: Cycles) -> Served {
        let mut cost = AccessCost::FREE;
        let mut blocks = 0u64;
        let engine = &mut self.engine;
        transfer.pattern.for_each_run(|run| {
            blocks += run.len;
            let c = match transfer.dir {
                Dir::Read => engine.read_run(run, transfer.version),
                Dir::Write => engine.write_run(run, transfer.version),
            };
            cost.merge(c);
        });
        // The accompanying software version-table access (one per
        // mvin/mvout); free for all schemes except tree-less.
        let write = transfer.dir == Dir::Write;
        cost.merge(engine.version_access(
            vtable_addr(transfer.tensor_id, transfer.tile_id, write),
            write,
        ));
        let data_bytes = blocks * BLOCK_SIZE as u64;
        match transfer.dir {
            Dir::Read => self.data_read += data_bytes,
            Dir::Write => self.data_write += data_bytes,
        }
        // Serial (per-block dependent) metadata fetches expose latency;
        // chains from different blocks of the stream overlap up to the
        // MLP depth, so they enter stall() as pipelined misses.
        let duration = self.bandwidth.transfer_time(data_bytes + cost.meta_bytes)
            + self.dram.latency
            + self.engine.pipeline_latency()
            + self.dram.stall(cost.serial_misses, 0);
        let start = self.free_time.max(arrival);
        self.free_time = start + duration;
        Served {
            completion: self.free_time,
            data_bytes,
            meta_bytes: cost.meta_bytes,
        }
    }

    /// Payload bytes read so far.
    #[must_use]
    pub fn data_read(&self) -> u64 {
        self.data_read
    }

    /// Payload bytes written so far.
    #[must_use]
    pub fn data_write(&self) -> u64 {
        self.data_write
    }

    /// Engine statistics so far.
    #[must_use]
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// The protection scheme in use.
    #[must_use]
    pub fn scheme(&self) -> tnpu_memprot::SchemeKind {
        self.engine.scheme()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::DmaPattern;
    use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};

    fn controller(scheme: SchemeKind) -> MemoryController {
        let engine = build_engine(scheme, &ProtectionConfig::paper_default());
        MemoryController::new(engine, &NpuConfig::small_npu())
    }

    fn read_4kb(at: u64) -> Transfer {
        Transfer {
            pattern: DmaPattern::Contiguous {
                base: Addr(at),
                bytes: 4096,
            },
            dir: Dir::Read,
            tensor_id: 1,
            tile_id: 0,
            version: 1,
        }
    }

    #[test]
    fn unsecure_transfer_time_is_bandwidth_plus_latency() {
        let mut c = controller(SchemeKind::Unsecure);
        let served = c.serve(&read_4kb(0), Cycles::ZERO);
        // 4096 B at 4 B/cyc = 1024, plus 275 cycles DRAM latency (100 ns
        // at the Small NPU's 2.75 GHz).
        assert_eq!(served.completion, Cycles(1299));
        assert_eq!(served.data_bytes, 4096);
        assert_eq!(served.meta_bytes, 0);
    }

    #[test]
    fn fcfs_queues_back_to_back() {
        let mut c = controller(SchemeKind::Unsecure);
        let first = c.serve(&read_4kb(0), Cycles::ZERO);
        // Second transfer arrives early: starts when the first finishes.
        let second = c.serve(&read_4kb(8192), Cycles(10));
        assert_eq!(second.completion, first.completion + Cycles(1299));
        // Third arrives late: starts at its arrival.
        let third = c.serve(&read_4kb(16384), second.completion + Cycles(500));
        assert_eq!(third.completion.0, second.completion.0 + 500 + 1299);
    }

    #[test]
    fn protected_streams_are_slower_and_ordered() {
        // Stream 1 MB back-to-back: TNPU's one-off version-table warm-up
        // amortizes away, and the steady-state ordering emerges:
        // unsecure < tree-less < tree-based.
        let mut unsec = controller(SchemeKind::Unsecure);
        let mut tnpu = controller(SchemeKind::Treeless);
        let mut tree = controller(SchemeKind::TreeBased);
        let (mut u, mut l, mut t) = (Cycles::ZERO, Cycles::ZERO, Cycles::ZERO);
        for i in 0..256u64 {
            u = unsec.serve(&read_4kb(i * 4096), Cycles::ZERO).completion;
            l = tnpu.serve(&read_4kb(i * 4096), Cycles::ZERO).completion;
            t = tree.serve(&read_4kb(i * 4096), Cycles::ZERO).completion;
        }
        assert!(u < l, "tnpu adds MAC traffic: {u} vs {l}");
        assert!(l < t, "tree adds counter+tree walks: {l} vs {t}");
    }

    #[test]
    fn traffic_accounting_by_direction() {
        let mut c = controller(SchemeKind::Unsecure);
        c.serve(&read_4kb(0), Cycles::ZERO);
        let mut w = read_4kb(4096);
        w.dir = Dir::Write;
        c.serve(&w, Cycles::ZERO);
        assert_eq!(c.data_read(), 4096);
        assert_eq!(c.data_write(), 4096);
    }

    #[test]
    fn version_traffic_appears_only_for_treeless() {
        let mut tnpu = controller(SchemeKind::Treeless);
        tnpu.serve(&read_4kb(0), Cycles::ZERO);
        assert!(tnpu.engine_stats().traffic.version > 0);
        let mut tree = controller(SchemeKind::TreeBased);
        tree.serve(&read_4kb(0), Cycles::ZERO);
        assert_eq!(tree.engine_stats().traffic.version, 0);
    }

    #[test]
    fn vtable_addresses_are_compact() {
        // Tensor-unit read entries: 8 B apart.
        assert_ne!(vtable_addr(0, 0, false), vtable_addr(1, 0, false));
        assert_eq!(vtable_addr(1, 0, false).0, 8);
        // Reads of different tiles share the tensor entry.
        assert_eq!(vtable_addr(3, 0, false), vtable_addr(3, 9, false));
        // Writes use the tile-expansion scratch, distinct per tile.
        assert_ne!(vtable_addr(0, 0, true), vtable_addr(0, 1, true));
        assert_ne!(vtable_addr(0, 0, true), vtable_addr(0, 0, false));
    }
}
