//! Scheme-independent tile traces: lower once, replay against many engines.
//!
//! Lowering a model (allocate → tile → lower to `mvin`/`compute`/`mvout`
//! jobs) is a pure function of the model, the NPU configuration, the NPU's
//! region base address and the per-NPU workload seed — the protection
//! scheme never feeds into it. Yet the experiment sweeps re-ran the whole
//! tiler for every (scheme × cell), the matrix dimension that dominates
//! cell count. A [`TileTrace`] captures the lowered per-NPU plans once and
//! [`replay`]s them against any engine; only the (cheap) earliest-arrival
//! scheduling loop re-runs, because the *interleaving* of transfers does
//! depend on the scheme's timing.
//!
//! Replays are sound across two more dimensions:
//!
//! * **NPU count** — NPU `i`'s plan depends only on its own index (region
//!   base `i * NPU_REGION_STRIDE`, seed stream `i`), never on how many
//!   NPUs run beside it, so a trace built for N NPUs replays any
//!   `count <= N` as a prefix.
//! * **Protection parameters** — cache sizes, tree arity and counter
//!   granularity only affect the engine, so ablation variants share one
//!   trace too.
//!
//! [`replay`]: TileTrace::replay

use crate::alloc::ModelLayout;
use crate::config::NpuConfig;
use crate::controller::MemoryController;
use crate::machine::NpuMachine;
use crate::multi::NPU_REGION_STRIDE;
use crate::report::RunReport;
use crate::tiler::{self, ModelPlan};
use tnpu_memprot::ProtectionEngine;
use tnpu_models::Model;
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::Addr;

/// The scheme-independent part of a multi-NPU simulation: one lowered
/// [`ModelPlan`] per NPU, in NPU-index order.
#[derive(Debug, Clone)]
pub struct TileTrace {
    plans: Vec<ModelPlan>,
}

impl TileTrace {
    /// Lower one NPU per entry of `models` (heterogeneous tenancy), with
    /// per-NPU seeds split from `base_seed` by NPU index — bit-identical
    /// to what [`crate::multi::run_shared_mixed_seeded`] lowers.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or a model's tensors exceed the per-NPU
    /// region.
    #[must_use]
    pub fn build(models: &[&Model], npu: &NpuConfig, base_seed: u64) -> Self {
        assert!(!models.is_empty(), "need at least one NPU");
        let plans = models
            .iter()
            .enumerate()
            .map(|(i, model)| {
                let base = Addr(i as u64 * NPU_REGION_STRIDE);
                let layout = ModelLayout::allocate(model, base);
                assert!(
                    layout.total_bytes <= NPU_REGION_STRIDE,
                    "model does not fit the per-NPU region"
                );
                // Different streams: each NPU serves different requests
                // (distinct embedding gathers), like independent inference
                // streams — split per NPU index, never per worker thread.
                let seed = SplitMix64::stream(base_seed, i as u64).next_u64();
                tiler::plan(model, npu, &layout, seed)
            })
            .collect();
        TileTrace { plans }
    }

    /// [`build`] for `count` NPUs all inferring the same `model`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or the model's tensors exceed the per-NPU
    /// region.
    ///
    /// [`build`]: TileTrace::build
    #[must_use]
    pub fn build_replicated(model: &Model, npu: &NpuConfig, count: usize, base_seed: u64) -> Self {
        assert!(count > 0, "need at least one NPU");
        let models: Vec<&Model> = std::iter::repeat_n(model, count).collect();
        Self::build(&models, npu, base_seed)
    }

    /// Lower a step-loop workload — one model per step of an
    /// autoregressive decode or training session — into a single plan per
    /// NPU, for `count` NPUs each executing the full sequence. Step `s`
    /// of NPU `i` is lowered exactly like a standalone launch of that
    /// step's model in NPU `i`'s region (same base address, the `s`-th
    /// seed of the NPU's stream), then the per-step job streams are
    /// concatenated in step order with layer indices rebased, so
    /// [`replay`] — and everything built on it, including the trace-once
    /// batching — works on stepped traces unchanged. Layer names carry an
    /// `"s{step}."` prefix so per-layer reports stay unambiguous.
    ///
    /// Successive steps reuse the region's addresses: the step kernel
    /// re-launches over the same tensor arena while the KV caches grow in
    /// place, which is what charges the per-step version-metadata traffic
    /// through the engine on every step's transfers.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, `count` is zero, or a step's tensors
    /// exceed the per-NPU region.
    ///
    /// [`replay`]: TileTrace::replay
    #[must_use]
    pub fn build_steps(steps: &[&Model], npu: &NpuConfig, count: usize, base_seed: u64) -> Self {
        assert!(!steps.is_empty(), "need at least one step");
        assert!(count > 0, "need at least one NPU");
        let plans = (0..count)
            .map(|i| {
                let base = Addr(i as u64 * NPU_REGION_STRIDE);
                // Same per-NPU stream as `build`: the s-th step consumes
                // the stream's s-th draw, so a one-step stepped trace is
                // job-identical to the plain single-model trace.
                let mut rng = SplitMix64::stream(base_seed, i as u64);
                let mut jobs = Vec::new();
                let mut layer_jobs = Vec::new();
                let mut layer_names = Vec::new();
                let mut layout = None;
                for (si, model) in steps.iter().enumerate() {
                    let step_layout = ModelLayout::allocate(model, base);
                    assert!(
                        step_layout.total_bytes <= NPU_REGION_STRIDE,
                        "step model does not fit the per-NPU region"
                    );
                    let seed = rng.next_u64();
                    let p =
                        tiler::plan_with_prefix(model, npu, &step_layout, seed, &format!("s{si}."));
                    let job_off = jobs.len();
                    let layer_off = layer_jobs.len();
                    jobs.extend(p.jobs.into_iter().map(|mut j| {
                        j.layer += layer_off;
                        j
                    }));
                    layer_jobs.extend(
                        p.layer_jobs
                            .into_iter()
                            .map(|(s, e)| (s + job_off, e + job_off)),
                    );
                    layer_names.extend(p.layer_names);
                    layout = Some(p.layout);
                }
                ModelPlan {
                    jobs,
                    layer_jobs,
                    layer_names,
                    // The final step's map (the fully grown caches) — the
                    // replay machinery never consumes it; kept for
                    // inspection like the single-model plans'.
                    layout: layout.expect("at least one step"),
                }
            })
            .collect();
        TileTrace { plans }
    }

    /// Number of NPUs the trace covers (the maximum replayable `count`).
    #[must_use]
    pub fn npus(&self) -> usize {
        self.plans.len()
    }

    /// Replay the first `count` NPUs' plans against `engine`: the shared
    /// memory controller serves, at every step, the machine whose next
    /// transfer has the earliest arrival time, exactly as the build path
    /// does. Returns one report per NPU.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds [`npus`].
    ///
    /// [`npus`]: TileTrace::npus
    #[must_use]
    pub fn replay(
        &self,
        engine: Box<dyn ProtectionEngine>,
        npu: &NpuConfig,
        count: usize,
    ) -> Vec<RunReport> {
        assert!(count > 0, "need at least one NPU");
        assert!(
            count <= self.plans.len(),
            "trace covers {} NPUs, asked for {count}",
            self.plans.len()
        );
        let mut machines: Vec<NpuMachine> = self.plans[..count]
            .iter()
            .map(|plan| NpuMachine::new(plan.clone()))
            .collect();
        let mut ctl = MemoryController::new(engine, npu);
        loop {
            let next = machines
                .iter()
                .enumerate()
                .filter_map(|(i, m)| m.next_arrival().map(|a| (a, i)))
                .min();
            match next {
                Some((_, i)) => machines[i].serve_next(&mut ctl),
                None => break,
            }
        }
        machines.into_iter().map(|m| m.into_report(&ctl)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi;
    use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};

    fn model(name: &str) -> Model {
        tnpu_models::registry::model(name).expect("registered")
    }

    fn engine(scheme: SchemeKind) -> Box<dyn ProtectionEngine> {
        build_engine(scheme, &ProtectionConfig::paper_default())
    }

    #[test]
    fn replay_matches_direct_run_for_every_scheme() {
        let m = model("df");
        let npu = NpuConfig::small_npu();
        let trace = TileTrace::build_replicated(&m, &npu, 2, 0xBEEF);
        for scheme in SchemeKind::ALL {
            let replayed = trace.replay(engine(scheme), &npu, 2);
            let direct = multi::run_shared_seeded(&m, &npu, engine(scheme), 2, 0xBEEF);
            assert_eq!(replayed, direct, "{scheme}");
        }
    }

    #[test]
    fn prefix_replay_matches_smaller_direct_run() {
        // A trace built for 3 NPUs replays 1- and 2-NPU runs exactly:
        // plans depend on the NPU's own index, never on the count.
        let m = model("df");
        let npu = NpuConfig::small_npu();
        let trace = TileTrace::build_replicated(&m, &npu, 3, 0xBEEF);
        for count in 1..=3usize {
            let replayed = trace.replay(engine(SchemeKind::Treeless), &npu, count);
            let direct =
                multi::run_shared_seeded(&m, &npu, engine(SchemeKind::Treeless), count, 0xBEEF);
            assert_eq!(replayed, direct, "count {count}");
        }
    }

    #[test]
    fn replay_does_not_consume_the_trace() {
        let m = model("df");
        let npu = NpuConfig::small_npu();
        let trace = TileTrace::build_replicated(&m, &npu, 1, 7);
        let a = trace.replay(engine(SchemeKind::Unsecure), &npu, 1);
        let b = trace.replay(engine(SchemeKind::Unsecure), &npu, 1);
        assert_eq!(a, b, "replay is repeatable from one trace");
    }

    #[test]
    #[should_panic(expected = "trace covers 1 NPUs")]
    fn oversized_replay_panics() {
        let m = model("df");
        let npu = NpuConfig::small_npu();
        let trace = TileTrace::build_replicated(&m, &npu, 1, 7);
        let _ = trace.replay(engine(SchemeKind::Unsecure), &npu, 2);
    }

    fn decode_steps(n: u64) -> Vec<Model> {
        (1..=n)
            .map(tnpu_models::defs::dynamic::decode_step)
            .collect()
    }

    #[test]
    fn one_step_trace_is_job_identical_to_the_plain_trace() {
        // A stepped trace of a single step must lower the exact same job
        // stream as the plain single-model trace (same region base, same
        // seed draw) — only the report names carry the step prefix.
        let m = model("ncf");
        let npu = NpuConfig::small_npu();
        let stepped = TileTrace::build_steps(&[&m], &npu, 2, 0xBEEF);
        let plain = TileTrace::build_replicated(&m, &npu, 2, 0xBEEF);
        for (s, p) in stepped.plans.iter().zip(&plain.plans) {
            assert_eq!(s.jobs, p.jobs);
            assert_eq!(s.layer_jobs, p.layer_jobs);
            assert_eq!(s.layer_names[0], format!("s0.{}", p.layer_names[0]));
        }
    }

    #[test]
    fn stepped_replay_is_deterministic_for_every_scheme() {
        let steps = decode_steps(4);
        let refs: Vec<&Model> = steps.iter().collect();
        let npu = NpuConfig::small_npu();
        let trace = TileTrace::build_steps(&refs, &npu, 2, 0xBEEF);
        let again = TileTrace::build_steps(&refs, &npu, 2, 0xBEEF);
        for scheme in SchemeKind::ALL {
            let a = trace.replay(engine(scheme), &npu, 2);
            let b = again.replay(engine(scheme), &npu, 2);
            assert_eq!(a, b, "{scheme}");
        }
    }

    #[test]
    fn stepped_prefix_replay_matches_smaller_build() {
        // Like the static prefix property: NPU i's stepped plan depends
        // only on its own index, so a trace built for 3 NPUs replays 1-
        // and 2-NPU sessions exactly as traces built at that size.
        let steps = decode_steps(3);
        let refs: Vec<&Model> = steps.iter().collect();
        let npu = NpuConfig::small_npu();
        let big = TileTrace::build_steps(&refs, &npu, 3, 0xBEEF);
        for count in 1..=2usize {
            let small = TileTrace::build_steps(&refs, &npu, count, 0xBEEF);
            let a = big.replay(engine(SchemeKind::Treeless), &npu, count);
            let b = small.replay(engine(SchemeKind::Treeless), &npu, count);
            assert_eq!(a, b, "count {count}");
        }
    }

    #[test]
    fn stepped_layers_accumulate_across_steps() {
        let steps = decode_steps(5);
        let refs: Vec<&Model> = steps.iter().collect();
        let npu = NpuConfig::small_npu();
        let trace = TileTrace::build_steps(&refs, &npu, 1, 7);
        let per_step = steps[0].layers.len();
        let reports = trace.replay(engine(SchemeKind::Treeless), &npu, 1);
        assert_eq!(reports[0].layers.len(), 5 * per_step);
        // Later steps attend over longer caches, so the whole-session
        // cycle count strictly exceeds five replays of the first step.
        let first_only = TileTrace::build_steps(&refs[..1], &npu, 1, 7).replay(
            engine(SchemeKind::Treeless),
            &npu,
            1,
        );
        assert!(reports[0].total.0 > 5 * first_only[0].total.0 / 2);
    }
}
