//! DMA transfer descriptors and their 64 B block streams.
//!
//! A `mvin`/`mvout` instruction moves one tile between DRAM and the SPM.
//! Tiles of row-major matrices are 2-D slabs: `rows` segments of
//! `row_bytes`, `stride` apart. The *stride* is what produces the paper's
//! fine-grained behaviour: a tile of a matrix with a large row stride (a
//! vocabulary-sized projection, an embedding gather) touches a different
//! counter/MAC block region on every row.

use tnpu_sim::{Addr, BlockAddr, BLOCK_SIZE};

pub use tnpu_sim::BlockRun;

/// Incremental assembler of maximal [`BlockRun`]s from a stream of byte
/// segments, mirroring the coalescing DMA engine: a segment whose first
/// block equals the previously visited block drops that duplicate access,
/// and a segment that starts exactly one block past the current run extends
/// it instead of opening a new one.
struct RunBuilder {
    cur: Option<BlockRun>,
}

impl RunBuilder {
    fn new() -> Self {
        RunBuilder { cur: None }
    }

    /// Feed one `[start, start + bytes)` segment, emitting any run that can
    /// no longer grow.
    fn push(&mut self, start: Addr, bytes: u64, f: &mut impl FnMut(BlockRun)) {
        if bytes == 0 {
            return;
        }
        let mut first = start.block().0;
        let last = start
            .0
            .checked_add(bytes - 1)
            .expect("DMA segment end overflows u64")
            / BLOCK_SIZE as u64;
        if let Some(cur) = &mut self.cur {
            // Runs come from real byte addresses, so block indices stay
            // far below u64::MAX / BLOCK_SIZE; checked ops keep any
            // violated assumption loud instead of wrapping.
            let cur_last = cur
                .first
                .0
                .checked_add(cur.len - 1)
                .expect("run end overflows u64");
            if first == cur_last {
                // Coalesce: the engine stays on the block it just touched.
                first = cur_last.checked_add(1).expect("run end overflows u64");
            }
            if first > last {
                return; // segment fully coalesced into the previous access
            }
            if first == cur_last.checked_add(1).expect("run end overflows u64") {
                cur.len = cur
                    .len
                    .checked_add(last - first)
                    .and_then(|l| l.checked_add(1))
                    .expect("run length overflows u64");
                return;
            }
            f(*cur);
        }
        self.cur = Some(BlockRun {
            first: BlockAddr(first),
            len: (last - first)
                .checked_add(1)
                .expect("run length overflows u64"),
        });
    }

    fn finish(self, f: &mut impl FnMut(BlockRun)) {
        if let Some(cur) = self.cur {
            f(cur);
        }
    }
}

/// Address pattern of one DMA transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmaPattern {
    /// One contiguous byte range.
    Contiguous {
        /// Start address.
        base: Addr,
        /// Length in bytes.
        bytes: u64,
    },
    /// `rows` segments of `row_bytes`, starting `stride` apart.
    Strided {
        /// First segment address.
        base: Addr,
        /// Number of segments.
        rows: u64,
        /// Bytes per segment.
        row_bytes: u64,
        /// Distance between segment starts.
        stride: u64,
    },
    /// Arbitrary same-length segments (embedding gathers).
    Scattered {
        /// Segment start addresses.
        rows: Vec<Addr>,
        /// Bytes per segment.
        row_bytes: u64,
    },
}

impl DmaPattern {
    /// Total payload bytes moved.
    ///
    /// Panics if `rows * row_bytes` overflows `u64`: a descriptor that
    /// large cannot describe a real transfer, and wrapping here would
    /// silently under-account traffic downstream.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        match self {
            DmaPattern::Contiguous { bytes, .. } => *bytes,
            DmaPattern::Strided {
                rows, row_bytes, ..
            } => rows
                .checked_mul(*row_bytes)
                .expect("strided DMA payload overflows u64"),
            DmaPattern::Scattered { rows, row_bytes } => (rows.len() as u64)
                .checked_mul(*row_bytes)
                .expect("scattered DMA payload overflows u64"),
        }
    }

    /// The maximal runs of consecutive 64 B blocks this transfer touches,
    /// in access order. Adjacent segments that tile contiguously merge into
    /// one run; a segment that re-enters the block the engine just touched
    /// drops that duplicate access (the same coalescing
    /// [`for_each_block`] models, expressed as runs). Emitted runs are
    /// never empty.
    ///
    /// [`for_each_block`]: DmaPattern::for_each_block
    pub fn for_each_run(&self, mut f: impl FnMut(BlockRun)) {
        let mut b = RunBuilder::new();
        match self {
            DmaPattern::Contiguous { base, bytes } => b.push(*base, *bytes, &mut f),
            DmaPattern::Strided {
                base,
                rows,
                row_bytes,
                stride,
            } => {
                for r in 0..*rows {
                    let start = base.offset(
                        r.checked_mul(*stride)
                            .expect("strided DMA row offset overflows u64"),
                    );
                    b.push(start, *row_bytes, &mut f);
                }
            }
            DmaPattern::Scattered { rows, row_bytes } => {
                for start in rows {
                    b.push(*start, *row_bytes, &mut f);
                }
            }
        }
        b.finish(&mut f);
    }

    /// The distinct 64 B blocks this transfer touches, in access order.
    /// Segments that share a block (contiguous rows) still produce one
    /// access per segment-block pair only when the block changes, mirroring
    /// a DMA engine that coalesces sequential block accesses.
    pub fn for_each_block(&self, mut f: impl FnMut(BlockAddr)) {
        self.for_each_run(|run| {
            for block in run.blocks() {
                f(block);
            }
        });
    }

    /// Count of block accesses this transfer performs.
    ///
    /// Closed-form for `Contiguous` and `Strided` (no block enumeration);
    /// `Scattered` is summed per segment through [`for_each_run`], which is
    /// O(segments) rather than O(blocks).
    ///
    /// [`for_each_run`]: DmaPattern::for_each_run
    #[must_use]
    pub fn block_count(&self) -> u64 {
        match self {
            DmaPattern::Contiguous { base, bytes } => tnpu_sim::block_count(*base, *bytes),
            DmaPattern::Strided {
                base,
                rows,
                row_bytes,
                stride,
            } => strided_block_count(*base, *rows, *row_bytes, *stride),
            DmaPattern::Scattered { .. } => {
                let mut n: u64 = 0;
                self.for_each_run(|run| n = n.saturating_add(run.len));
                n
            }
        }
    }
}

/// Closed-form block-access count for a strided pattern, matching the
/// coalescing semantics of [`DmaPattern::for_each_run`] without enumerating
/// a single block.
///
/// Row `r` starts at in-block byte offset `m_r = (base + r*stride) % 64`
/// and touches `blk(m_r) = (m_r + row_bytes - 1)/64 + 1` blocks; its first
/// access is dropped when it lands on the block the previous row ended in,
/// i.e. when `(m + stride)/64 == (m + row_bytes - 1)/64` for the previous
/// row's offset `m` (the whole-number block parts cancel, so only the
/// offsets matter). `m_r` is periodic in `r` with period
/// `64 / gcd(stride % 64, 64) <= 64`, so both sums reduce to full-period
/// totals plus a remainder prefix — O(period), not O(rows * row_bytes).
fn strided_block_count(base: Addr, rows: u64, row_bytes: u64, stride: u64) -> u64 {
    if rows == 0 || row_bytes == 0 {
        return 0;
    }
    // Mirror the enumeration path's overflow behaviour: a descriptor whose
    // last row offset or segment end overflows the address space panics
    // loudly instead of returning a silently-wrapped count.
    let last_start = rows
        .checked_sub(1)
        .and_then(|r| r.checked_mul(stride))
        .and_then(|off| base.0.checked_add(off))
        .expect("strided DMA row offset overflows u64");
    let _ = last_start
        .checked_add(row_bytes - 1)
        .expect("DMA segment end overflows u64");

    let bsz = BLOCK_SIZE as u64;
    // Blocks covered by a row starting at in-block offset `m`. The adds are
    // guarded by the segment-end check above (`m <= base + r*stride`).
    let blk = |m: u64| {
        (m.checked_add(row_bytes - 1)
            .expect("row span overflows u64")
            / bsz)
            .checked_add(1)
            .expect("row block count overflows u64")
    };
    // Whether the *next* row's first access coalesces away, given this
    // row's offset `m`. Saturation is safe: a saturated `m + stride` is far
    // past any row's last block, so the comparison stays false.
    let dup = |m: u64| {
        let row_last = m
            .checked_add(row_bytes - 1)
            .expect("row span overflows u64")
            / bsz;
        let next_first = m.saturating_add(stride) / bsz;
        u64::from(row_last == next_first)
    };

    let s = stride % bsz;
    let period = bsz / gcd64(s, bsz);
    let period_us = usize::try_from(period).expect("period fits usize");
    // Prefix sums of blk/dup over one period of in-block offsets:
    // pre[i] = sum over the first i offsets.
    let mut blk_pre = vec![0u64];
    let mut dup_pre = vec![0u64];
    let mut blk_sum = 0u64;
    let mut dup_sum = 0u64;
    let mut m = base.0 % bsz;
    for _ in 0..period_us {
        blk_sum = blk_sum.saturating_add(blk(m));
        dup_sum = dup_sum.saturating_add(dup(m));
        blk_pre.push(blk_sum);
        dup_pre.push(dup_sum);
        m = m.checked_add(s).expect("in-block offset overflows u64") % bsz;
    }
    // Sum of g(m_r) over the first n rows, via full periods + remainder.
    let period_sum = |pre: &[u64], n: u64| {
        let rem = usize::try_from(n % period).expect("remainder fits usize");
        (n / period)
            .saturating_mul(pre[period_us])
            .saturating_add(pre[rem])
    };
    let total_blk = period_sum(&blk_pre, rows);
    // dup_r describes row r+1 coalescing into row r, so the last row
    // contributes no dup term.
    let total_dup = period_sum(&dup_pre, rows - 1);
    total_blk.saturating_sub(total_dup)
}

fn gcd64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// DRAM → SPM (`mvin`).
    Read,
    /// SPM → DRAM (`mvout`).
    Write,
}

/// One `mvin`/`mvout`: an address pattern plus the security identifiers the
/// CPU-side software supplies (tensor/tile id and version number, §IV-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Address pattern.
    pub pattern: DmaPattern,
    /// Direction.
    pub dir: Dir,
    /// Tensor this transfer belongs to (version-table index).
    pub tensor_id: u32,
    /// Tile within the tensor (version-table sub-index).
    pub tile_id: u32,
    /// Version number passed to the MAC generator/verifier.
    pub version: u64,
}

impl Transfer {
    /// Payload bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.pattern.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_blocks() {
        let p = DmaPattern::Contiguous {
            base: Addr(0),
            bytes: 256,
        };
        assert_eq!(p.bytes(), 256);
        assert_eq!(p.block_count(), 4);
    }

    #[test]
    fn strided_rows_hit_separate_blocks() {
        // 4 rows of 64 B, 4 KB apart: four distinct blocks.
        let p = DmaPattern::Strided {
            base: Addr(0),
            rows: 4,
            row_bytes: 64,
            stride: 4096,
        };
        let mut blocks = Vec::new();
        p.for_each_block(|b| blocks.push(b));
        assert_eq!(
            blocks,
            vec![BlockAddr(0), BlockAddr(64), BlockAddr(128), BlockAddr(192)]
        );
    }

    #[test]
    fn adjacent_rows_coalesce() {
        // 4 rows of 16 B, 16 B apart = one contiguous 64 B region: the DMA
        // coalesces into a single block access.
        let p = DmaPattern::Strided {
            base: Addr(0),
            rows: 4,
            row_bytes: 16,
            stride: 16,
        };
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.bytes(), 64);
    }

    #[test]
    fn unaligned_row_spans_two_blocks() {
        let p = DmaPattern::Strided {
            base: Addr(32),
            rows: 2,
            row_bytes: 64,
            stride: 4096,
        };
        assert_eq!(p.block_count(), 4);
    }

    #[test]
    fn scattered_rows() {
        let p = DmaPattern::Scattered {
            rows: vec![Addr(0), Addr(8192), Addr(128)],
            row_bytes: 128,
        };
        assert_eq!(p.bytes(), 384);
        assert_eq!(p.block_count(), 6);
    }

    #[test]
    fn zero_byte_pattern_touches_nothing() {
        let p = DmaPattern::Contiguous {
            base: Addr(0),
            bytes: 0,
        };
        assert_eq!(p.block_count(), 0);
    }

    #[test]
    #[should_panic(expected = "strided DMA payload overflows u64")]
    fn overflowing_strided_payload_panics() {
        let p = DmaPattern::Strided {
            base: Addr(0),
            rows: u64::MAX,
            row_bytes: 2,
            stride: 64,
        };
        let _ = p.bytes();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// The block stream a per-byte walk of the pattern would produce, with
    /// *consecutive* duplicates removed. This is the reference semantics of
    /// `for_each_block`: the DMA engine coalesces sequential accesses to the
    /// same block but re-issues an access when the stream returns to a block
    /// after leaving it (no global dedup).
    fn naive_blocks(rows: &[(u64, u64)]) -> Vec<BlockAddr> {
        let mut out: Vec<BlockAddr> = Vec::new();
        for &(start, row_bytes) in rows {
            for i in 0..row_bytes {
                let b = Addr(start + i).block();
                if out.last() != Some(&b) {
                    out.push(b);
                }
            }
        }
        out
    }

    fn collected(p: &DmaPattern) -> Vec<BlockAddr> {
        let mut v = Vec::new();
        p.for_each_block(|b| v.push(b));
        v
    }

    /// Any of the three pattern variants, paired with its per-segment
    /// reference description for `naive_blocks`.
    fn arb_pattern() -> impl Strategy<Value = (DmaPattern, Vec<(u64, u64)>)> {
        prop_oneof![
            (0u64..512, 0u64..600).prop_map(|(base, bytes)| (
                DmaPattern::Contiguous {
                    base: Addr(base),
                    bytes
                },
                vec![(base, bytes)],
            )),
            (0u64..512, 0u64..6, 0u64..200, 0u64..512).prop_map(
                |(base, rows, row_bytes, stride)| (
                    DmaPattern::Strided {
                        base: Addr(base),
                        rows,
                        row_bytes,
                        stride,
                    },
                    (0..rows).map(|r| (base + r * stride, row_bytes)).collect(),
                )
            ),
            (prop::collection::vec(0u64..2048, 0..6), 0u64..200).prop_map(|(starts, row_bytes)| (
                DmaPattern::Scattered {
                    rows: starts.iter().copied().map(Addr).collect(),
                    row_bytes,
                },
                starts.iter().map(|&s| (s, row_bytes)).collect(),
            )),
        ]
    }

    proptest! {
        #[test]
        fn runs_concatenate_to_the_block_stream(
            (p, reference) in arb_pattern(),
        ) {
            let mut runs = Vec::new();
            p.for_each_run(|r| runs.push(r));
            // Emitted runs are never empty, and maximal: consecutive runs
            // never abut in ascending order (that would have merged).
            for w in runs.windows(2) {
                prop_assert_ne!(w[1].first.0, w[0].last().0 + 1);
            }
            let from_runs: Vec<BlockAddr> =
                runs.iter().flat_map(|r| r.blocks()).collect();
            prop_assert!(runs.iter().all(|r| r.len >= 1));
            prop_assert_eq!(from_runs, naive_blocks(&reference));
        }

        #[test]
        fn block_count_matches_enumeration((p, _) in arb_pattern()) {
            let mut n = 0u64;
            p.for_each_block(|_| n += 1);
            prop_assert_eq!(p.block_count(), n);
        }

        #[test]
        fn strided_count_matches_enumeration_over_many_periods(
            base in 0u64..512,
            rows in 0u64..200,
            row_bytes in 0u64..200,
            stride in 0u64..512,
        ) {
            let p = DmaPattern::Strided {
                base: Addr(base),
                rows,
                row_bytes,
                stride,
            };
            let mut n = 0u64;
            p.for_each_block(|_| n += 1);
            prop_assert_eq!(p.block_count(), n);
        }

        #[test]
        fn strided_matches_per_byte_enumeration(
            base in 0u64..512,
            rows in 0u64..6,
            row_bytes in 0u64..200,
            stride in 0u64..512,
        ) {
            let p = DmaPattern::Strided {
                base: Addr(base),
                rows,
                row_bytes,
                stride,
            };
            let reference: Vec<(u64, u64)> =
                (0..rows).map(|r| (base + r * stride, row_bytes)).collect();
            prop_assert_eq!(collected(&p), naive_blocks(&reference));
            prop_assert_eq!(p.bytes(), rows * row_bytes);
        }

        #[test]
        fn scattered_matches_per_byte_enumeration(
            starts in prop::collection::vec(0u64..2048, 0..6),
            row_bytes in 0u64..200,
        ) {
            let p = DmaPattern::Scattered {
                rows: starts.iter().map(|&s| Addr(s)).collect(),
                row_bytes,
            };
            let reference: Vec<(u64, u64)> =
                starts.iter().map(|&s| (s, row_bytes)).collect();
            prop_assert_eq!(collected(&p), naive_blocks(&reference));
            prop_assert_eq!(p.bytes(), starts.len() as u64 * row_bytes);
        }

        #[test]
        fn contiguous_matches_per_byte_enumeration(
            base in 0u64..512,
            bytes in 0u64..600,
        ) {
            let p = DmaPattern::Contiguous { base: Addr(base), bytes };
            prop_assert_eq!(collected(&p), naive_blocks(&[(base, bytes)]));
        }
    }
}
