//! DMA transfer descriptors and their 64 B block streams.
//!
//! A `mvin`/`mvout` instruction moves one tile between DRAM and the SPM.
//! Tiles of row-major matrices are 2-D slabs: `rows` segments of
//! `row_bytes`, `stride` apart. The *stride* is what produces the paper's
//! fine-grained behaviour: a tile of a matrix with a large row stride (a
//! vocabulary-sized projection, an embedding gather) touches a different
//! counter/MAC block region on every row.

use tnpu_sim::{blocks_covering, Addr, BlockAddr};

/// Address pattern of one DMA transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmaPattern {
    /// One contiguous byte range.
    Contiguous {
        /// Start address.
        base: Addr,
        /// Length in bytes.
        bytes: u64,
    },
    /// `rows` segments of `row_bytes`, starting `stride` apart.
    Strided {
        /// First segment address.
        base: Addr,
        /// Number of segments.
        rows: u64,
        /// Bytes per segment.
        row_bytes: u64,
        /// Distance between segment starts.
        stride: u64,
    },
    /// Arbitrary same-length segments (embedding gathers).
    Scattered {
        /// Segment start addresses.
        rows: Vec<Addr>,
        /// Bytes per segment.
        row_bytes: u64,
    },
}

impl DmaPattern {
    /// Total payload bytes moved.
    ///
    /// Panics if `rows * row_bytes` overflows `u64`: a descriptor that
    /// large cannot describe a real transfer, and wrapping here would
    /// silently under-account traffic downstream.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        match self {
            DmaPattern::Contiguous { bytes, .. } => *bytes,
            DmaPattern::Strided {
                rows, row_bytes, ..
            } => rows
                .checked_mul(*row_bytes)
                .expect("strided DMA payload overflows u64"),
            DmaPattern::Scattered { rows, row_bytes } => (rows.len() as u64)
                .checked_mul(*row_bytes)
                .expect("scattered DMA payload overflows u64"),
        }
    }

    /// The distinct 64 B blocks this transfer touches, in access order.
    /// Segments that share a block (contiguous rows) still produce one
    /// access per segment-block pair only when the block changes, mirroring
    /// a DMA engine that coalesces sequential block accesses.
    pub fn for_each_block(&self, mut f: impl FnMut(BlockAddr)) {
        let mut last: Option<BlockAddr> = None;
        let mut visit = |b: BlockAddr, f: &mut dyn FnMut(BlockAddr)| {
            if last != Some(b) {
                f(b);
                last = Some(b);
            }
        };
        match self {
            DmaPattern::Contiguous { base, bytes } => {
                for b in blocks_covering(*base, *bytes) {
                    visit(b, &mut f);
                }
            }
            DmaPattern::Strided {
                base,
                rows,
                row_bytes,
                stride,
            } => {
                for r in 0..*rows {
                    let start = base.offset(
                        r.checked_mul(*stride)
                            .expect("strided DMA row offset overflows u64"),
                    );
                    for b in blocks_covering(start, *row_bytes) {
                        visit(b, &mut f);
                    }
                }
            }
            DmaPattern::Scattered { rows, row_bytes } => {
                for start in rows {
                    for b in blocks_covering(*start, *row_bytes) {
                        visit(b, &mut f);
                    }
                }
            }
        }
    }

    /// Count of block accesses this transfer performs.
    #[must_use]
    pub fn block_count(&self) -> u64 {
        let mut n: u64 = 0;
        self.for_each_block(|_| n = n.saturating_add(1));
        n
    }
}

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// DRAM → SPM (`mvin`).
    Read,
    /// SPM → DRAM (`mvout`).
    Write,
}

/// One `mvin`/`mvout`: an address pattern plus the security identifiers the
/// CPU-side software supplies (tensor/tile id and version number, §IV-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Address pattern.
    pub pattern: DmaPattern,
    /// Direction.
    pub dir: Dir,
    /// Tensor this transfer belongs to (version-table index).
    pub tensor_id: u32,
    /// Tile within the tensor (version-table sub-index).
    pub tile_id: u32,
    /// Version number passed to the MAC generator/verifier.
    pub version: u64,
}

impl Transfer {
    /// Payload bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.pattern.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_blocks() {
        let p = DmaPattern::Contiguous {
            base: Addr(0),
            bytes: 256,
        };
        assert_eq!(p.bytes(), 256);
        assert_eq!(p.block_count(), 4);
    }

    #[test]
    fn strided_rows_hit_separate_blocks() {
        // 4 rows of 64 B, 4 KB apart: four distinct blocks.
        let p = DmaPattern::Strided {
            base: Addr(0),
            rows: 4,
            row_bytes: 64,
            stride: 4096,
        };
        let mut blocks = Vec::new();
        p.for_each_block(|b| blocks.push(b));
        assert_eq!(
            blocks,
            vec![BlockAddr(0), BlockAddr(64), BlockAddr(128), BlockAddr(192)]
        );
    }

    #[test]
    fn adjacent_rows_coalesce() {
        // 4 rows of 16 B, 16 B apart = one contiguous 64 B region: the DMA
        // coalesces into a single block access.
        let p = DmaPattern::Strided {
            base: Addr(0),
            rows: 4,
            row_bytes: 16,
            stride: 16,
        };
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.bytes(), 64);
    }

    #[test]
    fn unaligned_row_spans_two_blocks() {
        let p = DmaPattern::Strided {
            base: Addr(32),
            rows: 2,
            row_bytes: 64,
            stride: 4096,
        };
        assert_eq!(p.block_count(), 4);
    }

    #[test]
    fn scattered_rows() {
        let p = DmaPattern::Scattered {
            rows: vec![Addr(0), Addr(8192), Addr(128)],
            row_bytes: 128,
        };
        assert_eq!(p.bytes(), 384);
        assert_eq!(p.block_count(), 6);
    }

    #[test]
    fn zero_byte_pattern_touches_nothing() {
        let p = DmaPattern::Contiguous {
            base: Addr(0),
            bytes: 0,
        };
        assert_eq!(p.block_count(), 0);
    }

    #[test]
    #[should_panic(expected = "strided DMA payload overflows u64")]
    fn overflowing_strided_payload_panics() {
        let p = DmaPattern::Strided {
            base: Addr(0),
            rows: u64::MAX,
            row_bytes: 2,
            stride: 64,
        };
        let _ = p.bytes();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// The block stream a per-byte walk of the pattern would produce, with
    /// *consecutive* duplicates removed. This is the reference semantics of
    /// `for_each_block`: the DMA engine coalesces sequential accesses to the
    /// same block but re-issues an access when the stream returns to a block
    /// after leaving it (no global dedup).
    fn naive_blocks(rows: &[(u64, u64)]) -> Vec<BlockAddr> {
        let mut out: Vec<BlockAddr> = Vec::new();
        for &(start, row_bytes) in rows {
            for i in 0..row_bytes {
                let b = Addr(start + i).block();
                if out.last() != Some(&b) {
                    out.push(b);
                }
            }
        }
        out
    }

    fn collected(p: &DmaPattern) -> Vec<BlockAddr> {
        let mut v = Vec::new();
        p.for_each_block(|b| v.push(b));
        v
    }

    proptest! {
        #[test]
        fn strided_matches_per_byte_enumeration(
            base in 0u64..512,
            rows in 0u64..6,
            row_bytes in 0u64..200,
            stride in 0u64..512,
        ) {
            let p = DmaPattern::Strided {
                base: Addr(base),
                rows,
                row_bytes,
                stride,
            };
            let reference: Vec<(u64, u64)> =
                (0..rows).map(|r| (base + r * stride, row_bytes)).collect();
            prop_assert_eq!(collected(&p), naive_blocks(&reference));
            prop_assert_eq!(p.bytes(), rows * row_bytes);
        }

        #[test]
        fn scattered_matches_per_byte_enumeration(
            starts in prop::collection::vec(0u64..2048, 0..6),
            row_bytes in 0u64..200,
        ) {
            let p = DmaPattern::Scattered {
                rows: starts.iter().map(|&s| Addr(s)).collect(),
                row_bytes,
            };
            let reference: Vec<(u64, u64)> =
                starts.iter().map(|&s| (s, row_bytes)).collect();
            prop_assert_eq!(collected(&p), naive_blocks(&reference));
            prop_assert_eq!(p.bytes(), starts.len() as u64 * row_bytes);
        }

        #[test]
        fn contiguous_matches_per_byte_enumeration(
            base in 0u64..512,
            bytes in 0u64..600,
        ) {
            let p = DmaPattern::Contiguous { base: Addr(base), bytes };
            prop_assert_eq!(collected(&p), naive_blocks(&[(base, bytes)]));
        }
    }
}
