//! DMA transfer descriptors and their 64 B block streams.
//!
//! A `mvin`/`mvout` instruction moves one tile between DRAM and the SPM.
//! Tiles of row-major matrices are 2-D slabs: `rows` segments of
//! `row_bytes`, `stride` apart. The *stride* is what produces the paper's
//! fine-grained behaviour: a tile of a matrix with a large row stride (a
//! vocabulary-sized projection, an embedding gather) touches a different
//! counter/MAC block region on every row.

use tnpu_sim::{blocks_covering, Addr, BlockAddr};

/// Address pattern of one DMA transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmaPattern {
    /// One contiguous byte range.
    Contiguous {
        /// Start address.
        base: Addr,
        /// Length in bytes.
        bytes: u64,
    },
    /// `rows` segments of `row_bytes`, starting `stride` apart.
    Strided {
        /// First segment address.
        base: Addr,
        /// Number of segments.
        rows: u64,
        /// Bytes per segment.
        row_bytes: u64,
        /// Distance between segment starts.
        stride: u64,
    },
    /// Arbitrary same-length segments (embedding gathers).
    Scattered {
        /// Segment start addresses.
        rows: Vec<Addr>,
        /// Bytes per segment.
        row_bytes: u64,
    },
}

impl DmaPattern {
    /// Total payload bytes moved.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        match self {
            DmaPattern::Contiguous { bytes, .. } => *bytes,
            DmaPattern::Strided {
                rows, row_bytes, ..
            } => rows * row_bytes,
            DmaPattern::Scattered { rows, row_bytes } => rows.len() as u64 * row_bytes,
        }
    }

    /// The distinct 64 B blocks this transfer touches, in access order.
    /// Segments that share a block (contiguous rows) still produce one
    /// access per segment-block pair only when the block changes, mirroring
    /// a DMA engine that coalesces sequential block accesses.
    pub fn for_each_block(&self, mut f: impl FnMut(BlockAddr)) {
        let mut last: Option<BlockAddr> = None;
        let mut visit = |b: BlockAddr, f: &mut dyn FnMut(BlockAddr)| {
            if last != Some(b) {
                f(b);
                last = Some(b);
            }
        };
        match self {
            DmaPattern::Contiguous { base, bytes } => {
                for b in blocks_covering(*base, *bytes) {
                    visit(b, &mut f);
                }
            }
            DmaPattern::Strided {
                base,
                rows,
                row_bytes,
                stride,
            } => {
                for r in 0..*rows {
                    let start = base.offset(r * stride);
                    for b in blocks_covering(start, *row_bytes) {
                        visit(b, &mut f);
                    }
                }
            }
            DmaPattern::Scattered { rows, row_bytes } => {
                for start in rows {
                    for b in blocks_covering(*start, *row_bytes) {
                        visit(b, &mut f);
                    }
                }
            }
        }
    }

    /// Count of block accesses this transfer performs.
    #[must_use]
    pub fn block_count(&self) -> u64 {
        let mut n = 0;
        self.for_each_block(|_| n += 1);
        n
    }
}

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// DRAM → SPM (`mvin`).
    Read,
    /// SPM → DRAM (`mvout`).
    Write,
}

/// One `mvin`/`mvout`: an address pattern plus the security identifiers the
/// CPU-side software supplies (tensor/tile id and version number, §IV-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Address pattern.
    pub pattern: DmaPattern,
    /// Direction.
    pub dir: Dir,
    /// Tensor this transfer belongs to (version-table index).
    pub tensor_id: u32,
    /// Tile within the tensor (version-table sub-index).
    pub tile_id: u32,
    /// Version number passed to the MAC generator/verifier.
    pub version: u64,
}

impl Transfer {
    /// Payload bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.pattern.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_blocks() {
        let p = DmaPattern::Contiguous {
            base: Addr(0),
            bytes: 256,
        };
        assert_eq!(p.bytes(), 256);
        assert_eq!(p.block_count(), 4);
    }

    #[test]
    fn strided_rows_hit_separate_blocks() {
        // 4 rows of 64 B, 4 KB apart: four distinct blocks.
        let p = DmaPattern::Strided {
            base: Addr(0),
            rows: 4,
            row_bytes: 64,
            stride: 4096,
        };
        let mut blocks = Vec::new();
        p.for_each_block(|b| blocks.push(b));
        assert_eq!(
            blocks,
            vec![BlockAddr(0), BlockAddr(64), BlockAddr(128), BlockAddr(192)]
        );
    }

    #[test]
    fn adjacent_rows_coalesce() {
        // 4 rows of 16 B, 16 B apart = one contiguous 64 B region: the DMA
        // coalesces into a single block access.
        let p = DmaPattern::Strided {
            base: Addr(0),
            rows: 4,
            row_bytes: 16,
            stride: 16,
        };
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.bytes(), 64);
    }

    #[test]
    fn unaligned_row_spans_two_blocks() {
        let p = DmaPattern::Strided {
            base: Addr(32),
            rows: 2,
            row_bytes: 64,
            stride: 4096,
        };
        assert_eq!(p.block_count(), 4);
    }

    #[test]
    fn scattered_rows() {
        let p = DmaPattern::Scattered {
            rows: vec![Addr(0), Addr(8192), Addr(128)],
            row_bytes: 128,
        };
        assert_eq!(p.bytes(), 384);
        assert_eq!(p.block_count(), 6);
    }

    #[test]
    fn zero_byte_pattern_touches_nothing() {
        let p = DmaPattern::Contiguous {
            base: Addr(0),
            bytes: 0,
        };
        assert_eq!(p.block_count(), 0);
    }
}
