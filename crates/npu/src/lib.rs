#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! Cycle-level NPU simulator for the TNPU reproduction.
//!
//! Mirrors the paper's methodology (§V-A): an in-house simulator in the
//! SCALE-Sim tradition, extended with inter-layer connections and the
//! security engine. The simulated NPU has:
//!
//! 1. a scratchpad memory (SPM) as its on-chip buffer,
//! 2. double buffering overlapping data transfer with computation,
//! 3. a weight-stationary systolic array of processing elements, and
//! 4. an on-the-fly hardware im2col block,
//!
//! driven by a `mvin`/`mvout`/`compute` instruction stream, with a simple
//! bandwidth-limited memory model (100-cycle DRAM latency).
//!
//! Module map:
//!
//! * [`config`] — the Small (Exynos 990) and Large (Ethos N77) NPU
//!   configurations of Table II.
//! * [`dma`] — DMA transfer patterns (contiguous / strided / scattered) and
//!   their 64 B block streams.
//! * [`systolic`] — the analytical weight-stationary array timing model.
//! * [`alloc`] — tensor address allocation in the NPU's protected region.
//! * [`tiler`] — lowers a [`tnpu_models::Model`] into per-layer tile jobs
//!   (`mvin`/`compute`/`mvout` sequences) that fit the SPM.
//! * [`controller`] — the shared memory controller: serializes DMA
//!   transfers from all NPUs and drives the
//!   [`tnpu_memprot::ProtectionEngine`] per 64 B block.
//! * [`machine`] — one NPU's double-buffered execution state machine.
//! * [`trace`] — scheme-independent tile traces, lowered once per
//!   (models, NPU config, seed) and replayed against many engines.
//! * [`multi`] — N NPUs sharing the controller and security engine
//!   (the paper's scalability study, §V-C).
//! * [`report`] — run reports (cycles, traffic, engine statistics).

pub mod alloc;
pub mod config;
pub mod controller;
pub mod dma;
pub mod machine;
pub mod multi;
pub mod report;
pub mod systolic;
pub mod tiler;
pub mod trace;

pub use config::NpuConfig;
pub use report::RunReport;
pub use trace::TileTrace;

use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
use tnpu_models::Model;

/// Simulate one inference of `model` on a single NPU under `scheme`.
///
/// Convenience wrapper over the full pipeline (allocate → tile → run).
///
/// # Examples
///
/// ```
/// use tnpu_npu::{simulate, NpuConfig};
/// use tnpu_memprot::SchemeKind;
///
/// let model = tnpu_models::registry::model("alex").expect("registered");
/// let unsecure = simulate(&model, &NpuConfig::small_npu(), SchemeKind::Unsecure);
/// let tnpu = simulate(&model, &NpuConfig::small_npu(), SchemeKind::Treeless);
/// assert!(tnpu.total.0 >= unsecure.total.0);
/// ```
#[must_use]
pub fn simulate(model: &Model, npu: &NpuConfig, scheme: SchemeKind) -> RunReport {
    simulate_multi(model, npu, scheme, 1)
        .into_iter()
        .next()
        .expect("one NPU yields one report")
}

/// Simulate `count` NPUs each running one inference of `model`, sharing the
/// memory controller and one security engine (§V-C). Returns one report per
/// NPU.
///
/// # Panics
///
/// Panics if `count` is zero.
#[must_use]
pub fn simulate_multi(
    model: &Model,
    npu: &NpuConfig,
    scheme: SchemeKind,
    count: usize,
) -> Vec<RunReport> {
    simulate_multi_with(
        model,
        npu,
        scheme,
        count,
        &ProtectionConfig::paper_default(),
    )
}

/// [`simulate_multi`] with an explicit protection configuration — the hook
/// for sensitivity studies (metadata cache sizes, tree arity, ...).
///
/// # Panics
///
/// Panics if `count` is zero.
#[must_use]
pub fn simulate_multi_with(
    model: &Model,
    npu: &NpuConfig,
    scheme: SchemeKind,
    count: usize,
    protection: &ProtectionConfig,
) -> Vec<RunReport> {
    simulate_multi_seeded(
        model,
        npu,
        scheme,
        count,
        protection,
        multi::DEFAULT_BASE_SEED,
    )
}

/// [`simulate_multi_with`] with an explicit workload base seed: the hook
/// experiment runners use to give every (experiment, model, config) cell
/// its own deterministic RNG stream. Per-NPU streams are split from
/// `base_seed` by NPU index (see [`multi::run_shared_seeded`]).
///
/// # Panics
///
/// Panics if `count` is zero.
#[must_use]
pub fn simulate_multi_seeded(
    model: &Model,
    npu: &NpuConfig,
    scheme: SchemeKind,
    count: usize,
    protection: &ProtectionConfig,
    base_seed: u64,
) -> Vec<RunReport> {
    assert!(count > 0, "need at least one NPU");
    let engine = build_engine(scheme, protection);
    multi::run_shared_seeded(model, npu, engine, count, base_seed)
}

/// Simulate two back-to-back inferences of `model` on one NPU and return
/// `(cold_report, warm_cycles)`: the first inference runs with cold
/// metadata caches; `warm_cycles` is the duration of the second, which
/// reuses whatever counter/MAC state survived — the steady state of an NPU
/// context serving a request stream (§V-D notes contexts commonly process
/// many requests per loaded model).
#[must_use]
pub fn simulate_cold_warm(
    model: &Model,
    npu: &NpuConfig,
    scheme: SchemeKind,
) -> (RunReport, tnpu_sim::Cycles) {
    use crate::alloc::ModelLayout;
    use crate::controller::MemoryController;
    use crate::machine::NpuMachine;

    let protection = ProtectionConfig::paper_default();
    let engine = build_engine(scheme, &protection);
    let mut ctl = MemoryController::new(engine, npu);
    let layout = ModelLayout::allocate(model, tnpu_sim::Addr(0));
    let plan = tiler::plan(model, npu, &layout, 0xC01D);
    let mut first = NpuMachine::new(plan.clone());
    while !first.is_done() {
        first.serve_next(&mut ctl);
    }
    let cold = first.into_report(&ctl);
    let mut second = NpuMachine::new(plan);
    while !second.is_done() {
        second.serve_next(&mut ctl);
    }
    let warm_finish = second.into_report(&ctl).total;
    (cold.clone(), warm_finish.saturating_sub(cold.total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_runs_are_never_meaningfully_slower() {
        // df's working set exceeds the metadata caches, so warm ~= cold;
        // the warm run must never be more than noise slower (residual
        // cache state costs nothing).
        let model = tnpu_models::registry::model("df").expect("registered");
        let cfg = NpuConfig::small_npu();
        for scheme in [SchemeKind::TreeBased, SchemeKind::Treeless] {
            let (cold, warm) = simulate_cold_warm(&model, &cfg, scheme);
            assert!(warm.0 > 0);
            assert!(
                warm.as_f64() <= cold.total.as_f64() * 1.01,
                "{scheme}: warm {warm} vs cold {}",
                cold.total
            );
        }
    }

    #[test]
    fn schemes_order_sanely_on_a_small_model() {
        let model = tnpu_models::registry::model("df").expect("registered");
        let cfg = NpuConfig::small_npu();
        let unsec = simulate(&model, &cfg, SchemeKind::Unsecure).total;
        let tree = simulate(&model, &cfg, SchemeKind::TreeBased).total;
        let tnpu = simulate(&model, &cfg, SchemeKind::Treeless).total;
        assert!(unsec <= tnpu, "protection cannot be free");
        assert!(tnpu <= tree, "tree-less must not exceed tree-based");
    }
}
