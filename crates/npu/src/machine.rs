//! One NPU's double-buffered execution state machine.
//!
//! Executes a [`ModelPlan`] as a pipeline: while tile *i* computes, tile
//! *i + 1*'s `mvin` transfers stream in, and tile *i − 1*'s `mvout` drains —
//! the double-buffering model of §II-C. At layer boundaries prefetching
//! stops until every store of the producing layer has completed (the next
//! layer reads that output).
//!
//! The machine exposes its next request's arrival time so a scheduler can
//! interleave several machines over one shared [`MemoryController`]
//! in global arrival order.

use crate::controller::MemoryController;
use crate::report::{LayerReport, RunReport};
use crate::tiler::ModelPlan;
use tnpu_sim::Cycles;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Item {
    Loads(usize),
    Stores(usize),
}

/// Double-buffered executor for one NPU.
#[derive(Debug)]
pub struct NpuMachine {
    plan: ModelPlan,
    /// Emission order of load/store groups.
    seq: Vec<Item>,
    /// Whether the loads at this seq position sit just after a layer
    /// barrier (cannot be prefetched past outstanding stores).
    barrier: Vec<bool>,
    pos: usize,
    sub: usize,
    /// Compute start/end per job (filled as loads complete).
    cs: Vec<Cycles>,
    ce: Vec<Cycles>,
    /// Max completion among loads of the current loads group.
    group_loads_done: Cycles,
    /// Max completion among all stores served so far.
    stores_done: Cycles,
    /// Per-layer last activity (for reports).
    layer_finish: Vec<Cycles>,
    data_read: u64,
    data_write: u64,
    meta_bytes: u64,
    finish: Option<Cycles>,
}

impl NpuMachine {
    /// Build the machine for a lowered plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no jobs.
    #[must_use]
    pub fn new(plan: ModelPlan) -> Self {
        assert!(!plan.jobs.is_empty(), "plan has no jobs");
        let n = plan.jobs.len();
        let mut seq = Vec::with_capacity(2 * n);
        let mut barrier = Vec::with_capacity(2 * n);
        seq.push(Item::Loads(0));
        barrier.push(false);
        for j in 1..n {
            let boundary = plan.jobs[j].layer != plan.jobs[j - 1].layer;
            if boundary {
                seq.push(Item::Stores(j - 1));
                barrier.push(false);
                seq.push(Item::Loads(j));
                barrier.push(true);
            } else {
                seq.push(Item::Loads(j));
                barrier.push(false);
                seq.push(Item::Stores(j - 1));
                barrier.push(false);
            }
        }
        seq.push(Item::Stores(n - 1));
        barrier.push(false);
        let layers = plan.layer_jobs.len();
        NpuMachine {
            seq,
            barrier,
            pos: 0,
            sub: 0,
            cs: vec![Cycles::ZERO; n],
            ce: vec![Cycles::ZERO; n],
            group_loads_done: Cycles::ZERO,
            stores_done: Cycles::ZERO,
            layer_finish: vec![Cycles::ZERO; layers],
            data_read: 0,
            data_write: 0,
            meta_bytes: 0,
            finish: None,
            plan,
        }
    }

    /// Whether every transfer has been served.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.finish.is_some()
    }

    /// Arrival time of the next transfer, or `None` when done.
    #[must_use]
    pub fn next_arrival(&self) -> Option<Cycles> {
        if self.finish.is_some() {
            return None;
        }
        let item = self.seq[self.pos];
        Some(match item {
            Item::Loads(j) => {
                if j == 0 {
                    Cycles::ZERO
                } else if self.barrier[self.pos] {
                    self.cs[j - 1].max(self.stores_done)
                } else {
                    self.cs[j - 1]
                }
            }
            Item::Stores(j) => self.ce[j],
        })
    }

    /// Serve exactly one transfer on `ctl`, advancing the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the machine is already done.
    pub fn serve_next(&mut self, ctl: &mut MemoryController) {
        let arrival = self.next_arrival().expect("machine already done");
        let item = self.seq[self.pos];
        let (transfers, layer) = match item {
            Item::Loads(j) => (&self.plan.jobs[j].loads, self.plan.jobs[j].layer),
            Item::Stores(j) => (&self.plan.jobs[j].stores, self.plan.jobs[j].layer),
        };
        let transfer = &transfers[self.sub];
        let served = ctl.serve(transfer, arrival);
        self.meta_bytes += served.meta_bytes;
        match item {
            Item::Loads(_) => self.data_read += served.data_bytes,
            Item::Stores(_) => self.data_write += served.data_bytes,
        }
        self.layer_finish[layer] = self.layer_finish[layer].max(served.completion);
        match item {
            Item::Loads(j) => {
                self.group_loads_done = self.group_loads_done.max(served.completion);
                if self.sub + 1 < self.plan.jobs[j].loads.len() {
                    self.sub += 1;
                } else {
                    // All loads of job j done: schedule its compute.
                    let prev_ce = if j == 0 { Cycles::ZERO } else { self.ce[j - 1] };
                    self.cs[j] = self.group_loads_done.max(prev_ce);
                    self.ce[j] = self.cs[j] + self.plan.jobs[j].compute;
                    self.layer_finish[self.plan.jobs[j].layer] =
                        self.layer_finish[self.plan.jobs[j].layer].max(self.ce[j]);
                    self.group_loads_done = Cycles::ZERO;
                    self.advance();
                }
            }
            Item::Stores(j) => {
                self.stores_done = self.stores_done.max(served.completion);
                if self.sub + 1 < self.plan.jobs[j].stores.len() {
                    self.sub += 1;
                } else {
                    self.advance();
                }
            }
        }
    }

    fn advance(&mut self) {
        self.sub = 0;
        self.pos += 1;
        if self.pos >= self.seq.len() {
            let last = self.plan.jobs.len() - 1;
            self.finish = Some(self.stores_done.max(self.ce[last]));
        }
    }

    /// Build the report; call after the machine is done.
    ///
    /// # Panics
    ///
    /// Panics if the machine has not finished.
    #[must_use]
    pub fn into_report(self, ctl: &MemoryController) -> RunReport {
        let total = self.finish.expect("machine not finished");
        let mut layers = Vec::with_capacity(self.plan.layer_jobs.len());
        for (li, &(s, e)) in self.plan.layer_jobs.iter().enumerate() {
            let compute: Cycles = self.plan.jobs[s..e].iter().map(|j| j.compute).sum();
            let data_bytes: u64 = self.plan.jobs[s..e]
                .iter()
                .map(|j| j.load_bytes() + j.store_bytes())
                .sum();
            layers.push(LayerReport {
                name: self.plan.layer_names[li].clone(),
                finish: self.layer_finish[li],
                compute,
                data_bytes,
            });
        }
        RunReport {
            scheme: ctl.scheme(),
            total,
            data_read: self.data_read,
            data_write: self.data_write,
            meta_bytes: self.meta_bytes,
            engine: ctl.engine_stats(),
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::ModelLayout;
    use crate::config::NpuConfig;
    use crate::tiler;
    use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
    use tnpu_sim::Addr;

    fn run(name: &str, scheme: SchemeKind) -> RunReport {
        let model = tnpu_models::registry::model(name).expect("registered");
        let npu = NpuConfig::small_npu();
        let layout = ModelLayout::allocate(&model, Addr(0));
        let plan = tiler::plan(&model, &npu, &layout, 1);
        let engine = build_engine(scheme, &ProtectionConfig::paper_default());
        let mut ctl = MemoryController::new(engine, &npu);
        let mut m = NpuMachine::new(plan);
        while !m.is_done() {
            m.serve_next(&mut ctl);
        }
        m.into_report(&ctl)
    }

    #[test]
    fn alexnet_completes_with_sane_time() {
        let r = run("alex", SchemeKind::Unsecure);
        assert!(r.total.0 > 0);
        // Must take at least the pure-compute and pure-memory lower bounds.
        let compute: Cycles = r.layers.iter().map(|l| l.compute).sum();
        assert!(r.total >= compute);
        let mem_cycles = (r.data_read + r.data_write) / 4; // 4 B/cycle
        assert!(r.total.0 >= mem_cycles);
        // And not absurdly more than their sum.
        assert!(r.total.0 < 4 * (compute.0 + mem_cycles));
    }

    #[test]
    fn double_buffering_overlaps() {
        // Total must be well below the no-overlap sum of compute + memory.
        let r = run("alex", SchemeKind::Unsecure);
        let compute: u64 = r.layers.iter().map(|l| l.compute.0).sum();
        let mem = (r.data_read + r.data_write) / 4;
        let serial = compute + mem;
        assert!(
            r.total.0 < serial,
            "no overlap achieved: {} vs serial {serial}",
            r.total.0
        );
    }

    #[test]
    fn layer_finishes_are_monotone() {
        let r = run("alex", SchemeKind::Unsecure);
        let finishes: Vec<u64> = r
            .layers
            .iter()
            .filter(|l| l.data_bytes > 0)
            .map(|l| l.finish.0)
            .collect();
        for w in finishes.windows(2) {
            assert!(w[0] <= w[1], "layer finish order violated: {finishes:?}");
        }
    }

    #[test]
    fn protection_overhead_ordering_alexnet() {
        let unsec = run("alex", SchemeKind::Unsecure).total.0 as f64;
        let tnpu = run("alex", SchemeKind::Treeless).total.0 as f64;
        let tree = run("alex", SchemeKind::TreeBased).total.0 as f64;
        assert!(tnpu >= unsec);
        assert!(tree >= tnpu);
        // Overheads should be within the paper's ballpark (few tens of %).
        assert!(tree / unsec < 2.2, "baseline overhead {:.2}", tree / unsec);
    }

    #[test]
    fn report_traffic_matches_plan_block_count() {
        let model = tnpu_models::registry::model("df").expect("registered");
        let npu = NpuConfig::small_npu();
        let layout = ModelLayout::allocate(&model, Addr(0));
        let plan = tiler::plan(&model, &npu, &layout, 1);
        let expected: u64 = plan
            .jobs
            .iter()
            .flat_map(|j| j.loads.iter().chain(j.stores.iter()))
            .map(|t| t.pattern.block_count() * 64)
            .sum();
        let engine = build_engine(SchemeKind::Unsecure, &ProtectionConfig::paper_default());
        let mut ctl = MemoryController::new(engine, &npu);
        let mut m = NpuMachine::new(plan);
        while !m.is_done() {
            m.serve_next(&mut ctl);
        }
        let r = m.into_report(&ctl);
        assert_eq!(r.data_read + r.data_write, expected);
    }
}
