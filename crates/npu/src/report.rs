//! Run reports produced by the simulator.

use tnpu_memprot::{EngineStats, SchemeKind};
use tnpu_sim::Cycles;

/// Per-layer timing and traffic.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Global time at which the layer's last activity completed.
    pub finish: Cycles,
    /// Pure compute cycles of the layer (no overlap accounting).
    pub compute: Cycles,
    /// Payload bytes the layer's plan moves.
    pub data_bytes: u64,
}

/// Result of simulating one NPU's inference.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    /// Protection scheme used.
    pub scheme: SchemeKind,
    /// End-to-end cycles for the inference.
    pub total: Cycles,
    /// Payload bytes read from DRAM.
    pub data_read: u64,
    /// Payload bytes written to DRAM.
    pub data_write: u64,
    /// Security-metadata bytes charged to this NPU's transfers.
    pub meta_bytes: u64,
    /// Statistics of the (shared) security engine over the whole run.
    pub engine: EngineStats,
    /// Per-layer breakdown.
    pub layers: Vec<LayerReport>,
}

impl RunReport {
    /// Total DRAM traffic caused by this NPU (payload + metadata).
    #[must_use]
    pub fn total_traffic(&self) -> u64 {
        self.data_traffic().saturating_add(self.meta_bytes)
    }

    /// Payload-only traffic.
    #[must_use]
    pub fn data_traffic(&self) -> u64 {
        self.data_read.saturating_add(self.data_write)
    }

    /// Execution time of this run divided by `baseline`'s — the
    /// normalization every figure in the paper uses.
    #[must_use]
    pub fn normalized_to(&self, baseline: &RunReport) -> f64 {
        self.total.as_f64() / baseline.total.as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total: u64, read: u64, write: u64, meta: u64) -> RunReport {
        RunReport {
            scheme: SchemeKind::Unsecure,
            total: Cycles(total),
            data_read: read,
            data_write: write,
            meta_bytes: meta,
            engine: EngineStats::default(),
            layers: Vec::new(),
        }
    }

    #[test]
    fn traffic_sums() {
        let r = report(10, 100, 50, 25);
        assert_eq!(r.data_traffic(), 150);
        assert_eq!(r.total_traffic(), 175);
    }

    #[test]
    fn normalization() {
        let base = report(100, 0, 0, 0);
        let secure = report(121, 0, 0, 0);
        assert!((secure.normalized_to(&base) - 1.21).abs() < 1e-12);
    }
}
