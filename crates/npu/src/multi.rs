//! Multi-NPU simulation: N machines share one memory controller and one
//! security engine (the paper's scalability study, §V-C).
//!
//! [`run_shared`] replicates the paper's setup ("the same inference models
//! are running in each NPU"), each NPU in its own address range;
//! [`run_shared_mixed`] extends it to heterogeneous tenants. The scheduler
//! serves, at every step, the machine whose next transfer has the earliest
//! arrival time, so metadata-cache interference between NPUs emerges from
//! genuinely interleaved block streams.

use crate::config::NpuConfig;
use crate::report::RunReport;
use crate::trace::TileTrace;
use tnpu_memprot::ProtectionEngine;
use tnpu_models::Model;

/// Address-space stride between NPU contexts (512 MB each).
pub const NPU_REGION_STRIDE: u64 = 512 << 20;

/// Base seed of the default (unseeded) entry points. Every workload RNG in
/// the simulator ultimately derives from an explicit seed so runs are
/// bit-reproducible; this is the one used when the caller does not care.
pub const DEFAULT_BASE_SEED: u64 = 0xC0FFEE;

/// Run `count` NPUs, each inferring `model` once, over one shared engine.
/// Returns one report per NPU (engine statistics are the shared totals).
///
/// # Panics
///
/// Panics if `count` is zero or a model's tensors exceed the per-NPU
/// region.
#[must_use]
pub fn run_shared(
    model: &Model,
    npu: &NpuConfig,
    engine: Box<dyn ProtectionEngine>,
    count: usize,
) -> Vec<RunReport> {
    run_shared_seeded(model, npu, engine, count, DEFAULT_BASE_SEED)
}

/// [`run_shared`] with an explicit workload base seed. Per-NPU request
/// streams are independent streams split from `base_seed` — derived from
/// the NPU's index within the run, never from host-thread identity, so a
/// run's results depend only on its inputs.
///
/// # Panics
///
/// Panics if `count` is zero or a model's tensors exceed the per-NPU
/// region.
#[must_use]
pub fn run_shared_seeded(
    model: &Model,
    npu: &NpuConfig,
    engine: Box<dyn ProtectionEngine>,
    count: usize,
    base_seed: u64,
) -> Vec<RunReport> {
    assert!(count > 0, "need at least one NPU");
    let models: Vec<&Model> = std::iter::repeat_n(model, count).collect();
    run_shared_mixed_seeded(&models, npu, engine, base_seed)
}

/// Run one NPU per entry of `models` — heterogeneous tenancy: different
/// applications' contexts contending for the shared memory controller and
/// security engine.
///
/// # Panics
///
/// Panics if `models` is empty or a model's tensors exceed the per-NPU
/// region.
#[must_use]
pub fn run_shared_mixed(
    models: &[&Model],
    npu: &NpuConfig,
    engine: Box<dyn ProtectionEngine>,
) -> Vec<RunReport> {
    run_shared_mixed_seeded(models, npu, engine, DEFAULT_BASE_SEED)
}

/// [`run_shared_mixed`] with an explicit workload base seed (see
/// [`run_shared_seeded`]).
///
/// # Panics
///
/// Panics if `models` is empty or a model's tensors exceed the per-NPU
/// region.
#[must_use]
pub fn run_shared_mixed_seeded(
    models: &[&Model],
    npu: &NpuConfig,
    engine: Box<dyn ProtectionEngine>,
    base_seed: u64,
) -> Vec<RunReport> {
    // Lower once, replay once: the trace abstraction is shared with the
    // experiment sweeps, which build a trace per cell group and replay it
    // against every scheme (see `crate::trace`).
    TileTrace::build(models, npu, base_seed).replay(engine, npu, models.len())
}

/// Run `count` NPUs each executing a step-loop session — one model per
/// step (an autoregressive decode growing its KV caches, or a training
/// loop's iterations) — over one shared engine. Lowers via
/// [`TileTrace::build_steps`] and replays, so results are byte-identical
/// to replaying the same stepped trace directly.
///
/// # Panics
///
/// Panics if `steps` is empty, `count` is zero, or a step's tensors
/// exceed the per-NPU region.
#[must_use]
pub fn run_steps_seeded(
    steps: &[&Model],
    npu: &NpuConfig,
    engine: Box<dyn ProtectionEngine>,
    count: usize,
    base_seed: u64,
) -> Vec<RunReport> {
    TileTrace::build_steps(steps, npu, count, base_seed).replay(engine, npu, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::ModelLayout;
    use crate::report::RunReport;
    use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
    use tnpu_sim::Addr;

    fn run(name: &str, scheme: SchemeKind, count: usize) -> Vec<RunReport> {
        let model = tnpu_models::registry::model(name).expect("registered");
        let npu = NpuConfig::small_npu();
        let engine = build_engine(scheme, &ProtectionConfig::paper_default());
        run_shared(&model, &npu, engine, count)
    }

    fn slowest(reports: &[RunReport]) -> u64 {
        reports.iter().map(|r| r.total.0).max().expect("non-empty")
    }

    #[test]
    fn one_npu_matches_single_path() {
        let multi = run("df", SchemeKind::Unsecure, 1);
        assert_eq!(multi.len(), 1);
        assert!(multi[0].total.0 > 0);
    }

    #[test]
    fn more_npus_take_longer_wall_clock() {
        // Shared bandwidth: three NPUs contend, so the slowest of three
        // must exceed a lone NPU.
        let one = slowest(&run("df", SchemeKind::Unsecure, 1));
        let three = slowest(&run("df", SchemeKind::Unsecure, 3));
        assert!(three > one, "one {one}, three {three}");
    }

    #[test]
    fn interference_hurts_tree_more_than_treeless() {
        // The paper's headline scalability claim (§V-C): the baseline's
        // metadata caches thrash as NPUs multiply, so its relative
        // slowdown grows faster than TNPU's.
        let name = "df";
        let u1 = slowest(&run(name, SchemeKind::Unsecure, 1)) as f64;
        let u3 = slowest(&run(name, SchemeKind::Unsecure, 3)) as f64;
        let t1 = slowest(&run(name, SchemeKind::TreeBased, 1)) as f64;
        let t3 = slowest(&run(name, SchemeKind::TreeBased, 3)) as f64;
        let l1 = slowest(&run(name, SchemeKind::Treeless, 1)) as f64;
        let l3 = slowest(&run(name, SchemeKind::Treeless, 3)) as f64;
        let tree_overhead_1 = t1 / u1;
        let tree_overhead_3 = t3 / u3;
        let tnpu_overhead_3 = l3 / u3;
        assert!(
            tnpu_overhead_3 <= tree_overhead_3,
            "tnpu {tnpu_overhead_3:.3} vs tree {tree_overhead_3:.3} at 3 NPUs"
        );
        // Baseline overhead should not shrink with more NPUs.
        assert!(
            tree_overhead_3 >= 0.95 * tree_overhead_1,
            "tree overhead fell: {tree_overhead_1:.3} -> {tree_overhead_3:.3}"
        );
        let _ = l1;
    }

    #[test]
    fn mixed_tenancy_interferes_both_ways() {
        // A gather-heavy tenant (ncf) sharing the engine with a conv
        // tenant (df) slows both down relative to running alone, and the
        // gather tenant pollutes the counter cache the conv tenant needs.
        let npu = NpuConfig::small_npu();
        let df = tnpu_models::registry::model("df").expect("registered");
        let ncf = tnpu_models::registry::model("ncf").expect("registered");
        let build = || build_engine(SchemeKind::TreeBased, &ProtectionConfig::paper_default());
        let df_alone = run_shared(&df, &npu, build(), 1)[0].total.0;
        let mixed = run_shared_mixed(&[&df, &ncf], &npu, build());
        assert_eq!(mixed.len(), 2);
        assert!(
            mixed[0].total.0 > df_alone,
            "sharing must slow df: {} vs {}",
            mixed[0].total.0,
            df_alone
        );
    }

    #[test]
    fn stepped_run_matches_trace_replay() {
        let steps: Vec<Model> = (1..=3)
            .map(tnpu_models::defs::dynamic::decode_step)
            .collect();
        let refs: Vec<&Model> = steps.iter().collect();
        let npu = NpuConfig::small_npu();
        let build = || build_engine(SchemeKind::Treeless, &ProtectionConfig::paper_default());
        let direct = run_steps_seeded(&refs, &npu, build(), 2, 0xBEEF);
        let trace = TileTrace::build_steps(&refs, &npu, 2, 0xBEEF);
        let replayed = trace.replay(build(), &npu, 2);
        assert_eq!(direct, replayed);
    }

    #[test]
    fn npus_use_disjoint_address_ranges() {
        let model = tnpu_models::registry::model("res").expect("registered");
        let l0 = ModelLayout::allocate(&model, Addr(0));
        assert!(l0.total_bytes <= NPU_REGION_STRIDE);
    }
}
