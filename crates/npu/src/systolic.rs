//! Analytical timing of the weight-stationary systolic array
//! (SCALE-Sim-style).
//!
//! A GEMM tile `Mt × Kt × Nt` maps its `Kt × Nt` weight panel onto the
//! `R × C` array in `⌈Kt/R⌉ · ⌈Nt/C⌉` folds. Per fold the array preloads
//! weights (R cycles) and streams the `Mt` activation rows through the
//! pipeline (`Mt + R + C − 2` cycles of fill/steady/drain):
//!
//! ```text
//! cycles(tile) = ⌈Kt/R⌉ · ⌈Nt/C⌉ · (Mt + 2R + C − 2)
//! ```
//!
//! Non-GEMM layers use a vector-engine approximation of `elements / C`
//! cycles (one lane per array column), scaled by the pooling window where
//! applicable.

use crate::config::NpuConfig;
use tnpu_sim::Cycles;

/// Cycles to compute one GEMM tile on the array.
///
/// # Panics
///
/// Panics if any tile dimension is zero.
#[must_use]
pub fn gemm_tile_cycles(npu: &NpuConfig, mt: u64, kt: u64, nt: u64) -> Cycles {
    assert!(mt > 0 && kt > 0 && nt > 0, "degenerate tile {mt}x{kt}x{nt}");
    let folds = kt.div_ceil(npu.rows) * nt.div_ceil(npu.cols);
    Cycles(folds * (mt + 2 * npu.rows + npu.cols - 2))
}

/// Cycles for an elementwise op over `elements` (residual adds).
#[must_use]
pub fn eltwise_cycles(npu: &NpuConfig, elements: u64) -> Cycles {
    Cycles(elements.div_ceil(npu.cols))
}

/// Cycles for pooling over `in_elements` inputs: the vector engine reads
/// each input element once (one lane per array column), regardless of the
/// window size — overlapping windows reuse on-chip data.
#[must_use]
pub fn pool_cycles(npu: &NpuConfig, in_elements: u64) -> Cycles {
    Cycles(in_elements.div_ceil(npu.cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fold_tile() {
        let npu = NpuConfig::small_npu(); // 32x32
                                          // Kt=32, Nt=32 -> one fold; Mt=100 -> 100 + 64 + 32 - 2 = 194.
        assert_eq!(gemm_tile_cycles(&npu, 100, 32, 32), Cycles(194));
    }

    #[test]
    fn folds_scale_linearly() {
        let npu = NpuConfig::small_npu();
        let one = gemm_tile_cycles(&npu, 64, 32, 32);
        let four = gemm_tile_cycles(&npu, 64, 64, 64);
        assert_eq!(four.0, one.0 * 4);
    }

    #[test]
    fn partial_fold_rounds_up() {
        let npu = NpuConfig::small_npu();
        assert_eq!(
            gemm_tile_cycles(&npu, 10, 33, 1),
            gemm_tile_cycles(&npu, 10, 64, 32)
        );
    }

    #[test]
    fn large_array_is_faster_per_tile() {
        let small = NpuConfig::small_npu();
        let large = NpuConfig::large_npu();
        // A big GEMM folds fewer times on the 45x45 array.
        let s = gemm_tile_cycles(&small, 256, 512, 512);
        let l = gemm_tile_cycles(&large, 256, 512, 512);
        assert!(l < s);
    }

    #[test]
    fn utilization_matches_macs_for_aligned_tiles() {
        // For array-aligned tiles and large Mt, cycles approach
        // macs / pes (the array's peak).
        let npu = NpuConfig::small_npu();
        let (mt, kt, nt) = (4096, 256, 256);
        let cycles = gemm_tile_cycles(&npu, mt, kt, nt).0 as f64;
        let ideal = (mt * kt * nt) as f64 / npu.pes() as f64;
        let efficiency = ideal / cycles;
        assert!(efficiency > 0.95, "efficiency {efficiency}");
    }

    #[test]
    fn vector_ops() {
        let npu = NpuConfig::small_npu();
        assert_eq!(eltwise_cycles(&npu, 64), Cycles(2));
        assert_eq!(pool_cycles(&npu, 64), Cycles(2));
        // A global pool is one pass over its input, not out * k^2 work.
        assert_eq!(pool_cycles(&npu, 49 * 1024), Cycles(1568));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_tile_panics() {
        let _ = gemm_tile_cycles(&NpuConfig::small_npu(), 0, 1, 1);
    }
}
