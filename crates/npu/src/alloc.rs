//! Tensor address allocation inside the NPU context's protected region.
//!
//! The CPU enclave allocates non-EPC memory for the NPU during context
//! initialization (§IV-E); this module models that allocator: every tensor
//! (model input, per-layer weights, per-layer outputs) gets a page-aligned
//! address range, and a stable *tensor id* used to index the version table.
//! Tied weights ([`tnpu_models::Layer::weights_shared_with`]) resolve to
//! the owner's allocation.

use tnpu_models::Model;
use tnpu_models::ELEM_BYTES;
use tnpu_sim::Addr;

/// Page alignment for tensor allocations.
pub const TENSOR_ALIGN: u64 = 4096;

/// One allocated tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorInfo {
    /// Version-table index.
    pub id: u32,
    /// Base address.
    pub addr: Addr,
    /// Size in bytes.
    pub bytes: u64,
}

/// Address map of a model instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelLayout {
    /// The model input tensor.
    pub input: TensorInfo,
    /// Per-layer weight tensor (`None` for parameter-less layers; tied
    /// weights share the owner's entry).
    pub weights: Vec<Option<TensorInfo>>,
    /// Per-layer output tensor.
    pub outputs: Vec<TensorInfo>,
    /// Bytes consumed from the region (high-water mark).
    pub total_bytes: u64,
    /// Number of distinct tensor ids handed out.
    pub tensor_count: u32,
}

impl ModelLayout {
    /// Allocate every tensor of `model` starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page aligned.
    #[must_use]
    pub fn allocate(model: &Model, base: Addr) -> Self {
        assert_eq!(base.0 % TENSOR_ALIGN, 0, "base must be page aligned");
        let mut next = base.0;
        let mut next_id = 0u32;
        let mut alloc = |bytes: u64| {
            let info = TensorInfo {
                id: next_id,
                addr: Addr(next),
                bytes,
            };
            next_id += 1;
            next += bytes.div_ceil(TENSOR_ALIGN) * TENSOR_ALIGN;
            info
        };
        let input = alloc(model.input_elements * ELEM_BYTES);
        let mut weights = Vec::with_capacity(model.layers.len());
        let mut outputs = Vec::with_capacity(model.layers.len());
        for layer in &model.layers {
            let w = match layer.weights_shared_with {
                Some(owner) => weights[owner],
                None => {
                    let bytes = layer.kind.weight_elements() * ELEM_BYTES;
                    (bytes > 0).then(|| alloc(bytes))
                }
            };
            weights.push(w);
            outputs.push(alloc(layer.kind.out_elements() * ELEM_BYTES));
        }
        ModelLayout {
            input,
            weights,
            outputs,
            total_bytes: next - base.0,
            tensor_count: next_id,
        }
    }

    /// Address and size of the tensor a layer input refers to.
    #[must_use]
    pub fn source(&self, src: tnpu_models::TensorSource) -> TensorInfo {
        match src {
            tnpu_models::TensorSource::ModelInput => self.input,
            tnpu_models::TensorSource::Layer(i) => self.outputs[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnpu_models::registry;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let model = registry::model("alex").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        let mut collect = |t: &TensorInfo| ranges.push((t.addr.0, t.addr.0 + t.bytes));
        collect(&layout.input);
        for w in layout.weights.iter().flatten() {
            collect(w);
        }
        for o in &layout.outputs {
            collect(o);
        }
        for (start, _) in &ranges {
            assert_eq!(start % TENSOR_ALIGN, 0);
        }
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
    }

    #[test]
    fn total_bytes_close_to_footprint() {
        let model = registry::model("res").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let fp = model.footprint_bytes();
        assert!(layout.total_bytes >= fp);
        // Padding overhead is bounded by one page per tensor.
        let tensors = layout.tensor_count as u64;
        assert!(layout.total_bytes <= fp + tensors * TENSOR_ALIGN);
    }

    #[test]
    fn tied_weights_share_allocation() {
        let model = registry::model("tf").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let last = model.layers.len() - 1;
        let owner = model.layers[last]
            .weights_shared_with
            .expect("tf output projection is tied");
        assert_eq!(layout.weights[last], layout.weights[owner]);
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let model = registry::model("mob").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let mut ids = vec![layout.input.id];
        for w in layout.weights.iter().flatten() {
            ids.push(w.id);
        }
        for o in &layout.outputs {
            ids.push(o.id);
        }
        ids.sort_unstable();
        ids.dedup();
        // Shared weights may duplicate; after dedup, ids must be dense.
        assert_eq!(ids.len() as u32, layout.tensor_count);
        assert_eq!(*ids.last().expect("non-empty") + 1, layout.tensor_count);
    }

    #[test]
    fn source_resolution() {
        let model = registry::model("alex").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(4096));
        assert_eq!(
            layout.source(tnpu_models::TensorSource::ModelInput),
            layout.input
        );
        assert_eq!(
            layout.source(tnpu_models::TensorSource::Layer(0)),
            layout.outputs[0]
        );
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_base_panics() {
        let model = registry::model("alex").expect("registered");
        let _ = ModelLayout::allocate(&model, Addr(100));
    }
}
