//! The two evaluated NPU configurations (paper Table II).

use tnpu_sim::dram::{BandwidthModel, DramTiming};

/// Static configuration of one simulated NPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpuConfig {
    /// Configuration name ("small" / "large").
    pub name: &'static str,
    /// Systolic-array rows.
    pub rows: u64,
    /// Systolic-array columns.
    pub cols: u64,
    /// Scratchpad capacity in bytes (total; double buffering halves the
    /// usable tile space).
    pub spm_bytes: u64,
    /// Memory bandwidth in the NPU clock domain.
    pub bandwidth: BandwidthModel,
    /// DRAM latency / MLP model.
    pub dram: DramTiming,
}

impl NpuConfig {
    /// Small NPU — Samsung Exynos 990 class: 32×32 PEs, 11 GB/s at
    /// 2.75 GHz (= 4 B/cycle), 480 KB SPM.
    ///
    /// DRAM latency is constant in wall-clock terms (the paper's 100
    /// cycles at the Large NPU's 1 GHz ≈ 100 ns), so at 2.75 GHz the same
    /// access costs 275 NPU cycles.
    #[must_use]
    pub fn small_npu() -> Self {
        NpuConfig {
            name: "small",
            rows: 32,
            cols: 32,
            spm_bytes: 480 << 10,
            bandwidth: BandwidthModel::bytes_per_cycle(4, 1),
            dram: DramTiming {
                latency: tnpu_sim::Cycles(275),
                mlp: 4,
            },
        }
    }

    /// Large NPU — ARM Ethos N77 class: 45×45 PEs, 22 GB/s at 1 GHz
    /// (= 22 B/cycle), 1 MB SPM.
    #[must_use]
    pub fn large_npu() -> Self {
        NpuConfig {
            name: "large",
            rows: 45,
            cols: 45,
            spm_bytes: 1 << 20,
            bandwidth: BandwidthModel::bytes_per_cycle(22, 1),
            dram: DramTiming::paper_default(),
        }
    }

    /// Both paper configurations, small first.
    #[must_use]
    pub fn paper_configs() -> [NpuConfig; 2] {
        [Self::small_npu(), Self::large_npu()]
    }

    /// Number of processing elements.
    #[must_use]
    pub fn pes(&self) -> u64 {
        self.rows * self.cols
    }

    /// Usable tile bytes under double buffering (half the SPM).
    #[must_use]
    pub fn tile_budget_bytes(&self) -> u64 {
        self.spm_bytes / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_small() {
        let c = NpuConfig::small_npu();
        assert_eq!(c.pes(), 1024);
        assert_eq!(c.spm_bytes, 480 * 1024);
        assert!((c.bandwidth.as_f64() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table2_large() {
        let c = NpuConfig::large_npu();
        assert_eq!(c.pes(), 2025);
        assert_eq!(c.spm_bytes, 1 << 20);
        assert!((c.bandwidth.as_f64() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn tile_budget_is_half_spm() {
        assert_eq!(NpuConfig::small_npu().tile_budget_bytes(), 240 * 1024);
    }
}
