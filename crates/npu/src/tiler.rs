//! Lowering a [`Model`] into per-layer tile jobs.
//!
//! Each GEMM-shaped layer is tiled so that its working set fits the SPM
//! under double buffering (`2·(A + B) + C ≤ SPM`, with the output tile
//! resident across the K loop). The tile search minimizes DRAM traffic
//! (`A·⌈N/Nt⌉ + B·⌈M/Mt⌉ + C`, the reload cost of the `n → m → k` loop
//! nest). Every `mvin`/`mvout` becomes a [`Transfer`] carrying the tensor
//! and tile identifiers that the TNPU version-number scheme needs.
//!
//! Convolutions read their ifmap through the on-the-fly im2col block: the
//! A-slab address mapping scales the logical `M × K` row down to the unique
//! ifmap bytes per output position (`row_stride = ifmap_bytes / M`), so
//! im2col reuse never inflates DRAM traffic.

use crate::alloc::{ModelLayout, TensorInfo};
use crate::config::NpuConfig;
use crate::dma::{Dir, DmaPattern, Transfer};
use crate::systolic;
use tnpu_models::{LayerKind, Model, ELEM_BYTES};
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::{Addr, Cycles};

/// One schedulable unit: prefetchable loads, a compute phase, and stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileJob {
    /// Index of the layer this job belongs to.
    pub layer: usize,
    /// `mvin` transfers (issued together, before compute).
    pub loads: Vec<Transfer>,
    /// Cycles on the systolic array / vector engine.
    pub compute: Cycles,
    /// `mvout` transfers (issued after compute).
    pub stores: Vec<Transfer>,
}

impl TileJob {
    /// Payload bytes loaded.
    #[must_use]
    pub fn load_bytes(&self) -> u64 {
        self.loads.iter().map(Transfer::bytes).sum()
    }

    /// Payload bytes stored.
    #[must_use]
    pub fn store_bytes(&self) -> u64 {
        self.stores.iter().map(Transfer::bytes).sum()
    }
}

/// A fully lowered model: the job stream plus layer bookkeeping.
#[derive(Debug, Clone)]
pub struct ModelPlan {
    /// All jobs in execution order.
    pub jobs: Vec<TileJob>,
    /// Job index range `[start, end)` per layer (empty for zero-cost
    /// layers like `Concat`).
    pub layer_jobs: Vec<(usize, usize)>,
    /// Layer names (for reports).
    pub layer_names: Vec<String>,
    /// The address map the plan was generated against.
    pub layout: ModelLayout,
}

impl ModelPlan {
    /// Total payload bytes the plan moves (loads + stores).
    #[must_use]
    pub fn data_bytes(&self) -> u64 {
        self.jobs
            .iter()
            .map(|j| j.load_bytes() + j.store_bytes())
            .sum()
    }

    /// Total compute cycles (no overlap).
    #[must_use]
    pub fn compute_cycles(&self) -> Cycles {
        self.jobs.iter().map(|j| j.compute).sum()
    }
}

/// Chosen GEMM tile dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileDims {
    /// Tile rows.
    pub mt: u64,
    /// Tile reduction length.
    pub kt: u64,
    /// Tile columns.
    pub nt: u64,
    /// Whether the full `K × Nt` weight panel stays resident in the SPM
    /// across the M loop (weight reuse): weights are then loaded once per
    /// N tile instead of once per (M, N) tile pair.
    pub b_resident: bool,
}

/// Fold a tile index computed in `u64` grid arithmetic into the `u32`
/// `Transfer::tile_id` field, loudly instead of truncating.
fn tile_id(index: u64) -> u32 {
    u32::try_from(index).expect("tile index fits the 32-bit tile-id space")
}

fn candidates(d: u64) -> Vec<u64> {
    let mut v = vec![d];
    let mut p = d.next_power_of_two() / 2;
    while p >= 8 && p < d {
        v.push(p);
        p /= 2;
    }
    v
}

/// Choose tile dimensions for an `M × K × N` GEMM on `npu`, minimizing the
/// estimated layer time `max(compute, traffic / bandwidth)` under double
/// buffering. `a_bytes` is the real size of the activation operand in DRAM
/// (smaller than `M·K` elements for convolutions thanks to im2col reuse).
///
/// # Panics
///
/// Panics if no feasible tiling exists even at the minimum tile size.
#[must_use]
pub fn choose_tiles(npu: &NpuConfig, m: u64, k: u64, n: u64, a_bytes: u64) -> TileDims {
    let budget = npu.spm_bytes / ELEM_BYTES;
    let mut best: Option<(u64, TileDims)> = None;
    for &kt in &candidates(k) {
        for &nt in &candidates(n) {
            for &mt in &candidates(m) {
                let double_buf = 2 * (mt * kt + kt * nt) + mt * nt;
                if double_buf > budget {
                    continue;
                }
                // Weight-panel residency: the full K x Nt panel can stay
                // in the SPM across the M loop.
                let b_resident = double_buf + k * nt <= budget;
                let n_tiles = n.div_ceil(nt);
                let m_tiles = m.div_ceil(mt);
                let k_tiles = k.div_ceil(kt);
                let folds = kt.div_ceil(npu.rows) * nt.div_ceil(npu.cols);
                let compute =
                    n_tiles * m_tiles * k_tiles * folds * (mt + 2 * npu.rows + npu.cols - 2);
                let b_traffic = k * n * ELEM_BYTES * if b_resident { 1 } else { m_tiles };
                let traffic = a_bytes * n_tiles + b_traffic + m * n * ELEM_BYTES;
                let mem = npu.bandwidth.transfer_time(traffic).0;
                let cost = compute.max(mem);
                let dims = TileDims {
                    mt,
                    kt,
                    nt,
                    b_resident,
                };
                let better = match best {
                    None => true,
                    Some((c, d)) => cost < c || (cost == c && mt * kt * nt > d.mt * d.kt * d.nt),
                };
                if better {
                    best = Some((cost, dims));
                }
            }
        }
    }
    best.map(|(_, d)| d).unwrap_or_else(|| {
        panic!(
            "no feasible tiling for {m}x{k}x{n} in {} B SPM",
            npu.spm_bytes
        )
    })
}

/// Lower `model` to a [`ModelPlan`] for `npu`. `seed` fixes the embedding
/// gather addresses, keeping runs reproducible.
#[must_use]
pub fn plan(model: &Model, npu: &NpuConfig, layout: &ModelLayout, seed: u64) -> ModelPlan {
    plan_with_prefix(model, npu, layout, seed, "")
}

/// [`plan`] with a layer-name prefix — used by the stepped (step-loop)
/// traces, where the plans of many per-step models are concatenated and
/// each step's layers need unambiguous names (`"s3.l0_qkv"`). The job
/// stream is byte-identical to [`plan`]'s; only the report names differ.
#[must_use]
pub fn plan_with_prefix(
    model: &Model,
    npu: &NpuConfig,
    layout: &ModelLayout,
    seed: u64,
    prefix: &str,
) -> ModelPlan {
    let mut jobs = Vec::new();
    let mut layer_jobs = Vec::with_capacity(model.layers.len());
    let mut layer_names = Vec::with_capacity(model.layers.len());
    for (li, layer) in model.layers.iter().enumerate() {
        layer_names.push(format!("{prefix}{}", layer.name));
        let start = jobs.len();
        lower_layer(model, npu, layout, li, seed, &mut jobs);
        layer_jobs.push((start, jobs.len()));
    }
    ModelPlan {
        jobs,
        layer_jobs,
        layer_names,
        layout: layout.clone(),
    }
}

/// Whether a layer's weight tensor can be stored in pre-tiled (panel)
/// layout. Weights are normally reordered offline into contiguous
/// `Kt x Nt` panels, so weight `mvin`s are contiguous bursts; a tensor
/// *shared with an embedding table* must stay row-major (the gathers index
/// it by row), which is exactly what makes a tied vocabulary projection a
/// fine-grained strided stream (the paper's `tf` stress case).
fn weights_pre_tiled(model: &Model, li: usize) -> bool {
    match model.layers[li].weights_shared_with {
        Some(owner) => !matches!(model.layers[owner].kind, LayerKind::Embedding { .. }),
        None => true,
    }
}

fn lower_layer(
    model: &Model,
    npu: &NpuConfig,
    layout: &ModelLayout,
    li: usize,
    seed: u64,
    jobs: &mut Vec<TileJob>,
) {
    let layer = &model.layers[li];
    match layer.kind {
        LayerKind::Concat { .. } => {
            // Zero-cost: branches already wrote adjacent buffers.
        }
        LayerKind::Embedding { vocab, dim, seq } => {
            lower_embedding(npu, layout, li, vocab, dim, seq, seed, jobs);
        }
        LayerKind::Eltwise { .. } => {
            lower_eltwise(npu, layout, model, li, jobs);
        }
        LayerKind::Pool { .. } => {
            lower_pool(npu, layout, model, li, jobs);
        }
        _ => {
            let gemm = layer
                .kind
                .gemm()
                .expect("all remaining layer kinds are GEMM-shaped");
            lower_gemm(npu, layout, model, li, gemm.m, gemm.k, gemm.n, jobs);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_gemm(
    npu: &NpuConfig,
    layout: &ModelLayout,
    model: &Model,
    li: usize,
    m: u64,
    k: u64,
    n: u64,
    jobs: &mut Vec<TileJob>,
) {
    let layer = &model.layers[li];
    // Convolutions read a contiguous ifmap slab per M tile (all input
    // channels at once; the im2col block expands it on chip). Matmul-shaped
    // layers read pre-tiled activation panels per K chunk: the producing
    // layer stores its output in the consumer's panel layout, a standard
    // NPU-compiler transformation. Only embedding-tied tensors must stay
    // row-major.
    let a_whole_slab = matches!(
        layer.kind,
        LayerKind::Conv { .. } | LayerKind::DwConv { .. }
    );
    let a_src = layout.source(layer.inputs[0]);
    let b_src = layout.weights[li].expect("GEMM layers have a weight tensor");
    let c_dst = layout.outputs[li];
    let dims = choose_tiles(npu, m, k, n, a_src.bytes);
    let pre_tiled = weights_pre_tiled(model, li);
    // Unique activation bytes per output row (im2col-aware; exact for
    // matmul/fc where the source tensor is literally M x K).
    let a_row_stride = (a_src.bytes / m).max(1);
    let n_tiles = n.div_ceil(dims.nt);
    let m_tiles = m.div_ceil(dims.mt);
    let k_tiles = k.div_ceil(dims.kt);
    for ni in 0..n_tiles {
        let n0 = ni * dims.nt;
        let nt = dims.nt.min(n - n0);
        for mi in 0..m_tiles {
            let m0 = mi * dims.mt;
            let mt = dims.mt.min(m - m0);
            let mut loads =
                Vec::with_capacity(usize::try_from(2 * k_tiles).expect("tile count fits usize"));
            let mut compute = Cycles::ZERO;
            for ki in 0..k_tiles {
                let k0 = ki * dims.kt;
                let kt = dims.kt.min(k - k0);
                // A slab. Convolutions: one contiguous ifmap slab covering
                // every K chunk, fetched with the first chunk. Matmuls:
                // one contiguous pre-tiled Mt x Kt panel per K chunk.
                if a_whole_slab {
                    if ki == 0 {
                        loads.push(Transfer {
                            pattern: DmaPattern::Contiguous {
                                base: a_src.addr.offset(m0 * a_row_stride),
                                bytes: (mt * a_row_stride).min(a_src.bytes),
                            },
                            dir: Dir::Read,
                            tensor_id: a_src.id,
                            tile_id: tile_id(mi),
                            version: 1,
                        });
                    }
                } else {
                    loads.push(Transfer {
                        pattern: DmaPattern::Contiguous {
                            base: a_src
                                .addr
                                .offset(m0 * a_row_stride + k0 * mt * a_row_stride / k),
                            bytes: mt * kt * a_row_stride / k,
                        },
                        dir: Dir::Read,
                        tensor_id: a_src.id,
                        tile_id: tile_id(mi * k_tiles + ki),
                        version: 1,
                    });
                }
                // B panel: pre-tiled weights are one contiguous burst;
                // row-major tensors (tied embedding tables) are kt strided
                // rows. With a resident weight panel, B is fetched only on
                // the first M tile of each N tile.
                if !dims.b_resident || mi == 0 {
                    let pattern = if pre_tiled {
                        DmaPattern::Contiguous {
                            base: b_src.addr.offset((k0 * n + n0 * kt) * ELEM_BYTES),
                            bytes: kt * nt * ELEM_BYTES,
                        }
                    } else {
                        DmaPattern::Strided {
                            base: b_src.addr.offset((k0 * n + n0) * ELEM_BYTES),
                            rows: kt,
                            row_bytes: nt * ELEM_BYTES,
                            stride: n * ELEM_BYTES,
                        }
                    };
                    loads.push(Transfer {
                        pattern,
                        dir: Dir::Read,
                        tensor_id: b_src.id,
                        tile_id: tile_id(ki * n_tiles + ni),
                        version: 1,
                    });
                }
                compute += systolic::gemm_tile_cycles(npu, mt, kt, nt);
            }
            let stores = vec![Transfer {
                pattern: DmaPattern::Strided {
                    base: c_dst.addr.offset((m0 * n + n0) * ELEM_BYTES),
                    rows: mt,
                    row_bytes: nt * ELEM_BYTES,
                    stride: n * ELEM_BYTES,
                },
                dir: Dir::Write,
                tensor_id: c_dst.id,
                tile_id: tile_id(mi * n_tiles + ni),
                version: 1,
            }];
            jobs.push(TileJob {
                layer: li,
                loads,
                compute,
                stores,
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_embedding(
    npu: &NpuConfig,
    layout: &ModelLayout,
    li: usize,
    vocab: u64,
    dim: u64,
    seq: u64,
    seed: u64,
    jobs: &mut Vec<TileJob>,
) {
    let table = layout.weights[li].expect("embedding table is the weight tensor");
    let out = layout.outputs[li];
    let row_bytes = dim * ELEM_BYTES;
    // Triple buffering budget: gathered rows + output chunk, double buffered.
    let group = (npu.spm_bytes / 6 / row_bytes).clamp(1, seq);
    let mut rng = SplitMix64::new(seed ^ (li as u64).wrapping_mul(0x9E37_79B9));
    let mut emitted = 0u64;
    let mut tile = 0u32;
    while emitted < seq {
        let count = group.min(seq - emitted);
        let rows: Vec<Addr> = (0..count)
            .map(|_| table.addr.offset(rng.next_below(vocab) * row_bytes))
            .collect();
        let loads = vec![Transfer {
            pattern: DmaPattern::Scattered { rows, row_bytes },
            dir: Dir::Read,
            tensor_id: table.id,
            tile_id: tile,
            version: 1,
        }];
        let stores = vec![Transfer {
            pattern: DmaPattern::Contiguous {
                base: out.addr.offset(emitted * row_bytes),
                bytes: count * row_bytes,
            },
            dir: Dir::Write,
            tensor_id: out.id,
            tile_id: tile,
            version: 1,
        }];
        jobs.push(TileJob {
            layer: li,
            loads,
            compute: systolic::eltwise_cycles(npu, count * dim),
            stores,
        });
        emitted += count;
        tile += 1;
    }
}

fn lower_eltwise(
    npu: &NpuConfig,
    layout: &ModelLayout,
    model: &Model,
    li: usize,
    jobs: &mut Vec<TileJob>,
) {
    let layer = &model.layers[li];
    let a = layout.source(layer.inputs[0]);
    let b = layout.source(layer.inputs[1]);
    let out = layout.outputs[li];
    let total = out.bytes;
    let chunk = (npu.spm_bytes / 6).max(64).min(total.max(1));
    let mut off = 0u64;
    let mut tile = 0u32;
    while off < total {
        let bytes = chunk.min(total - off);
        let loads = vec![
            contiguous_read(a, off, bytes, tile),
            contiguous_read(b, off, bytes, tile),
        ];
        let stores = vec![Transfer {
            pattern: DmaPattern::Contiguous {
                base: out.addr.offset(off),
                bytes,
            },
            dir: Dir::Write,
            tensor_id: out.id,
            tile_id: tile,
            version: 1,
        }];
        jobs.push(TileJob {
            layer: li,
            loads,
            compute: systolic::eltwise_cycles(npu, bytes / ELEM_BYTES),
            stores,
        });
        off += bytes;
        tile += 1;
    }
}

fn lower_pool(
    npu: &NpuConfig,
    layout: &ModelLayout,
    model: &Model,
    li: usize,
    jobs: &mut Vec<TileJob>,
) {
    let layer = &model.layers[li];
    let src = layout.source(layer.inputs[0]);
    let out = layout.outputs[li];
    let total_out = out.bytes;
    let ratio = (src.bytes / total_out.max(1)).max(1);
    let chunk_out = (npu.spm_bytes / (2 * (ratio + 1)))
        .max(64)
        .min(total_out.max(1));
    let mut off = 0u64;
    let mut tile = 0u32;
    while off < total_out {
        let out_bytes = chunk_out.min(total_out - off);
        let in_bytes = (out_bytes * ratio).min(src.bytes);
        let loads = vec![contiguous_read(
            src,
            (off * ratio).min(src.bytes.saturating_sub(in_bytes)),
            in_bytes,
            tile,
        )];
        let stores = vec![Transfer {
            pattern: DmaPattern::Contiguous {
                base: out.addr.offset(off),
                bytes: out_bytes,
            },
            dir: Dir::Write,
            tensor_id: out.id,
            tile_id: tile,
            version: 1,
        }];
        jobs.push(TileJob {
            layer: li,
            loads,
            compute: systolic::pool_cycles(npu, in_bytes / ELEM_BYTES),
            stores,
        });
        off += out_bytes;
        tile += 1;
    }
}

fn contiguous_read(src: TensorInfo, off: u64, bytes: u64, tile: u32) -> Transfer {
    Transfer {
        pattern: DmaPattern::Contiguous {
            base: src.addr.offset(off),
            bytes,
        },
        dir: Dir::Read,
        tensor_id: src.id,
        tile_id: tile,
        version: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::ModelLayout;
    use tnpu_models::registry;

    fn plan_for(name: &str, npu: &NpuConfig) -> ModelPlan {
        let model = registry::model(name).expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        plan(&model, npu, &layout, 42)
    }

    #[test]
    fn tiles_fit_spm() {
        let npu = NpuConfig::small_npu();
        for (m, k, n) in [(3136u64, 2304, 512), (1, 9216, 4096), (256, 512, 32000)] {
            let d = choose_tiles(&npu, m, k, n, m * k * ELEM_BYTES);
            let bytes = (2 * (d.mt * d.kt + d.kt * d.nt) + d.mt * d.nt) * ELEM_BYTES;
            assert!(bytes <= npu.spm_bytes, "{m}x{k}x{n} -> {d:?} uses {bytes}");
            assert!(d.mt <= m && d.kt <= k && d.nt <= n);
        }
    }

    #[test]
    fn small_gemm_is_one_tile_with_resident_weights() {
        let npu = NpuConfig::small_npu();
        let d = choose_tiles(&npu, 32, 64, 32, 32 * 64 * ELEM_BYTES);
        assert_eq!((d.mt, d.kt, d.nt), (32, 64, 32));
        assert!(d.b_resident, "a 4 KB weight panel trivially fits");
    }

    #[test]
    fn resident_weights_are_loaded_once() {
        // A conv-like GEMM whose weights fit the SPM: total B traffic must
        // equal the weight size exactly, independent of M tiling.
        let npu = NpuConfig::small_npu();
        let model = registry::model("res").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let p = plan(&model, &npu, &layout, 1);
        // Layer 0 is conv1 (7x7x3 -> 64): weights 64*147*2 B.
        let w = layout.weights[0].expect("conv has weights");
        let (s, e) = p.layer_jobs[0];
        let b_bytes: u64 = p.jobs[s..e]
            .iter()
            .flat_map(|j| j.loads.iter())
            .filter(|t| t.tensor_id == w.id)
            .map(Transfer::bytes)
            .sum();
        assert_eq!(b_bytes, w.bytes, "conv1 weights streamed exactly once");
    }

    #[test]
    fn plan_moves_at_least_the_unique_data() {
        let npu = NpuConfig::small_npu();
        let model = registry::model("alex").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let p = plan(&model, &npu, &layout, 1);
        // Weights must be loaded at least once each.
        let weight_bytes: u64 = layout.weights.iter().flatten().map(|w| w.bytes).sum();
        assert!(p.data_bytes() >= weight_bytes);
        // And reload traffic should not explode beyond ~8x the footprint.
        assert!(
            p.data_bytes() < 8 * model.footprint_bytes(),
            "traffic {} vs footprint {}",
            p.data_bytes(),
            model.footprint_bytes()
        );
    }

    #[test]
    fn all_models_lower_on_both_configs() {
        for npu in NpuConfig::paper_configs() {
            for name in registry::MODEL_NAMES {
                let p = plan_for(name, &npu);
                assert!(!p.jobs.is_empty(), "{name} produced no jobs");
                assert!(p.compute_cycles().0 > 0, "{name} has no compute");
                // Every layer range is within bounds and ordered.
                for &(s, e) in &p.layer_jobs {
                    assert!(s <= e && e <= p.jobs.len());
                }
            }
        }
    }

    #[test]
    fn embedding_jobs_scatter_within_table() {
        let npu = NpuConfig::small_npu();
        let model = registry::model("ncf").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let p = plan(&model, &npu, &layout, 7);
        let table = layout.weights[0].expect("embedding table");
        let (s, e) = p.layer_jobs[0];
        assert!(e > s);
        for job in &p.jobs[s..e] {
            match &job.loads[0].pattern {
                DmaPattern::Scattered { rows, row_bytes } => {
                    assert_eq!(*row_bytes, 128);
                    for r in rows {
                        assert!(r.0 >= table.addr.0);
                        assert!(r.0 + row_bytes <= table.addr.0 + table.bytes);
                    }
                }
                other => panic!("expected scattered gather, got {other:?}"),
            }
        }
    }

    #[test]
    fn embedding_is_deterministic_per_seed() {
        let npu = NpuConfig::small_npu();
        let model = registry::model("sent").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let p1 = plan(&model, &npu, &layout, 9);
        let p2 = plan(&model, &npu, &layout, 9);
        assert_eq!(p1.jobs[0], p2.jobs[0]);
        let p3 = plan(&model, &npu, &layout, 10);
        assert_ne!(p1.jobs[0], p3.jobs[0]);
    }

    #[test]
    fn concat_emits_no_jobs() {
        let npu = NpuConfig::small_npu();
        let model = registry::model("goo").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let p = plan(&model, &npu, &layout, 1);
        for (li, layer) in model.layers.iter().enumerate() {
            if matches!(layer.kind, LayerKind::Concat { .. }) {
                let (s, e) = p.layer_jobs[li];
                assert_eq!(s, e, "concat layer {} has jobs", layer.name);
            }
        }
    }

    #[test]
    fn vocab_projection_is_strided_fine_grained() {
        // tf's out_proj weight tiles must have a large row stride (the
        // vocabulary width) with small row_bytes: the paper's
        // low-spatial-locality pattern.
        let npu = NpuConfig::small_npu();
        let model = registry::model("tf").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let p = plan(&model, &npu, &layout, 1);
        let last = model.layers.len() - 1;
        let (s, e) = p.layer_jobs[last];
        let weight_id = layout.weights[last].expect("tied table").id;
        let mut saw_strided = false;
        for job in &p.jobs[s..e] {
            for t in &job.loads {
                if t.tensor_id == weight_id {
                    if let DmaPattern::Strided {
                        stride, row_bytes, ..
                    } = t.pattern
                    {
                        assert_eq!(stride, 32_000 * ELEM_BYTES);
                        assert!(row_bytes < 4096, "rows must be far smaller than stride");
                        saw_strided = true;
                    }
                }
            }
        }
        assert!(saw_strided);
    }

    #[test]
    fn stores_cover_output_tensor_exactly_once() {
        let npu = NpuConfig::small_npu();
        let model = registry::model("alex").expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let p = plan(&model, &npu, &layout, 1);
        for (li, layer) in model.layers.iter().enumerate() {
            if matches!(layer.kind, LayerKind::Concat { .. }) {
                continue;
            }
            let (s, e) = p.layer_jobs[li];
            let stored: u64 = p.jobs[s..e].iter().map(TileJob::store_bytes).sum();
            assert_eq!(
                stored,
                layer.kind.out_elements() * ELEM_BYTES,
                "layer {}",
                layer.name
            );
        }
    }
}
