//! Developer tool: inspect the tile dimensions the search picks for
//! representative GEMMs. `cargo run --release -p tnpu-npu --example tiles`

use tnpu_npu::tiler::choose_tiles;
fn main() {
    let npu = tnpu_npu::NpuConfig::small_npu();
    // (label, m, k, n, a_bytes)
    let cases = [
        ("vgg conv4_1", 784u64, 2304u64, 512u64, 784 * 2304 / 9 * 2),
        ("vgg conv2_1", 12544, 576, 128, 12544 * 576 / 9 * 2),
        ("med lstm2", 768, 1536, 2048, 768 * 1536 * 2),
        ("tx lstm2", 512, 1344, 2688, 512 * 1344 * 2),
        ("tf ffn1", 256, 512, 2048, 256 * 512 * 2),
        ("tf out_proj", 256, 512, 32000, 256 * 512 * 2),
        ("sent conv", 4094, 900, 512, 4096 * 300 * 2),
    ];
    for (label, m, k, n, ab) in cases {
        let d = choose_tiles(&npu, m, k, n, ab);
        println!(
            "{label:14} m{m} k{k} n{n} -> mt {} kt {} nt {} b_res {}",
            d.mt, d.kt, d.nt, d.b_resident
        );
    }
}
