//! Developer tool: per-model protection-overhead dump for both NPU
//! configurations (the raw data behind Figs. 4/14/15, without the
//! harness). `cargo run --release -p tnpu-npu --example overheads`

fn main() {
    let cfgs = [
        tnpu_npu::NpuConfig::small_npu(),
        tnpu_npu::NpuConfig::large_npu(),
    ];
    for cfg in &cfgs {
        println!("== {} NPU ==", cfg.name);
        let (mut bsum, mut tsum) = (0.0, 0.0);
        for name in tnpu_models::registry::MODEL_NAMES {
            let m = tnpu_models::registry::model(name).unwrap();
            let u = tnpu_npu::simulate(&m, cfg, tnpu_memprot::SchemeKind::Unsecure);
            let b = tnpu_npu::simulate(&m, cfg, tnpu_memprot::SchemeKind::TreeBased);
            let t = tnpu_npu::simulate(&m, cfg, tnpu_memprot::SchemeKind::Treeless);
            let bo = b.total.0 as f64 / u.total.0 as f64;
            let to = t.total.0 as f64 / u.total.0 as f64;
            bsum += bo;
            tsum += to;
            let miss = b.engine.counter_cache.miss_rate() * 100.0;
            println!("{name:6} base {bo:5.3}  tnpu {to:5.3}  ctr-miss {miss:5.1}%  traffic b {:5.3} t {:5.3}",
                b.total_traffic() as f64 / u.data_traffic() as f64,
                t.total_traffic() as f64 / u.data_traffic() as f64);
        }
        println!("avg   base {:.3}  tnpu {:.3}", bsum / 14.0, tsum / 14.0);
    }
}
