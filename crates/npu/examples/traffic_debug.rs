//! Developer tool: metadata-traffic composition per scheme (counter /
//! tree / MAC / version split).
//! `cargo run --release -p tnpu-npu --example traffic_debug`

fn main() {
    for name in ["df", "goo", "sent"] {
        let m = tnpu_models::registry::model(name).unwrap();
        let cfg = tnpu_npu::NpuConfig::small_npu();
        for scheme in [
            tnpu_memprot::SchemeKind::TreeBased,
            tnpu_memprot::SchemeKind::Treeless,
        ] {
            let r = tnpu_npu::simulate(&m, &cfg, scheme);
            let d = r.data_traffic() as f64;
            let t = r.engine.traffic;
            println!("{name:5} {:9} data {:6.1}MB  ctr {:5.2}% tree {:5.2}% mac {:5.2}% ver {:5.2}%  (vmiss {} / vacc {})",
                scheme.label(), d/1e6,
                t.counter as f64/d*100.0, t.tree as f64/d*100.0, t.mac as f64/d*100.0, t.version as f64/d*100.0,
                r.engine.events.get("version_miss"), r.engine.events.get("version_access"));
        }
    }
}
