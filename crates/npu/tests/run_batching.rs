//! Observation-equivalence of the run-batched engine paths.
//!
//! The run-batched `read_run`/`write_run` overrides in `TreelessEngine` and
//! `TreeBasedEngine` must be indistinguishable from the per-block reference
//! loop for *arbitrary* DMA patterns: identical per-transfer `AccessCost`,
//! identical traffic/event statistics, and — the strongest check —
//! identical full engine state (cache lines, LRU stamps, write counts)
//! compared through the exhaustive `Debug` rendering. This is the gate that
//! lets the simulator charge each MAC/counter block once per covered run
//! span instead of once per data block.

use proptest::prelude::*;
use tnpu_memprot::tree_engine::TreeBasedEngine;
use tnpu_memprot::treeless_engine::TreelessEngine;
use tnpu_memprot::{AccessCost, ProtectionConfig, ProtectionEngine};
use tnpu_npu::dma::DmaPattern;
use tnpu_sim::Addr;

/// One DMA transfer: the pattern plus its direction (true = write).
type Op = (DmaPattern, bool);

fn arb_op() -> impl Strategy<Value = Op> {
    let pattern = prop_oneof![
        (0u64..(1 << 20), 0u64..2048).prop_map(|(base, bytes)| DmaPattern::Contiguous {
            base: Addr(base),
            bytes
        }),
        (0u64..(1 << 20), 0u64..6, 0u64..300, 0u64..4096).prop_map(
            |(base, rows, row_bytes, stride)| DmaPattern::Strided {
                base: Addr(base),
                rows,
                row_bytes,
                stride,
            }
        ),
        (prop::collection::vec(0u64..(1 << 20), 0..6), 0u64..300).prop_map(
            |(starts, row_bytes)| DmaPattern::Scattered {
                rows: starts.into_iter().map(Addr).collect(),
                row_bytes,
            }
        ),
    ];
    (pattern, any::<bool>())
}

/// Drive `batched` through the run API and `reference` through the
/// per-block API with the same transfers; both must agree on every
/// per-transfer cost and end in identical state.
fn assert_equivalent<E: ProtectionEngine + std::fmt::Debug>(
    mut batched: E,
    mut reference: E,
    ops: &[Op],
) {
    for (i, (pattern, write)) in ops.iter().enumerate() {
        let version = i as u64;
        let mut run_cost = AccessCost::FREE;
        pattern.for_each_run(|run| {
            run_cost.merge(if *write {
                batched.write_run(run, version)
            } else {
                batched.read_run(run, version)
            });
        });
        let mut block_cost = AccessCost::FREE;
        pattern.for_each_block(|b| {
            block_cost.merge(if *write {
                reference.write_block(b.base(), version)
            } else {
                reference.read_block(b.base(), version)
            });
        });
        assert_eq!(run_cost, block_cost, "op {i}: {pattern:?} write={write}");
    }
    assert_eq!(batched.stats(), reference.stats());
    assert_eq!(
        format!("{batched:?}"),
        format!("{reference:?}"),
        "full engine state (caches, LRU, write counts) must match"
    );
}

proptest! {
    #[test]
    fn treeless_run_batching_is_observation_equivalent(
        ops in prop::collection::vec(arb_op(), 1..8),
    ) {
        let config = ProtectionConfig::paper_default();
        assert_equivalent(
            TreelessEngine::new(config.clone()),
            TreelessEngine::new(config),
            &ops,
        );
    }

    #[test]
    fn tree_based_run_batching_is_observation_equivalent(
        ops in prop::collection::vec(arb_op(), 1..8),
    ) {
        let config = ProtectionConfig::paper_default();
        assert_equivalent(
            TreeBasedEngine::new(config.clone()),
            TreeBasedEngine::new(config),
            &ops,
        );
    }

    #[test]
    fn tree_based_equivalence_holds_across_counter_granularities(
        ops in prop::collection::vec(arb_op(), 1..6),
        counters in prop_oneof![Just(32u64), Just(64u64), Just(128u64)],
    ) {
        let mut config = ProtectionConfig::paper_default();
        config.counters_per_block = counters;
        assert_equivalent(
            TreeBasedEngine::new(config.clone()),
            TreeBasedEngine::new(config),
            &ops,
        );
    }
}
