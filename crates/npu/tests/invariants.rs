//! Simulator invariants: property tests over the tiler and scheduling
//! edge cases of the NPU machine.

use proptest::prelude::*;
use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
use tnpu_models::ELEM_BYTES;
use tnpu_npu::alloc::ModelLayout;
use tnpu_npu::controller::MemoryController;
use tnpu_npu::machine::NpuMachine;
use tnpu_npu::tiler::{self, choose_tiles};
use tnpu_npu::NpuConfig;
use tnpu_sim::Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any GEMM dimension triple yields a tiling that fits the SPM under
    /// double buffering and respects the dimension bounds.
    #[test]
    fn chosen_tiles_always_fit(
        m in 1u64..20_000,
        k in 1u64..8_000,
        n in 1u64..40_000,
    ) {
        for npu in NpuConfig::paper_configs() {
            let d = choose_tiles(&npu, m, k, n, m * k * ELEM_BYTES);
            prop_assert!(d.mt >= 1 && d.mt <= m);
            prop_assert!(d.kt >= 1 && d.kt <= k);
            prop_assert!(d.nt >= 1 && d.nt <= n);
            let bytes = (2 * (d.mt * d.kt + d.kt * d.nt) + d.mt * d.nt) * ELEM_BYTES;
            prop_assert!(
                bytes <= npu.spm_bytes,
                "{m}x{k}x{n} on {}: {bytes} B > {} B SPM",
                npu.name,
                npu.spm_bytes
            );
        }
    }

    /// The tile search is deterministic.
    #[test]
    fn tiling_is_deterministic(m in 1u64..5_000, k in 1u64..4_000, n in 1u64..8_000) {
        let npu = NpuConfig::small_npu();
        let a = choose_tiles(&npu, m, k, n, m * k * ELEM_BYTES);
        let b = choose_tiles(&npu, m, k, n, m * k * ELEM_BYTES);
        prop_assert_eq!(a, b);
    }
}

/// Every model's plan: stores cover each output tensor exactly once, and
/// total load bytes cover at least the weights.
#[test]
fn plans_cover_outputs_for_all_models() {
    let npu = NpuConfig::small_npu();
    for name in tnpu_models::registry::MODEL_NAMES {
        let model = tnpu_models::registry::model(name).expect("registered");
        let layout = ModelLayout::allocate(&model, Addr(0));
        let plan = tiler::plan(&model, &npu, &layout, 11);
        for (li, layer) in model.layers.iter().enumerate() {
            if matches!(layer.kind, tnpu_models::LayerKind::Concat { .. }) {
                continue;
            }
            let (s, e) = plan.layer_jobs[li];
            let stored: u64 = plan.jobs[s..e].iter().map(|j| j.store_bytes()).sum();
            assert_eq!(
                stored,
                layer.kind.out_elements() * ELEM_BYTES,
                "{name}/{}",
                layer.name
            );
        }
    }
}

/// A plan with a single job (tiny model) still schedules correctly.
#[test]
fn single_job_machine_completes() {
    // The smallest registered model is deepface's final layers; build a
    // tiny synthetic model instead.
    let model = tnpu_models::ModelBuilder::new("tiny", "Tiny", (4, 8, 8))
        .conv("only", 4, 3, 1, 1)
        .build();
    let npu = NpuConfig::small_npu();
    let layout = ModelLayout::allocate(&model, Addr(0));
    let plan = tiler::plan(&model, &npu, &layout, 1);
    assert_eq!(plan.jobs.len(), 1);
    let engine = build_engine(SchemeKind::Treeless, &ProtectionConfig::paper_default());
    let mut ctl = MemoryController::new(engine, &npu);
    let mut m = NpuMachine::new(plan);
    let mut served = 0;
    while !m.is_done() {
        m.serve_next(&mut ctl);
        served += 1;
        assert!(served < 100, "machine must terminate");
    }
    let report = m.into_report(&ctl);
    assert!(report.total.0 > 0);
    assert!(report.data_read > 0 && report.data_write > 0);
}

/// Layer barriers: a two-layer chain must not start loading layer 1
/// before layer 0's stores complete; the finish times are ordered.
#[test]
fn layer_barrier_orders_finishes() {
    let model = tnpu_models::ModelBuilder::new("chain", "Chain", (8, 16, 16))
        .conv("a", 8, 3, 1, 1)
        .conv("b", 8, 3, 1, 1)
        .conv("c", 8, 3, 1, 1)
        .build();
    let npu = NpuConfig::small_npu();
    let layout = ModelLayout::allocate(&model, Addr(0));
    let plan = tiler::plan(&model, &npu, &layout, 1);
    let engine = build_engine(SchemeKind::Unsecure, &ProtectionConfig::paper_default());
    let mut ctl = MemoryController::new(engine, &npu);
    let mut m = NpuMachine::new(plan);
    while !m.is_done() {
        m.serve_next(&mut ctl);
    }
    let report = m.into_report(&ctl);
    let finishes: Vec<u64> = report.layers.iter().map(|l| l.finish.0).collect();
    assert!(finishes[0] < finishes[1]);
    assert!(finishes[1] < finishes[2]);
}

/// Multi-NPU determinism: the same configuration always produces the same
/// cycle counts.
#[test]
fn multi_npu_is_deterministic() {
    let model = tnpu_models::registry::model("df").expect("registered");
    let npu = NpuConfig::small_npu();
    let run = |_: u32| {
        tnpu_npu::simulate_multi(&model, &npu, SchemeKind::TreeBased, 2)
            .iter()
            .map(|r| r.total.0)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(0), run(1));
}

/// Fairness: with identical work, no NPU finishes wildly later than its
/// peers (FCFS keeps the spread bounded).
#[test]
fn multi_npu_fairness() {
    let model = tnpu_models::registry::model("df").expect("registered");
    let npu = NpuConfig::small_npu();
    let totals: Vec<u64> = tnpu_npu::simulate_multi(&model, &npu, SchemeKind::Treeless, 3)
        .iter()
        .map(|r| r.total.0)
        .collect();
    let min = *totals.iter().min().expect("non-empty") as f64;
    let max = *totals.iter().max().expect("non-empty") as f64;
    assert!(
        max / min < 1.25,
        "same work should finish within ~25 %: {totals:?}"
    );
}
