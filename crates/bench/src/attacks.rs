//! The attack-injection report: one scheme × attack detection matrix per
//! model, computed on the deterministic worker pool.
//!
//! Each cell is an independent job (a full two-pass functional inference
//! with one injected attack — [`tnpu_core::attacks::run_cell`]), so the
//! matrix fans out over [`crate::sweep`] like every other experiment and
//! stdout stays byte-identical at any thread count.

use crate::sweep as pool;
use crate::PoolReport;
use tnpu_core::attacks::{run_cell, CellResult};
use tnpu_core::Scheme;
use tnpu_memprot::adversary::AttackKind;
use tnpu_models::registry;

/// Pool-report name for the attack matrix.
pub const ATTACKS_EXPERIMENT: &str = "attacks";

/// Default victims: the smallest conv pipeline and the embedding-gather
/// model — together they exercise every consumer shape the harness knows
/// (layer ingest, gathered tables, final read-back).
pub const DEFAULT_MODELS: [&str; 2] = ["df", "ncf"];

/// Run the full matrix for `models` on the session pool.
#[must_use]
pub fn matrix(models: &[&str]) -> Vec<(String, CellResult)> {
    let (cells, report) = matrix_with_threads(pool::threads(), models);
    pool::record(report);
    cells
}

/// [`matrix`] at an explicit pool width, returning the timing report
/// instead of recording it — the hook the determinism test uses.
#[must_use]
pub fn matrix_with_threads(
    threads: usize,
    models: &[&str],
) -> (Vec<(String, CellResult)>, PoolReport) {
    let mut jobs = Vec::new();
    for &model in models {
        // Attack-major order: the renderer emits one row per attack with
        // one column per scheme.
        for attack in AttackKind::ALL {
            for scheme in Scheme::ALL {
                jobs.push((model, scheme, attack));
            }
        }
    }
    let (results, report) = pool::run_ordered_with(
        threads,
        ATTACKS_EXPERIMENT,
        &jobs,
        |(model, scheme, attack)| format!("{model}/{scheme}/{attack}"),
        |(model, scheme, attack)| {
            let m = registry::model(model).expect("registered model");
            run_cell(&m, *scheme, *attack)
        },
    );
    let cells = jobs
        .into_iter()
        .map(|(model, _, _)| model.to_owned())
        .zip(results)
        .collect();
    (cells, report)
}

/// Render the matrices, one table per model, attacks as rows and schemes
/// as columns. A cell that contradicts the paper's claim is marked with
/// `!(expected ...)`.
#[must_use]
pub fn render(cells: &[(String, CellResult)]) -> String {
    let mut out = String::from(
        "Scheme x attack detection matrix (paper SIII threat model, SIV-C detection)\n",
    );
    let mut current = "";
    for (model, cell) in cells {
        if model != current {
            current = model;
            out += &format!("-- {model} --\n");
            out += &format!("{:22}", "attack");
            for scheme in Scheme::ALL {
                out += &format!(" {:>14}", scheme.label());
            }
            out.push('\n');
        }
        if cell.scheme == Scheme::ALL[0] {
            out += &format!("{:22}", cell.attack.label());
        }
        if cell.matches() {
            out += &format!(" {:>14}", cell.outcome.label());
        } else {
            out += &format!(" {:>14}", format!("!{}", cell.outcome.label()));
        }
        if cell.scheme == *Scheme::ALL.last().expect("non-empty") {
            out.push('\n');
        }
    }
    let bad: Vec<&(String, CellResult)> = cells.iter().filter(|(_, c)| !c.matches()).collect();
    if bad.is_empty() {
        out += &format!(
            "all {} cells match the paper's claims: versioned MACs detect every \
             attack, encryption-only detects none\n",
            cells.len()
        );
    } else {
        out += &format!("{} cell(s) CONTRADICT the paper's claims:\n", bad.len());
        for (model, c) in bad {
            out += &format!(
                "  {model} / {} / {}: got {}, expected {}\n",
                c.scheme, c.attack, c.outcome, c.expected
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_identical_across_thread_counts() {
        // Same contract as the figure sweep: placement and injection are
        // seeded from what is attacked, never from which worker ran it.
        let (one, _) = matrix_with_threads(1, &["df"]);
        let (two, _) = matrix_with_threads(2, &["df"]);
        assert_eq!(one, two);
        assert_eq!(render(&one), render(&two));
    }

    #[test]
    fn rendered_matrix_flags_nothing_on_df() {
        let (cells, _) = matrix_with_threads(2, &["df"]);
        let rendered = render(&cells);
        assert!(rendered.contains("all 28 cells match"), "{rendered}");
        assert!(!rendered.contains('!'), "{rendered}");
    }
}
