//! The dynamic-dataflow crossover report: amortized cycles per step for
//! autoregressive decode and training churn, per scheme, over sequence
//! length × version limit.
//!
//! Two deterministic job families fan out over the worker pool:
//!
//! * **Replay cells** — one per workload × sequence length × scheme: the
//!   step loop lowered once ([`tnpu_npu::trace::TileTrace::build_steps`])
//!   and replayed through the scheme's engine, so per-step version-
//!   metadata traffic (tree-less version-table accesses, counter-tree
//!   walks) is charged exactly as the static figures charge it. Decode
//!   steps grow their KV operands with the position in the sequence.
//! * **Lifecycle cells** — one per workload × sequence length × version
//!   limit: a *functional* tree-less [`SteppedSession`] driven through
//!   the whole sequence with recovery enabled, measuring how often the
//!   version limit forces a re-encryption epoch sweep and what the
//!   sweeps cost. Only the tree-less scheme has software versions to
//!   exhaust; the other schemes' amortized cost is replay-only.
//!
//! The rendered crossover table divides both through by the step count:
//! where `tree-less replay + amortized sweeps` exceeds the counter
//! tree's replay, the tree-less scheme has lost its static-dataflow
//! advantage — the `<<` marker. Everything is seeded from workload
//! labels, so stdout is byte-identical at any thread count.

use crate::sweep as pool;
use crate::PoolReport;
use tnpu_core::recovery::RetryPolicy;
use tnpu_core::stepped::SteppedSession;
use tnpu_core::Scheme;
use tnpu_crypto::Key128;
use tnpu_memprot::{build_engine, ProtectionConfig};
use tnpu_models::defs::dynamic;
use tnpu_models::registry;
use tnpu_models::Model;
use tnpu_npu::{multi, NpuConfig};
use tnpu_sim::rng::SplitMix64;

/// Pool-report name for the replay family.
pub const REPLAY_EXPERIMENT: &str = "decode-replay";

/// Pool-report name for the lifecycle family.
pub const LIFECYCLE_EXPERIMENT: &str = "decode-lifecycle";

/// Decode sequence lengths (full / `--quick`).
pub const FULL_DECODE_STEPS: [u64; 3] = [32, 64, 128];
/// Reduced decode lengths for `--quick` (and the frozen golden). The
/// longer one crosses a KV tile boundary, so the version table *grows*
/// mid-sequence.
pub const QUICK_DECODE_STEPS: [u64; 2] = [16, 40];

/// Training iteration counts (full / `--quick`).
pub const FULL_TRAIN_STEPS: [u64; 2] = [16, 32];
/// Reduced iteration counts for `--quick`.
pub const QUICK_TRAIN_STEPS: [u64; 2] = [4, 8];

/// Decode version limits (full / `--quick`). A decode step bumps its
/// frontier cache tile from a base that accumulates over the sequence
/// (the expand-grow no-reuse rule), so decode crosses a given limit much
/// faster than train and gets a higher axis. A limit of 1 leaves the
/// epoch sweep no headroom (see [`SteppedSession::set_version_limit`]),
/// so every axis starts above it.
pub const FULL_DECODE_LIMITS: [u64; 3] = [12, 32, 64];
/// Reduced decode limit set for `--quick`.
pub const QUICK_DECODE_LIMITS: [u64; 2] = [12, 64];

/// Train version limits (full / `--quick`): weights bump once per
/// iteration, so small limits are where the churn bites.
pub const FULL_TRAIN_LIMITS: [u64; 3] = [2, 4, 16];
/// Reduced train limit set for `--quick`.
pub const QUICK_TRAIN_LIMITS: [u64; 2] = [4, 16];

/// One workload × sequence length × scheme replay measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayCell {
    /// Registry name of the dynamic workload (`decode` / `train`).
    pub workload: String,
    /// Steps in the sequence (decoded tokens / training iterations).
    pub steps: u64,
    /// The protection scheme the trace replayed through.
    pub scheme: Scheme,
    /// Total cycles for the whole step loop.
    pub cycles: u64,
}

/// One workload × sequence length × version limit lifecycle measurement
/// (functional, tree-less).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifecycleCell {
    /// Registry name of the dynamic workload.
    pub workload: String,
    /// Steps driven through the functional session.
    pub steps: u64,
    /// The version-exhaustion threshold.
    pub limit: u64,
    /// Re-encryption epoch sweeps the limit forced.
    pub sweeps: u64,
    /// Engine-charged cycles those sweeps cost.
    pub sweep_cycles: u64,
    /// Live version-table bytes at the end of the sequence (per-tile
    /// entries for every expanded cache — what a preemption must spill).
    pub vt_bytes: u64,
    /// Cycles one preemption (spill + restore of the live table) costs
    /// at the end of the sequence.
    pub preempt_cycles: u64,
}

/// The dynamic workloads with their sequence-length and version-limit
/// axes.
#[must_use]
pub fn workloads(quick: bool) -> Vec<(&'static str, Vec<u64>, Vec<u64>)> {
    if quick {
        vec![
            (
                "decode",
                QUICK_DECODE_STEPS.to_vec(),
                QUICK_DECODE_LIMITS.to_vec(),
            ),
            (
                "train",
                QUICK_TRAIN_STEPS.to_vec(),
                QUICK_TRAIN_LIMITS.to_vec(),
            ),
        ]
    } else {
        vec![
            (
                "decode",
                FULL_DECODE_STEPS.to_vec(),
                FULL_DECODE_LIMITS.to_vec(),
            ),
            (
                "train",
                FULL_TRAIN_STEPS.to_vec(),
                FULL_TRAIN_LIMITS.to_vec(),
            ),
        ]
    }
}

/// One model per step: decode grows its KV operands with the position in
/// the sequence; train repeats the identical iteration.
fn step_models(workload: &str, steps: u64) -> Vec<Model> {
    match workload {
        "decode" => (1..=steps).map(dynamic::decode_step).collect(),
        _ => std::iter::repeat_n(dynamic::train(), steps as usize).collect(),
    }
}

fn replay_cell(workload: &str, steps: u64, scheme: Scheme) -> ReplayCell {
    let models = step_models(workload, steps);
    let refs: Vec<&Model> = models.iter().collect();
    let engine = build_engine(scheme, &ProtectionConfig::paper_default());
    // Seeded from what runs, never from scheme or worker identity: the
    // same stepped trace is replayed through every engine.
    let seed = SplitMix64::seed_from_labels(&[REPLAY_EXPERIMENT, workload, &format!("s{steps}")]);
    let reports = multi::run_steps_seeded(&refs, &NpuConfig::small_npu(), engine, 1, seed);
    ReplayCell {
        workload: workload.to_owned(),
        steps,
        scheme,
        cycles: reports[0].total.0,
    }
}

fn lifecycle_cell(workload: &str, steps: u64, limit: u64) -> LifecycleCell {
    let model = registry::model(workload).expect("registered dynamic model");
    let seed = SplitMix64::seed_from_labels(&[
        LIFECYCLE_EXPERIMENT,
        workload,
        &format!("s{steps}"),
        &format!("l{limit}"),
    ]);
    let mut session = SteppedSession::new(&model, Key128::derive(b"decode-bench"), seed);
    session.enable_recovery(
        RetryPolicy::default(),
        build_engine(Scheme::Treeless, &ProtectionConfig::paper_default()),
    );
    session.set_version_limit(limit);
    for _ in 0..steps {
        session.step().expect("clean dynamic step");
    }
    let stats = session.recovery_stats().expect("recovery enabled");
    LifecycleCell {
        workload: workload.to_owned(),
        steps,
        limit,
        sweeps: stats.sweeps,
        sweep_cycles: stats.sweep_cycles,
        vt_bytes: session.version_table().storage_bytes(),
        preempt_cycles: session.preemption_cycles(&NpuConfig::small_npu()),
    }
}

/// Run the crossover grid on the session pool.
#[must_use]
pub fn crossover(quick: bool) -> (Vec<ReplayCell>, Vec<LifecycleCell>) {
    let (cells, reports) = crossover_with_threads(pool::threads(), quick);
    for report in reports {
        pool::record(report);
    }
    cells
}

/// [`crossover`] at an explicit pool width, returning the timing reports
/// instead of recording them — the determinism-test hook.
#[must_use]
pub fn crossover_with_threads(
    threads: usize,
    quick: bool,
) -> ((Vec<ReplayCell>, Vec<LifecycleCell>), Vec<PoolReport>) {
    let axes = workloads(quick);
    let mut replay_jobs = Vec::new();
    let mut lifecycle_jobs = Vec::new();
    for (workload, steps_axis, limits_axis) in &axes {
        for &steps in steps_axis {
            for scheme in Scheme::ALL {
                replay_jobs.push((*workload, steps, scheme));
            }
            for &limit in limits_axis {
                lifecycle_jobs.push((*workload, steps, limit));
            }
        }
    }
    let (replays, r1) = pool::run_ordered_with(
        threads,
        REPLAY_EXPERIMENT,
        &replay_jobs,
        |(w, s, scheme)| format!("{w}/s{s}/{scheme}"),
        |(w, s, scheme)| replay_cell(w, *s, *scheme),
    );
    let (lifecycles, r2) = pool::run_ordered_with(
        threads,
        LIFECYCLE_EXPERIMENT,
        &lifecycle_jobs,
        |(w, s, limit)| format!("{w}/s{s}/l{limit}"),
        |(w, s, limit)| lifecycle_cell(w, *s, *limit),
    );
    ((replays, lifecycles), vec![r1, r2])
}

/// Render the crossover figure: one block per workload, one row per
/// sequence length × version limit, amortized kcycles/step per scheme.
/// `<<` marks cells where tree-less (replay + amortized sweeps) falls
/// behind the counter tree.
#[must_use]
pub fn render_crossover(replays: &[ReplayCell], lifecycles: &[LifecycleCell]) -> String {
    let replay_cycles = |w: &str, s: u64, scheme: Scheme| {
        replays
            .iter()
            .find(|r| r.workload == w && r.steps == s && r.scheme == scheme)
            .expect("replay cell for every lifecycle row")
            .cycles
    };
    let kc = |cycles: f64| format!("{:.1}", cycles / 1000.0);
    let mut out = String::from(
        "Dynamic-dataflow crossover: amortized cycles/step (kcycles)\n\
         (step replay charges per-step version-metadata traffic through each\n\
         scheme's engine; tree-less additionally pays its measured re-encryption\n\
         epoch sweeps, amortized over the sequence; '<<' marks cells where\n\
         tree-less falls behind the counter tree)\n",
    );
    let mut current = "";
    for cell in lifecycles {
        if cell.workload != current {
            current = &cell.workload;
            out += &format!("-- {current} --\n");
            out += &format!(
                "{:>5} {:>5} {:>6} {:>9} {:>8} {:>10}",
                "steps", "limit", "sweeps", "steps/swp", "vt-bytes", "preempt-kc"
            );
            for scheme in Scheme::ALL {
                out += &format!(" {:>13}", scheme.label());
            }
            out += "\n";
        }
        let steps = cell.steps as f64;
        let per_sweep = if cell.sweeps == 0 {
            "-".to_owned()
        } else {
            format!("{:.1}", steps / cell.sweeps as f64)
        };
        out += &format!(
            "{:>5} {:>5} {:>6} {:>9} {:>8} {:>10}",
            cell.steps,
            cell.limit,
            cell.sweeps,
            per_sweep,
            cell.vt_bytes,
            kc(cell.preempt_cycles as f64),
        );
        let tree = replay_cycles(&cell.workload, cell.steps, Scheme::TreeBased) as f64 / steps;
        for scheme in Scheme::ALL {
            let mut amortized = replay_cycles(&cell.workload, cell.steps, scheme) as f64 / steps;
            let mut marker = "";
            if scheme == Scheme::Treeless {
                amortized += cell.sweep_cycles as f64 / steps;
                if amortized > tree {
                    marker = " <<";
                }
            }
            out += &format!(" {:>13}", format!("{}{}", kc(amortized), marker));
        }
        out += "\n";
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test, one grid computation per thread count: the quick grid's
    /// functional lifecycles are the expensive part, so determinism, the
    /// shape invariants, and the render checks all share the two runs.
    #[test]
    fn quick_crossover_grid_holds_its_invariants_at_any_thread_count() {
        let (one, _) = crossover_with_threads(1, true);
        let (two, _) = crossover_with_threads(2, true);
        assert_eq!(one, two, "grid must not depend on the pool width");
        let (replays, lifecycles) = one;
        assert_eq!(
            render_crossover(&replays, &lifecycles),
            render_crossover(&two.0, &two.1)
        );

        // 2 workloads x 2 lengths x 4 schemes / x 2 limits.
        assert_eq!(replays.len(), 16);
        assert_eq!(lifecycles.len(), 8);
        for pair in lifecycles.chunks(2) {
            let (tight, loose) = (&pair[0], &pair[1]);
            assert_eq!(tight.steps, loose.steps);
            assert!(tight.limit < loose.limit);
            assert!(
                tight.sweeps >= loose.sweeps,
                "{}: limit {} swept {} < limit {} swept {}",
                tight.workload,
                tight.limit,
                tight.sweeps,
                loose.limit,
                loose.sweeps
            );
        }
        // Both workloads must actually reach the sweep path somewhere in
        // the quick grid — otherwise the crossover has nothing to show.
        for workload in ["decode", "train"] {
            assert!(
                lifecycles
                    .iter()
                    .any(|c| c.workload == workload && c.sweeps > 0),
                "{workload}: no cell swept"
            );
        }
        for r in &replays {
            assert!(r.cycles > 0);
            if r.scheme != Scheme::Unsecure {
                let unsec = replays
                    .iter()
                    .find(|u| {
                        u.workload == r.workload
                            && u.steps == r.steps
                            && u.scheme == Scheme::Unsecure
                    })
                    .expect("unsecure baseline");
                assert!(
                    r.cycles > unsec.cycles,
                    "{}/{}: protection must cost cycles",
                    r.workload,
                    r.scheme
                );
            }
        }
        // Decode KV growth: the live version table at the end of a longer
        // sequence is strictly bigger (the 40-step run crossed a tile
        // boundary), and so is the preemption bill.
        let decode: Vec<&LifecycleCell> = lifecycles
            .iter()
            .filter(|c| c.workload == "decode")
            .collect();
        let short = decode.first().expect("decode rows");
        let long = decode.last().expect("decode rows");
        assert!(long.steps > short.steps);
        assert!(long.vt_bytes > short.vt_bytes, "KV growth must show up");
        assert!(long.preempt_cycles > short.preempt_cycles);

        let rendered = render_crossover(&replays, &lifecycles);
        assert!(rendered.contains("-- decode --"), "{rendered}");
        assert!(rendered.contains("-- train --"), "{rendered}");
        assert!(rendered.contains("steps/swp"), "{rendered}");
    }
}
