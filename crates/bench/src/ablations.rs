//! Ablation studies for the design choices DESIGN.md calls out — not
//! figures from the paper, but direct tests of its argument:
//!
//! * **Metadata-cache sensitivity** — the paper's pitch is that TNPU "can
//!   eliminate counter access and validation overheads ... which
//!   significantly reduces the burden on the limited metadata caches".
//!   Sweeping the cache sizes shows the baseline's overhead depends on
//!   them while TNPU's barely moves.
//! * **Tree arity** — SGX's 8-ary tree vs the SC-64 setup the paper
//!   evaluates: lower arity means deeper walks and more tree traffic.
//! * **Version granularity** — the tile size used for version expansion
//!   trades peak version-table storage against per-`mvout` table pressure.

use crate::traced;
use tnpu_core::RunSpec;
use tnpu_memprot::{ProtectionConfig, SchemeKind};
use tnpu_npu::{NpuConfig, RunReport};

/// Execute a list of cells on the session worker pool — batched by trace
/// group (see [`crate::traced`]) — recording its timings for the
/// end-of-run summary. Results keep input order.
fn run_cells(experiment: &str, specs: &[RunSpec]) -> Vec<RunReport> {
    traced::run_specs(experiment, specs)
}

/// Overheads of `variants` (each a scheme + protection config) on the
/// small NPU, normalized to one shared unsecure baseline run — all cells
/// of one pool run, in variant order.
fn overheads(
    experiment: &str,
    model: &str,
    variants: &[(SchemeKind, ProtectionConfig)],
) -> Vec<f64> {
    let npu = NpuConfig::small_npu();
    let mut specs = vec![RunSpec::new(
        experiment,
        model,
        &npu,
        SchemeKind::Unsecure,
        1,
    )];
    specs.extend(variants.iter().map(|(scheme, cfg)| {
        RunSpec::new(experiment, model, &npu, *scheme, 1).with_protection(cfg.clone())
    }));
    let results = run_cells(experiment, &specs);
    let base = results[0].total.as_f64();
    results[1..]
        .iter()
        .map(|r| r.total.as_f64() / base)
        .collect()
}

/// Single-variant overhead — the unit tests' probe.
#[cfg(test)]
fn overhead(model: &str, scheme: SchemeKind, protection: &ProtectionConfig) -> f64 {
    overheads("ablation", model, &[(scheme, protection.clone())])[0]
}

/// Metadata-cache size sweep (scale × the paper's 4/4/8 KB setup).
#[must_use]
pub fn cache_sensitivity(model: &str) -> String {
    let scales = [1usize, 2, 4, 8];
    let variants: Vec<(SchemeKind, ProtectionConfig)> = scales
        .iter()
        .flat_map(|&scale| {
            let cfg = ProtectionConfig::paper_default().with_cache_scale(scale);
            [
                (SchemeKind::TreeBased, cfg.clone()),
                (SchemeKind::Treeless, cfg),
            ]
        })
        .collect();
    let oh = overheads("ablation-cache", model, &variants);
    let mut out = format!("Ablation: metadata-cache sensitivity ({model}, small NPU)\n");
    out += "scale   counter/hash/mac      baseline    tnpu\n";
    for (i, &scale) in scales.iter().enumerate() {
        let cfg = &variants[2 * i].1;
        let (tree, tnpu) = (oh[2 * i], oh[2 * i + 1]);
        out += &format!(
            "{scale}x      {:>2}/{:>2}/{:>2} KB          {tree:5.3}      {tnpu:5.3}\n",
            cfg.counter_cache.capacity >> 10,
            cfg.hash_cache.capacity >> 10,
            cfg.mac_cache.capacity >> 10,
        );
    }
    out += "expected: the baseline improves with bigger caches; tnpu is flat\n";
    out
}

/// Tree-arity sweep for the baseline (8-ary SGX-style vs 64-ary SC-64).
#[must_use]
pub fn tree_arity(model: &str) -> String {
    let arities = [8u64, 16, 64];
    let variants: Vec<(SchemeKind, ProtectionConfig)> = arities
        .iter()
        .map(|&arity| {
            let mut cfg = ProtectionConfig::paper_default();
            cfg.tree_arity = arity;
            (SchemeKind::TreeBased, cfg)
        })
        .collect();
    let oh = overheads("ablation-arity", model, &variants);
    let mut out = format!("Ablation: counter-tree arity ({model}, small NPU, baseline)\n");
    for (&arity, tree) in arities.iter().zip(oh) {
        out += &format!("arity {arity:>2}: baseline overhead {tree:5.3}\n");
    }
    out += "expected: lower arity -> deeper tree -> costlier walks\n";
    out
}

/// Tree organization: the paper's uniform SC-64 tree vs a VAULT-style
/// variable-arity tree (paper related-work ref 18).
#[must_use]
pub fn tree_organization(model: &str) -> String {
    let uniform = ProtectionConfig::paper_default();
    let mut vault = ProtectionConfig::paper_default();
    vault.vault_tree = true;
    let oh = overheads(
        "ablation-organization",
        model,
        &[
            (SchemeKind::TreeBased, uniform),
            (SchemeKind::TreeBased, vault),
        ],
    );
    let mut out = format!(
        "Ablation: tree organization ({model}, small NPU, baseline)
"
    );
    out += &format!(
        "uniform SC-64: {:5.3}
VAULT-style:   {:5.3}
",
        oh[0], oh[1],
    );
    out += "both remain above TNPU: the tree itself is the bottleneck
";
    out
}

/// The integrity price: encrypt-only (scalable-SGX-like) vs TNPU.
#[must_use]
pub fn integrity_price(models: &[&str]) -> String {
    const SCHEMES: [SchemeKind; 3] = [
        SchemeKind::Unsecure,
        SchemeKind::EncryptOnly,
        SchemeKind::Treeless,
    ];
    let npu = NpuConfig::small_npu();
    let specs: Vec<RunSpec> = models
        .iter()
        .flat_map(|&model| {
            SCHEMES.map(|scheme| RunSpec::new("ablation-integrity", model, &npu, scheme, 1))
        })
        .collect();
    let results = run_cells("ablation-integrity", &specs);
    let mut out = String::from("Ablation: the price of integrity (small NPU)\n");
    out += "model   encrypt-only   tnpu    delta (= MAC + version cost)\n";
    for (i, &model) in models.iter().enumerate() {
        let base = results[SCHEMES.len() * i].total.as_f64();
        let enc = results[SCHEMES.len() * i + 1].total.as_f64() / base;
        let tnpu = results[SCHEMES.len() * i + 2].total.as_f64() / base;
        out += &format!(
            "{model:5}   {enc:5.3}         {tnpu:5.3}   +{:4.1} %\n",
            (tnpu - enc) * 100.0
        );
    }
    out += "scalable SGX gives up integrity entirely; TNPU buys it for the MAC alone\n";
    out
}

/// Split-counter granularity: how many data blocks one 64 B counter block
/// covers (SC-32/64/128). Coarser counters mean fewer counter fetches but
/// (in real designs) earlier minor-counter overflow; the paper evaluates
/// SC-64.
#[must_use]
pub fn counter_granularity(model: &str) -> String {
    let granularities = [32u64, 64, 128];
    let variants: Vec<(SchemeKind, ProtectionConfig)> = granularities
        .iter()
        .map(|&cpb| {
            let mut cfg = ProtectionConfig::paper_default();
            cfg.counters_per_block = cpb;
            (SchemeKind::TreeBased, cfg)
        })
        .collect();
    let oh = overheads("ablation-granularity", model, &variants);
    let mut out = format!(
        "Ablation: split-counter granularity ({model}, small NPU, baseline)
"
    );
    for (&cpb, tree) in granularities.iter().zip(oh) {
        out += &format!(
            "SC-{cpb:<4} (one counter block per {:>3} KB): {tree:5.3}
",
            cpb * 64 / 1024
        );
    }
    out += "expected: coarser counters amortize fetches over more data
";
    out
}

/// Extended scalability (beyond the paper's 3 NPUs): how far does the
/// tree-less advantage keep growing as more NPUs share the engine?
#[must_use]
pub fn extended_scaling(models: &[&str], max_npus: usize) -> String {
    const SCHEMES: [SchemeKind; 3] = [
        SchemeKind::Unsecure,
        SchemeKind::TreeBased,
        SchemeKind::Treeless,
    ];
    let npu = NpuConfig::small_npu();
    let mut specs = Vec::new();
    for count in 1..=max_npus {
        for &model in models {
            for scheme in SCHEMES {
                specs.push(RunSpec::new("ext-scaling", model, &npu, scheme, count));
            }
        }
    }
    let results = run_cells("ext-scaling", &specs);
    let mut out =
        format!("Extension: scalability to {max_npus} NPUs (small NPU, avg of {models:?})\n");
    out += "NPUs   baseline   tnpu   improvement\n";
    let mut cells = results.iter();
    for count in 1..=max_npus {
        let mut tree_sum = 0.0;
        let mut tnpu_sum = 0.0;
        for _ in models {
            let u = cells.next().expect("unsecure cell").total.as_f64();
            tree_sum += cells.next().expect("baseline cell").total.as_f64() / u;
            tnpu_sum += cells.next().expect("tnpu cell").total.as_f64() / u;
        }
        let tree = tree_sum / models.len() as f64;
        let tnpu = tnpu_sum / models.len() as f64;
        out += &format!(
            "{count:>4}   {tree:8.3}   {tnpu:5.3}   {:6.1} %\n",
            (tree - tnpu) / tree * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_benefits_from_bigger_caches_tnpu_does_not() {
        let small = ProtectionConfig::paper_default();
        let big = ProtectionConfig::paper_default().with_cache_scale(8);
        let tree_small = overhead("ncf", SchemeKind::TreeBased, &small);
        let tree_big = overhead("ncf", SchemeKind::TreeBased, &big);
        let tnpu_small = overhead("ncf", SchemeKind::Treeless, &small);
        let tnpu_big = overhead("ncf", SchemeKind::Treeless, &big);
        assert!(
            tree_big < tree_small,
            "baseline must improve with caches: {tree_small:.3} -> {tree_big:.3}"
        );
        let tnpu_delta = (tnpu_small - tnpu_big).abs();
        let tree_delta = tree_small - tree_big;
        assert!(
            tnpu_delta < tree_delta,
            "tnpu ({tnpu_delta:.4}) must be less cache-sensitive than the baseline ({tree_delta:.4})"
        );
    }

    #[test]
    fn lower_arity_is_not_cheaper() {
        let mut sgx_like = ProtectionConfig::paper_default();
        sgx_like.tree_arity = 8;
        let deep = overhead("sent", SchemeKind::TreeBased, &sgx_like);
        let shallow = overhead(
            "sent",
            SchemeKind::TreeBased,
            &ProtectionConfig::paper_default(),
        );
        assert!(deep >= shallow, "8-ary {deep:.3} vs 64-ary {shallow:.3}");
    }

    #[test]
    fn coarser_counters_cost_less() {
        let mut fine = ProtectionConfig::paper_default();
        fine.counters_per_block = 32;
        let coarse = ProtectionConfig::paper_default(); // SC-64
        let fine_oh = overhead("ncf", SchemeKind::TreeBased, &fine);
        let coarse_oh = overhead("ncf", SchemeKind::TreeBased, &coarse);
        assert!(
            fine_oh >= coarse_oh,
            "SC-32 {fine_oh:.3} vs SC-64 {coarse_oh:.3}"
        );
    }

    #[test]
    fn renderers_produce_tables() {
        let s = cache_sensitivity("df");
        assert!(s.contains("1x") && s.contains("8x"));
        let a = tree_arity("df");
        assert!(a.contains("arity  8") || a.contains("arity 8"));
        let p = integrity_price(&["df"]);
        assert!(p.contains("df"));
    }
}
