//! The environmental-fault resilience report: scheme × fault-type × rate
//! matrices computed on the deterministic worker pool.
//!
//! Where [`crate::attacks`] injects *adversarial* tampering (persistent,
//! targeted, worst-case), this report injects *environmental* faults —
//! transient bit flips that are gone on the next fetch, stuck-at defects,
//! dropped and stalled DMA transfers, crypto-engine soft errors
//! ([`tnpu_memprot::faults`]) — against full functional inferences with
//! the recovery layer enabled (bounded retry + re-encryption epoch
//! sweeps, every attempt charged cycles). Each cell drives several
//! inferences under a seeded fault process and classifies the worst thing
//! that happened:
//!
//! * **Recovered** — every inference produced the fault-free reference
//!   output (retries and sweeps absorbed the faults, at a cycle cost).
//! * **Detected** — some inference was stopped by a verified read and the
//!   context was quarantined; nothing wrong was ever computed.
//! * **Corrupted** — some inference *completed* with a wrong output: the
//!   scheme let a fault through silently (what encryption-only and
//!   unprotected memory admit).
//! * **Aborted** — the run failed for a non-integrity reason (never
//!   expected; version exhaustion is consumed by epoch sweeps).
//!
//! Every cell lowers the version limit so the matrix also exercises the
//! epoch sweep on every scheme. Seeding follows the attack harness
//! discipline — labels of what is faulted, never wall clock or worker
//! identity — so stdout is byte-identical at any thread count.

use crate::sweep as pool;
use crate::PoolReport;
use tnpu_core::recovery::RetryPolicy;
use tnpu_core::secure_runner::{sweep_clearable, RunError, SecureRunner};
use tnpu_core::Scheme;
use tnpu_crypto::Key128;
use tnpu_memprot::faults::{FaultKind, FaultyMemory};
use tnpu_memprot::functional::{build_functional, UnsecureMemory};
use tnpu_memprot::{build_engine, ProtectionConfig};
use tnpu_models::{registry, Model};
use tnpu_npu::alloc::ModelLayout;
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Pool-report name for the fault matrix.
pub const FAULTS_EXPERIMENT: &str = "faults";

/// Default victim model (the smallest conv pipeline — every cell runs
/// [`PASSES`] full functional inferences, so small is the point).
pub const DEFAULT_MODELS: [&str; 1] = ["df"];

/// Fault periods swept per cell: a fault fires on average once every
/// `period` reads, so these are roughly one fault per few hundred blocks.
pub const DEFAULT_PERIODS: [u64; 2] = [101, 257];

/// Inferences driven per cell.
pub const PASSES: u64 = 5;

/// Pass count for the decode smoke gate
/// ([`matrix_with_threads_at`]) — enough for cross-inference version
/// churn without the full matrix's serial cost.
pub const QUICK_PASSES: u64 = 2;

/// Version-exhaustion limit per cell — low enough that every cell
/// consumes at least one re-encryption epoch sweep mid-matrix.
pub const VERSION_LIMIT: u64 = 3;

/// Worst thing a seeded fault process did to a protected context, in
/// severity order (`Recovered < Detected < Corrupted < Aborted`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resilience {
    /// Every inference converged to the fault-free reference output.
    Recovered,
    /// A verified read stopped an inference; the context quarantined.
    Detected,
    /// An inference completed with a wrong output — silent corruption.
    Corrupted,
    /// A non-integrity failure ended the run (never expected).
    Aborted,
}

impl Resilience {
    /// Fixed-width table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Resilience::Recovered => "recovered",
            Resilience::Detected => "detected",
            Resilience::Corrupted => "corrupted",
            Resilience::Aborted => "aborted",
        }
    }
}

impl std::fmt::Display for Resilience {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One cell of the scheme × fault × rate matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCell {
    /// Model driven.
    pub model: String,
    /// Scheme under fault injection.
    pub scheme: Scheme,
    /// Fault process injected.
    pub kind: FaultKind,
    /// Average reads between faults.
    pub period: u64,
    /// Worst observed classification across the cell's passes.
    pub outcome: Resilience,
    /// What the fault model predicts for this scheme.
    pub expected: Resilience,
    /// Faults the injector actually delivered.
    pub injected: u64,
    /// Re-fetch attempts the recovery layer issued.
    pub retries: u64,
    /// Reads that failed at least once and then verified on a retry.
    pub recovered_reads: u64,
    /// Re-encryption epoch sweeps completed.
    pub sweeps: u64,
    /// Cycles charged to recovery (retries + sweeps).
    pub recovery_cycles: u64,
}

impl FaultCell {
    /// Whether the observed classification matches the fault model.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.outcome == self.expected
    }
}

/// The fault model's claim for one cell:
///
/// * Integrity-protected schemes (tnpu, baseline) **recover** every
///   transient fault — a re-fetch re-verifies — and **detect** every
///   persistent one (a stuck-at bit keeps breaking the MAC; retries are
///   forbidden from laundering it into a recovery).
/// * Encryption-only memory has no integrity check: only a stalled
///   transfer (which corrupts nothing) is survivable; every data-touching
///   fault silently **corrupts** the computation.
/// * Unprotected memory additionally shrugs off crypto soft errors (it
///   has no crypto engine to glitch), but every bit that lands wrong in
///   plaintext **corrupts** the output.
#[must_use]
pub fn expected_resilience(scheme: Scheme, kind: FaultKind) -> Resilience {
    match scheme {
        Scheme::Treeless | Scheme::TreeBased => match kind {
            FaultKind::StuckAtBit => Resilience::Detected,
            _ => Resilience::Recovered,
        },
        Scheme::EncryptOnly => match kind {
            FaultKind::StalledTransfer => Resilience::Recovered,
            _ => Resilience::Corrupted,
        },
        Scheme::Unsecure => match kind {
            FaultKind::StalledTransfer | FaultKind::CryptoSoftError => Resilience::Recovered,
            _ => Resilience::Corrupted,
        },
    }
}

/// Scheme-independent input seed for pass `i` of `model` — the fault-free
/// reference and every victim drive identical computations.
fn pass_seed(model: &str, pass: u64) -> u64 {
    SplitMix64::seed_from_labels(&["faults", model, &format!("pass{pass}")])
}

/// The fault-free reference outputs, one per pass (computed on
/// unprotected memory: layer arithmetic digests plaintext, so the clean
/// output is scheme-independent — the attack harness asserts this).
fn reference_outputs(model: &Model, passes: u64) -> Vec<Vec<u8>> {
    let mut r = SecureRunner::with_memory(model, UnsecureMemory::new(), pass_seed(&model.name, 0));
    let mut refs = Vec::new();
    for pass in 0..passes {
        if pass > 0 {
            r.next_inference(pass_seed(&model.name, pass))
                .expect("unprotected pass starts");
        }
        r.run().expect("unprotected run cannot fail");
        refs.push(r.read_output().expect("unprotected read cannot fail"));
    }
    refs
}

fn classify_error(e: &RunError) -> Resilience {
    match e {
        // A verified read refused tampered data: detection doing its job.
        RunError::Integrity(_) => Resilience::Detected,
        // With recovery enabled, version exhaustion is consumed by epoch
        // sweeps inside the runner; any version error reaching the harness
        // is a runner bug, like the rest of these — surfaced as Aborted so
        // the matrix flags it instead of masking it.
        RunError::Version(_) | RunError::Cpu(_) | RunError::Finished | RunError::Poisoned => {
            Resilience::Aborted
        }
    }
}

/// Run one scheme × fault × rate cell: one inference per reference
/// ([`PASSES`] in the full matrix) under a seeded fault process,
/// classified against `references`, with quarantine-and-continue on
/// detection.
#[must_use]
pub fn run_cell(
    model: &Model,
    scheme: Scheme,
    kind: FaultKind,
    period: u64,
    references: &[Vec<u8>],
) -> FaultCell {
    let expected = expected_resilience(scheme, kind);
    let layout = ModelLayout::allocate(model, Addr(0));
    let data_blocks = layout.total_bytes.div_ceil(BLOCK_SIZE as u64).max(1);
    let inner = build_functional(scheme, Key128::derive(b"faults-victim"), data_blocks);
    let fault_seed = SplitMix64::seed_from_labels(&[
        "faults",
        &model.name,
        scheme.label(),
        kind.label(),
        &format!("p{period}"),
    ]);
    let mem = FaultyMemory::new(inner, kind, period, fault_seed);
    let mut runner = SecureRunner::with_memory(model, mem, pass_seed(&model.name, 0));
    runner.set_version_limit(VERSION_LIMIT);
    runner.enable_recovery(
        RetryPolicy::default(),
        build_engine(scheme, &ProtectionConfig::paper_default()),
    );

    let mut worst = Resilience::Recovered;
    for (pass, reference) in references.iter().enumerate() {
        if runner.is_poisoned() {
            // An earlier pass was quarantined and recovery could not lift
            // it (a persistent defect): the fault stays contained, which
            // is detection doing its job for every remaining pass.
            worst = worst.max(Resilience::Detected);
            continue;
        }
        let started = if pass > 0 {
            runner.next_inference(pass_seed(&model.name, pass as u64))
        } else {
            Ok(())
        };
        let mut clearable = false;
        let outcome = match started.and_then(|()| runner.run()) {
            Err(e) => {
                clearable = sweep_clearable(&e);
                classify_error(&e)
            }
            Ok(_) => match runner.read_output() {
                Ok(out) if out == *reference => Resilience::Recovered,
                Ok(_) => Resilience::Corrupted,
                Err(e) => {
                    clearable = sweep_clearable(&e);
                    classify_error(&e)
                }
            },
        };
        if outcome == Resilience::Detected && clearable {
            // Quarantine-and-continue: a sweep re-verifies and re-keys
            // everything intact. If the defect persists (stuck-at bit),
            // the sweep reports it and the quarantine holds. Failures a
            // sweep cannot clear (runner bugs) are left quarantined so
            // they surface instead of being masked by recovery.
            let _ = runner.recover();
        }
        worst = worst.max(outcome);
    }

    let stats = runner.recovery_stats().expect("recovery enabled");
    FaultCell {
        model: model.name.clone(),
        scheme,
        kind,
        period,
        outcome: worst,
        expected,
        injected: runner.memory().injected(),
        retries: stats.retries,
        recovered_reads: stats.recovered_reads,
        sweeps: stats.sweeps,
        recovery_cycles: stats.total_cycles(),
    }
}

/// Run the full matrix for `models` × [`DEFAULT_PERIODS`] on the session
/// pool.
#[must_use]
pub fn matrix(models: &[&str]) -> Vec<FaultCell> {
    let (cells, report) = matrix_with_threads(pool::threads(), models, &DEFAULT_PERIODS);
    pool::record(report);
    cells
}

/// [`matrix`] at an explicit pool width and period set, returning the
/// timing report instead of recording it — the determinism-test hook.
#[must_use]
pub fn matrix_with_threads(
    threads: usize,
    models: &[&str],
    periods: &[u64],
) -> (Vec<FaultCell>, PoolReport) {
    matrix_with_threads_at(threads, models, periods, PASSES)
}

/// [`matrix_with_threads`] at an explicit pass count. The decode smoke
/// gate uses [`QUICK_PASSES`]: the dynamic models stream megabytes of
/// (software-)crypto per inference, so the full five-pass matrix is a
/// multi-minute serial run — two passes still exercise the
/// cross-inference churn and quarantine-and-continue paths.
#[must_use]
pub fn matrix_with_threads_at(
    threads: usize,
    models: &[&str],
    periods: &[u64],
    passes: u64,
) -> (Vec<FaultCell>, PoolReport) {
    let mut jobs = Vec::new();
    for &model in models {
        // Period-major, fault-major: the renderer emits one table per
        // (model, period) with one row per fault and one scheme column.
        for &period in periods {
            for kind in FaultKind::ALL {
                for scheme in Scheme::ALL {
                    jobs.push((model, period, kind, scheme));
                }
            }
        }
    }
    // The reference outputs are scheme- and fault-independent: compute
    // them once per model instead of once per cell.
    let references: std::collections::BTreeMap<&str, (Model, Vec<Vec<u8>>)> = models
        .iter()
        .map(|&name| {
            let m = registry::model(name).expect("registered model");
            let refs = reference_outputs(&m, passes);
            (name, (m, refs))
        })
        .collect();
    pool::run_ordered_with(
        threads,
        FAULTS_EXPERIMENT,
        &jobs,
        |(model, period, kind, scheme)| format!("{model}/p{period}/{kind}/{scheme}"),
        |(model, period, kind, scheme)| {
            let (m, refs) = &references[*model];
            run_cell(m, *scheme, *kind, *period, refs)
        },
    )
}

/// Render the matrices — one table per model × period, faults as rows,
/// schemes as columns, mismatches marked `!` — followed by deterministic
/// per-scheme recovery totals (injections, retries, sweeps, cycles).
#[must_use]
pub fn render(cells: &[FaultCell]) -> String {
    let mut out = String::from(
        "Scheme x environmental-fault resilience matrix (seeded injectors, bounded retry + epoch sweeps)\n",
    );
    let mut current = (String::new(), 0u64);
    for cell in cells {
        let group = (cell.model.clone(), cell.period);
        if group != current {
            current = group;
            out += &format!(
                "-- {} / fault every ~{} reads --\n",
                cell.model, cell.period
            );
            out += &format!("{:22}", "fault");
            for scheme in Scheme::ALL {
                out += &format!(" {:>14}", scheme.label());
            }
            out.push('\n');
        }
        if cell.scheme == Scheme::ALL[0] {
            out += &format!("{:22}", cell.kind.label());
        }
        if cell.matches() {
            out += &format!(" {:>14}", cell.outcome.label());
        } else {
            out += &format!(" {:>14}", format!("!{}", cell.outcome.label()));
        }
        if cell.scheme == *Scheme::ALL.last().expect("non-empty") {
            out.push('\n');
        }
    }
    let bad: Vec<&FaultCell> = cells.iter().filter(|c| !c.matches()).collect();
    if bad.is_empty() {
        out += &format!(
            "all {} cells match the fault model: protected schemes recover every \
             transient fault and detect every persistent one; unprotected memory \
             silently corrupts\n",
            cells.len()
        );
    } else {
        out += &format!("{} cell(s) CONTRADICT the fault model:\n", bad.len());
        for c in bad {
            out += &format!(
                "  {} / p{} / {} / {}: got {}, expected {}\n",
                c.model, c.period, c.kind, c.scheme, c.outcome, c.expected
            );
        }
    }
    out += "recovery activity (deterministic totals per scheme):\n";
    out += &format!(
        "{:14} {:>10} {:>10} {:>10} {:>8} {:>16}\n",
        "scheme", "injected", "retries", "recovered", "sweeps", "recovery-cycles"
    );
    for scheme in Scheme::ALL {
        let (mut injected, mut retries, mut recovered, mut sweeps, mut cycles) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for c in cells.iter().filter(|c| c.scheme == scheme) {
            injected += c.injected;
            retries += c.retries;
            recovered += c.recovered_reads;
            sweeps += c.sweeps;
            cycles += c.recovery_cycles;
        }
        out += &format!(
            "{:14} {:>10} {:>10} {:>10} {:>8} {:>16}\n",
            scheme.label(),
            injected,
            retries,
            recovered,
            sweeps,
            cycles
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_identical_across_thread_counts() {
        // Same contract as the attack matrix: fault processes are seeded
        // from what is faulted, never from which worker ran it.
        let (one, _) = matrix_with_threads(1, &["df"], &[101]);
        let (two, _) = matrix_with_threads(4, &["df"], &[101]);
        assert_eq!(one, two);
        assert_eq!(render(&one), render(&two));
    }

    #[test]
    fn df_matrix_matches_the_fault_model() {
        let (cells, _) = matrix_with_threads(4, &["df"], &[101]);
        for cell in &cells {
            assert_eq!(
                cell.outcome, cell.expected,
                "{} × {} (p{}): got {}, fault model claims {}",
                cell.scheme, cell.kind, cell.period, cell.outcome, cell.expected
            );
        }
        let rendered = render(&cells);
        assert!(rendered.contains("all 24 cells match"), "{rendered}");
        assert!(!rendered.contains('!'), "{rendered}");
        // The lowered version limit makes every surviving cell sweep at
        // least once. Stuck-at cells on protected schemes are quarantined
        // before exhaustion and their recovery sweep correctly aborts in
        // the capture phase, so they are exempt.
        assert!(
            cells
                .iter()
                .filter(|c| c.expected == Resilience::Recovered)
                .all(|c| c.sweeps >= 1),
            "every recovering cell sweeps"
        );
        // Protected schemes actually paid for their recoveries.
        let tnpu_transients = cells
            .iter()
            .filter(|c| c.scheme == Scheme::Treeless && c.kind.is_transient());
        for c in tnpu_transients {
            assert!(c.injected > 0, "{}: injector never fired", c.kind);
            assert!(
                c.kind == FaultKind::CryptoSoftError || c.retries > 0 || c.injected == 0,
                "{}: faults without retries",
                c.kind
            );
            assert!(c.recovery_cycles > 0, "{}: recovery was free", c.kind);
        }
    }

    #[test]
    fn expected_table_has_no_aborted_cells() {
        for scheme in Scheme::ALL {
            for kind in FaultKind::ALL {
                assert_ne!(
                    expected_resilience(scheme, kind),
                    Resilience::Aborted,
                    "{scheme} × {kind}"
                );
            }
        }
    }

    #[test]
    fn severity_order_is_meaningful() {
        assert!(Resilience::Recovered < Resilience::Detected);
        assert!(Resilience::Detected < Resilience::Corrupted);
        assert!(Resilience::Corrupted < Resilience::Aborted);
    }
}
