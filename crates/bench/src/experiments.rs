//! Computation of every figure/table's data.
//!
//! The single-NPU figures (4, 5, 14, 15) all derive from one sweep over
//! `(model, NPU config, scheme)`; the sweep is computed once, in parallel,
//! and shared. Figures 16 and 17 run their own sweeps (multi-NPU and
//! end-to-end respectively).

use crate::sweep::{self as pool, PoolReport};
use crate::traced;
use std::collections::BTreeMap;
use tnpu_core::endtoend::{run_end_to_end_seeded, EndToEndReport};
use tnpu_core::RunSpec;
use tnpu_memprot::SchemeKind;
use tnpu_models::registry;
use tnpu_npu::{NpuConfig, RunReport};

/// Experiment label of the shared single/multi-NPU figure sweep — part of
/// every cell's seed derivation (see `tnpu_core::runspec`).
pub const FIGURES_EXPERIMENT: &str = "figures";

/// Experiment label of the Fig. 17 end-to-end sweep.
pub const ENDTOEND_EXPERIMENT: &str = "endtoend";

/// The schemes plotted by the performance figures, in bar order.
pub const FIGURE_SCHEMES: [SchemeKind; 3] = [
    SchemeKind::Unsecure,
    SchemeKind::TreeBased,
    SchemeKind::Treeless,
];

/// Key of one simulated run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SweepKey {
    /// Model short name.
    pub model: String,
    /// NPU configuration name ("small" / "large").
    pub config: &'static str,
    /// Protection scheme.
    pub scheme: &'static str,
    /// NPU count.
    pub npus: usize,
}

impl SweepKey {
    fn new(model: &str, config: &NpuConfig, scheme: SchemeKind, npus: usize) -> Self {
        SweepKey {
            model: model.to_owned(),
            config: config.name,
            scheme: scheme.label(),
            npus,
        }
    }
}

/// Results of a sweep: the slowest NPU's report per key (for one NPU that
/// is simply *the* report).
#[derive(Debug, Default)]
pub struct Sweep {
    runs: BTreeMap<SweepKey, RunReport>,
}

impl Sweep {
    /// Look up one run.
    ///
    /// # Panics
    ///
    /// Panics if the sweep does not contain the key (harness bug).
    #[must_use]
    pub fn get(
        &self,
        model: &str,
        config: &NpuConfig,
        scheme: SchemeKind,
        npus: usize,
    ) -> &RunReport {
        self.runs
            .get(&SweepKey::new(model, config, scheme, npus))
            .unwrap_or_else(|| panic!("missing run {model}/{}/{scheme}/{npus}", config.name))
    }

    /// Normalized execution time of `scheme` vs the unsecure run at the
    /// same NPU count.
    #[must_use]
    pub fn normalized(
        &self,
        model: &str,
        config: &NpuConfig,
        scheme: SchemeKind,
        npus: usize,
    ) -> f64 {
        let run = self.get(model, config, scheme, npus);
        let base = self.get(model, config, SchemeKind::Unsecure, npus);
        run.total.as_f64() / base.total.as_f64()
    }

    /// Normalized total DRAM traffic of `scheme` vs the unsecure run.
    #[must_use]
    pub fn traffic_normalized(
        &self,
        model: &str,
        config: &NpuConfig,
        scheme: SchemeKind,
        npus: usize,
    ) -> f64 {
        let run = self.get(model, config, scheme, npus);
        let base = self.get(model, config, SchemeKind::Unsecure, npus);
        run.total_traffic() as f64 / base.data_traffic() as f64
    }
}

/// The fixed, matrix-ordered job list of the figure sweep: every cell of
/// `models` × both configs × [`FIGURE_SCHEMES`] × `npu_counts`.
fn sweep_specs(models: &[&str], npu_counts: &[usize]) -> Vec<(SweepKey, RunSpec)> {
    let configs = NpuConfig::paper_configs();
    let mut jobs = Vec::new();
    for &model in models {
        for config in &configs {
            for &scheme in &FIGURE_SCHEMES {
                for &npus in npu_counts {
                    jobs.push((
                        SweepKey::new(model, config, scheme, npus),
                        RunSpec::new(FIGURES_EXPERIMENT, model, config, scheme, npus),
                    ));
                }
            }
        }
    }
    jobs
}

/// Run the sweep for `models` × both configs × [`FIGURE_SCHEMES`] ×
/// `npu_counts` on the session worker pool (see [`crate::sweep`]), and
/// record its timings for the end-of-run summary.
#[must_use]
pub fn sweep(models: &[&str], npu_counts: &[usize]) -> Sweep {
    let (swept, report) = sweep_with_threads(pool::threads(), models, npu_counts);
    pool::record(report);
    swept
}

/// [`sweep`] at an explicit pool width, returning the timing report
/// instead of recording it — the hook the determinism test uses to diff a
/// 1-thread run against an N-thread run.
#[must_use]
pub fn sweep_with_threads(
    threads: usize,
    models: &[&str],
    npu_counts: &[usize],
) -> (Sweep, PoolReport) {
    let (keys, specs): (Vec<SweepKey>, Vec<RunSpec>) =
        sweep_specs(models, npu_counts).into_iter().unzip();
    // One pool job per (model, config) trace group: the trace is lowered
    // once at the largest NPU count and replayed for every scheme x count
    // member (see `crate::traced`).
    let (results, report) = traced::run_specs_with(threads, FIGURES_EXPERIMENT, &specs);
    let runs = keys.into_iter().zip(results).collect();
    (Sweep { runs }, report)
}

/// The model list to use: all 14, or the quick subset for smoke runs.
#[must_use]
pub fn model_list(quick: bool) -> Vec<&'static str> {
    if quick {
        vec!["alex", "df", "sent", "ncf"]
    } else {
        registry::MODEL_NAMES.to_vec()
    }
}

/// Figure 17 data: end-to-end reports per (model, config, scheme), run on
/// the session worker pool.
#[must_use]
pub fn fig17_sweep(models: &[&str]) -> BTreeMap<SweepKey, EndToEndReport> {
    let (data, report) = fig17_sweep_with_threads(pool::threads(), models);
    pool::record(report);
    data
}

/// [`fig17_sweep`] at an explicit pool width, returning the timing report
/// instead of recording it.
#[must_use]
pub fn fig17_sweep_with_threads(
    threads: usize,
    models: &[&str],
) -> (BTreeMap<SweepKey, EndToEndReport>, PoolReport) {
    let configs = NpuConfig::paper_configs();
    let mut jobs = Vec::new();
    for &model in models {
        for config in &configs {
            for &scheme in &FIGURE_SCHEMES {
                jobs.push((
                    SweepKey::new(model, config, scheme, 1),
                    RunSpec::new(ENDTOEND_EXPERIMENT, model, config, scheme, 1),
                ));
            }
        }
    }
    let (results, report) = pool::run_ordered_with(
        threads,
        ENDTOEND_EXPERIMENT,
        &jobs,
        |(_, spec)| spec.label(),
        |(_, spec)| {
            let m = registry::model(&spec.model).expect("registered model");
            run_end_to_end_seeded(&m, &spec.config, spec.scheme, spec.seed())
        },
    );
    let data = jobs.into_iter().map(|(key, _)| key).zip(results).collect();
    (data, report)
}

/// §IV-D data: peak version-table storage per model (bytes).
#[must_use]
pub fn vtable_storage(models: &[&str]) -> Vec<(String, u64, u64)> {
    models
        .iter()
        .map(|&name| {
            let model = registry::model(name).expect("registered model");
            let layout = tnpu_npu::alloc::ModelLayout::allocate(&model, tnpu_sim::Addr(0));
            // tnpu-lint: allow(version-table-scope) — a scratch table built
            // solely to measure §IV-D storage; no engine ever verifies it.
            let mut table = tnpu_core::VersionTable::new();
            for id in 0..layout.tensor_count {
                table.register(id);
            }
            let steady = table.storage_bytes();
            // Peak: steady state plus the largest single tile expansion
            // (one tensor is expanded at a time; merged after each layer).
            let max_tiles = layout
                .outputs
                .iter()
                .map(|o| {
                    o.bytes
                        .div_ceil(tnpu_core::secure_runner::TILE_BYTES)
                        .max(1)
                })
                .max()
                .unwrap_or(1);
            let peak = steady + (max_tiles.saturating_sub(1)) * 8;
            (name.to_owned(), steady, peak)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_expected_shape() {
        let s = sweep(&["df"], &[1]);
        let small = NpuConfig::small_npu();
        let unsec = s.normalized("df", &small, SchemeKind::Unsecure, 1);
        assert!((unsec - 1.0).abs() < 1e-12);
        let tree = s.normalized("df", &small, SchemeKind::TreeBased, 1);
        let tnpu = s.normalized("df", &small, SchemeKind::Treeless, 1);
        assert!(tnpu >= 1.0);
        assert!(tree >= tnpu);
    }

    #[test]
    fn vtable_storage_is_kb_scale() {
        for (name, steady, peak) in vtable_storage(&["df", "agz"]) {
            assert!(steady > 0, "{name}");
            assert!(peak >= steady, "{name}");
            assert!(peak < 64 << 10, "{name}: {peak} B");
        }
    }

    #[test]
    fn model_lists() {
        assert_eq!(model_list(false).len(), 14);
        assert!(model_list(true).len() < 14);
    }
}
