//! CLI driver for the environmental-fault resilience matrix.
//!
//! ```text
//! faults [--deny-corrupted] [--threads N] [model ...]
//! ```
//!
//! Injects every environmental fault process of the taxonomy (transient
//! and persistent bit errors, dropped and stalled DMA transfers, crypto
//! soft errors) at every default rate against every protection scheme,
//! with the recovery layer enabled, and prints the scheme × fault
//! resilience matrix. With `--deny-corrupted` the process exits non-zero
//! if any cell contradicts the fault model — the CI gate that protected
//! schemes never compute on corrupted data. stdout is byte-identical at
//! any thread count; timing goes to stderr.

use tnpu_bench::{faults, sweep};
use tnpu_models::registry;

fn parse_thread_count(value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--threads wants a positive integer, got {value:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny = false;
    let mut models: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--deny-corrupted" {
            deny = true;
        } else if arg == "--threads" {
            let Some(value) = iter.next() else {
                eprintln!("--threads wants a value");
                std::process::exit(2);
            };
            sweep::set_threads(parse_thread_count(value));
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            sweep::set_threads(parse_thread_count(value));
        } else if arg.starts_with("--") {
            eprintln!("unknown flag: {arg}");
            std::process::exit(2);
        } else if registry::model(arg).is_some() {
            models.push(arg.as_str());
        } else {
            eprintln!("unknown model: {arg}");
            std::process::exit(2);
        }
    }
    if models.is_empty() {
        models = faults::DEFAULT_MODELS.to_vec();
    }

    let cells = faults::matrix(&models);
    println!("==== faults ====");
    println!("{}", faults::render(&cells));

    // Timing telemetry is nondeterministic, so it goes to stderr only —
    // stdout must stay byte-identical at any thread count.
    if let Some(summary) = sweep::session_summary() {
        eprint!("{summary}");
    }

    let bad = cells.iter().filter(|c| !c.matches()).count();
    if deny && bad > 0 {
        eprintln!("--deny-corrupted: {bad} cell(s) contradict the fault model");
        std::process::exit(1);
    }
}
