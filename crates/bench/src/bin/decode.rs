//! CLI driver for the dynamic-dataflow crossover sweep.
//!
//! ```text
//! decode [--quick] [--deny-undetected] [--deny-corrupted] [--threads N]
//!        [--bench-json PATH]
//! ```
//!
//! Prints the sequence-length × version-limit × scheme crossover figure
//! for the autoregressive-decode and training-churn workloads — per-step
//! replay cycles with the tree-less scheme's amortized epoch-sweep bill
//! folded in, `<<` marking the cells where version churn pushes tree-less
//! behind the counter tree — then joins the attack and environmental-fault
//! matrices for the dynamic models. `--deny-undetected` exits non-zero if
//! any attack cell contradicts the paper's claims, `--deny-corrupted` if
//! any fault cell contradicts the fault model. stdout is byte-identical
//! at any thread count; timing goes to stderr.

use tnpu_bench::{attacks, decode, faults, sweep};

fn parse_thread_count(value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--threads wants a positive integer, got {value:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut deny_undetected = false;
    let mut deny_corrupted = false;
    let mut bench_json: Option<std::path::PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--deny-undetected" {
            deny_undetected = true;
        } else if arg == "--deny-corrupted" {
            deny_corrupted = true;
        } else if arg == "--threads" {
            let Some(value) = iter.next() else {
                eprintln!("--threads wants a value");
                std::process::exit(2);
            };
            sweep::set_threads(parse_thread_count(value));
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            sweep::set_threads(parse_thread_count(value));
        } else if arg == "--bench-json" {
            let Some(value) = iter.next() else {
                eprintln!("--bench-json wants a path");
                std::process::exit(2);
            };
            bench_json = Some(value.into());
        } else if let Some(value) = arg.strip_prefix("--bench-json=") {
            bench_json = Some(value.into());
        } else {
            eprintln!("unknown flag: {arg}");
            std::process::exit(2);
        }
    }

    // Quick keeps the joined matrices to the decode model, the sparser
    // fault period, and two passes — the dynamic models push megabytes
    // through software crypto per inference, so the full five-pass
    // dense-period matrix is a multi-minute serial run. The full run
    // adds the training workload and both periods at [`faults::PASSES`],
    // matching the static binaries' default coverage.
    let models: &[&str] = if quick {
        &["decode"]
    } else {
        &["decode", "train"]
    };
    let periods: &[u64] = if quick {
        &faults::DEFAULT_PERIODS[1..]
    } else {
        &faults::DEFAULT_PERIODS
    };
    let passes = if quick {
        faults::QUICK_PASSES
    } else {
        faults::PASSES
    };

    let (replays, lifecycles) = decode::crossover(quick);
    println!("==== decode crossover ====");
    println!("{}", decode::render_crossover(&replays, &lifecycles));

    let attack_cells = attacks::matrix(models);
    println!("==== decode attacks ====");
    println!("{}", attacks::render(&attack_cells));

    let (fault_cells, report) =
        faults::matrix_with_threads_at(sweep::threads(), models, periods, passes);
    sweep::record(report);
    println!("==== decode faults ====");
    println!("{}", faults::render(&fault_cells));

    // Timing telemetry is nondeterministic, so it goes to stderr only —
    // stdout must stay byte-identical at any thread count. The optional
    // benchmark record goes to its own file, never to stdout.
    let pools = sweep::take_session();
    if let Some(summary) = sweep::summarize(&pools) {
        eprint!("{summary}");
    }
    if let Some(path) = bench_json {
        let record = sweep::bench_record_json(&args.join(" "), sweep::threads(), &pools);
        if let Err(e) = sweep::append_bench_json(&path, &record) {
            eprintln!("cannot write benchmark record to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("benchmark record appended to {}", path.display());
    }

    let undetected = attack_cells.iter().filter(|(_, c)| !c.matches()).count();
    if deny_undetected && undetected > 0 {
        eprintln!("--deny-undetected: {undetected} cell(s) contradict the paper's claims");
        std::process::exit(1);
    }
    let corrupted = fault_cells.iter().filter(|c| !c.matches()).count();
    if deny_corrupted && corrupted > 0 {
        eprintln!("--deny-corrupted: {corrupted} cell(s) contradict the fault model");
        std::process::exit(1);
    }
}
