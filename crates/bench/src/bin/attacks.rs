//! CLI driver for the adversarial attack-injection matrix.
//!
//! ```text
//! attacks [--deny-undetected] [--threads N] [model ...]
//! ```
//!
//! Runs every attack of the taxonomy against every protection scheme on
//! full functional inferences of the given models (default: df ncf) and
//! prints the scheme × attack detection matrix. With `--deny-undetected`
//! the process exits non-zero if any cell contradicts the paper's claims
//! — the CI gate. stdout is byte-identical at any thread count; timing
//! goes to stderr.

use tnpu_bench::{attacks, sweep};
use tnpu_models::registry;

fn parse_thread_count(value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--threads wants a positive integer, got {value:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny = false;
    let mut models: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--deny-undetected" {
            deny = true;
        } else if arg == "--threads" {
            let Some(value) = iter.next() else {
                eprintln!("--threads wants a value");
                std::process::exit(2);
            };
            sweep::set_threads(parse_thread_count(value));
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            sweep::set_threads(parse_thread_count(value));
        } else if arg.starts_with("--") {
            eprintln!("unknown flag: {arg}");
            std::process::exit(2);
        } else if registry::model(arg).is_some() {
            models.push(arg.as_str());
        } else {
            eprintln!("unknown model: {arg}");
            std::process::exit(2);
        }
    }
    if models.is_empty() {
        models = attacks::DEFAULT_MODELS.to_vec();
    }

    let cells = attacks::matrix(&models);
    println!("==== attacks ====");
    println!("{}", attacks::render(&cells));

    // Timing telemetry is nondeterministic, so it goes to stderr only —
    // stdout must stay byte-identical at any thread count.
    if let Some(summary) = sweep::session_summary() {
        eprint!("{summary}");
    }

    let bad = cells.iter().filter(|(_, c)| !c.matches()).count();
    if deny && bad > 0 {
        eprintln!("--deny-undetected: {bad} cell(s) contradict the paper's claims");
        std::process::exit(1);
    }
}
