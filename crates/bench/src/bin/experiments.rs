//! CLI driver regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [target ...]
//! targets: table2 table3 fig4 fig5 fig14 fig15 fig16 fig17 vtable hwcost all
//! ```

use tnpu_bench::experiments::{self, model_list};
use tnpu_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if targets.is_empty() || targets.contains(&"all") {
        targets = vec![
            "table2", "table3", "fig4", "fig5", "fig14", "fig15", "fig16", "fig17", "vtable",
            "hwcost", "ablations",
        ];
    }
    let models = model_list(quick);

    // Figures 4/5/14/15 share the single-NPU sweep; fig16 extends it.
    let needs_single = targets
        .iter()
        .any(|t| ["fig4", "fig5", "fig14", "fig15", "fig16", "csv", "check"].contains(t));
    let needs_multi = targets.contains(&"fig16");
    let counts: Vec<usize> = if needs_multi { vec![1, 2, 3] } else { vec![1] };
    let sweep = if needs_single {
        Some(experiments::sweep(&models, &counts))
    } else {
        None
    };

    for target in targets {
        let rendered = match target {
            "table2" => tables::table2(),
            "table3" => tables::table3(&models),
            // Fig. 4 is the motivation figure: the baseline bars of Fig. 14.
            "fig4" | "fig14" => tables::fig14(sweep.as_ref().expect("swept"), &models),
            "fig5" => tables::fig5(sweep.as_ref().expect("swept"), &models),
            "fig15" => tables::fig15(sweep.as_ref().expect("swept"), &models),
            "fig16" => tables::fig16(sweep.as_ref().expect("swept"), &models, &counts),
            "csv" => tables::csv(sweep.as_ref().expect("swept"), &models),
            "check" => {
                let violations = tables::check(sweep.as_ref().expect("swept"), &models);
                if violations.is_empty() {
                    "reproduction check PASSED: all paper-shape invariants hold\n".to_owned()
                } else {
                    eprintln!("reproduction check FAILED:");
                    for v in &violations {
                        eprintln!("  {v}");
                    }
                    std::process::exit(1);
                }
            }
            "fig17" => tables::fig17(&models),
            "vtable" => tables::vtable(&models),
            "hwcost" => tables::hwcost(),
            "ext_scaling" => {
                tnpu_bench::ablations::extended_scaling(&["df", "ncf", "sent"], 6)
            }
            "ablations" => {
                let mut s = tnpu_bench::ablations::cache_sensitivity("ncf");
                s += "\n";
                s += &tnpu_bench::ablations::tree_arity("sent");
                s += "\n";
                s += &tnpu_bench::ablations::counter_granularity("ncf");
                s += "\n";
                s += &tnpu_bench::ablations::tree_organization("sent");
                s += "\n";
                s += &tnpu_bench::ablations::integrity_price(&["alex", "df", "sent", "ncf"]);
                s
            }
            other => {
                eprintln!("unknown target: {other}");
                std::process::exit(2);
            }
        };
        println!("==== {target} ====");
        println!("{rendered}");
    }
}
