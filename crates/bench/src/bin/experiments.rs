//! CLI driver regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--threads N] [--bench-json PATH] [target ...]
//! targets: table2 table3 fig4 fig5 fig14 fig15 fig16 fig17 vtable hwcost all
//! ```
//!
//! Cells of each experiment run in parallel on a worker pool sized by
//! `--threads N` (or the `TNPU_THREADS` environment variable, defaulting
//! to all cores). stdout is byte-identical at any thread count; the
//! timing summary — per-job wall times and the aggregate speedup — goes
//! to stderr. `--bench-json PATH` additionally appends one JSON record of
//! the run's pool timings to the array in `PATH` (creating it if absent),
//! growing the perf-trajectory log `make bench` maintains.

use tnpu_bench::experiments::{self, model_list};
use tnpu_bench::{sweep, tables};

fn parse_thread_count(value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--threads wants a positive integer, got {value:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut bench_json: Option<std::path::PathBuf> = None;
    let mut targets: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--threads" {
            let Some(value) = iter.next() else {
                eprintln!("--threads wants a value");
                std::process::exit(2);
            };
            sweep::set_threads(parse_thread_count(value));
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            sweep::set_threads(parse_thread_count(value));
        } else if arg == "--bench-json" {
            let Some(value) = iter.next() else {
                eprintln!("--bench-json wants a path");
                std::process::exit(2);
            };
            bench_json = Some(value.into());
        } else if let Some(value) = arg.strip_prefix("--bench-json=") {
            bench_json = Some(value.into());
        } else if arg.starts_with("--") {
            eprintln!("unknown flag: {arg}");
            std::process::exit(2);
        } else {
            targets.push(arg.as_str());
        }
    }
    if targets.is_empty() || targets.contains(&"all") {
        targets = vec![
            "table2",
            "table3",
            "fig4",
            "fig5",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "vtable",
            "hwcost",
            "ablations",
        ];
    }
    let models = model_list(quick);

    // Figures 4/5/14/15 share the single-NPU sweep; fig16 extends it.
    let needs_single = targets
        .iter()
        .any(|t| ["fig4", "fig5", "fig14", "fig15", "fig16", "csv", "check"].contains(t));
    let needs_multi = targets.contains(&"fig16");
    let counts: Vec<usize> = if needs_multi { vec![1, 2, 3] } else { vec![1] };
    let sweep = if needs_single {
        Some(experiments::sweep(&models, &counts))
    } else {
        None
    };

    for target in targets {
        let rendered = match target {
            "table2" => tables::table2(),
            "table3" => tables::table3(&models),
            // Fig. 4 is the motivation figure: the baseline bars of Fig. 14.
            "fig4" | "fig14" => tables::fig14(sweep.as_ref().expect("swept"), &models),
            "fig5" => tables::fig5(sweep.as_ref().expect("swept"), &models),
            "fig15" => tables::fig15(sweep.as_ref().expect("swept"), &models),
            "fig16" => tables::fig16(sweep.as_ref().expect("swept"), &models, &counts),
            "csv" => tables::csv(sweep.as_ref().expect("swept"), &models),
            "check" => {
                let violations = tables::check(sweep.as_ref().expect("swept"), &models);
                if violations.is_empty() {
                    "reproduction check PASSED: all paper-shape invariants hold\n".to_owned()
                } else {
                    eprintln!("reproduction check FAILED:");
                    for v in &violations {
                        eprintln!("  {v}");
                    }
                    std::process::exit(1);
                }
            }
            "fig17" => tables::fig17(&models),
            "vtable" => tables::vtable(&models),
            "hwcost" => tables::hwcost(),
            "ext_scaling" => tnpu_bench::ablations::extended_scaling(&["df", "ncf", "sent"], 6),
            "ablations" => {
                let mut s = tnpu_bench::ablations::cache_sensitivity("ncf");
                s += "\n";
                s += &tnpu_bench::ablations::tree_arity("sent");
                s += "\n";
                s += &tnpu_bench::ablations::counter_granularity("ncf");
                s += "\n";
                s += &tnpu_bench::ablations::tree_organization("sent");
                s += "\n";
                s += &tnpu_bench::ablations::integrity_price(&["alex", "df", "sent", "ncf"]);
                s
            }
            other => {
                eprintln!("unknown target: {other}");
                std::process::exit(2);
            }
        };
        println!("==== {target} ====");
        println!("{rendered}");
    }

    // Timing telemetry is nondeterministic, so it goes to stderr only —
    // stdout must stay byte-identical at any thread count. The optional
    // benchmark record goes to its own file, never to stdout.
    let pools = sweep::take_session();
    if let Some(summary) = sweep::summarize(&pools) {
        eprint!("{summary}");
    }
    if let Some(path) = bench_json {
        let record = sweep::bench_record_json(&args.join(" "), sweep::threads(), &pools);
        if let Err(e) = sweep::append_bench_json(&path, &record) {
            eprintln!("cannot write benchmark record to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("benchmark record appended to {}", path.display());
    }
}
