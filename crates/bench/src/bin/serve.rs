//! CLI driver for the multi-tenant serving simulator.
//!
//! ```text
//! serve [--quick] [--deny-undetected] [--threads N] [model ...]
//! ```
//!
//! Prints the per-scheme p50/p95/p99 tail-latency and throughput tables
//! for the default traffic mix under Poisson and bursty arrivals, FCFS
//! and priority-preemptive scheduling, with context-switch cycles charged
//! through each scheme's protection engine — then the attack matrix
//! extended to preempted and co-resident contexts and the stale-IOMMU-TLB
//! recycle probe. Positional models override the extended matrix's victim
//! set. With `--deny-undetected` the process exits non-zero if any
//! extended cell contradicts the paper's claims or the stale-TLB window
//! is open. stdout is byte-identical at any thread count; timing goes to
//! stderr.

use tnpu_bench::{serving, sweep};
use tnpu_models::registry;

fn parse_thread_count(value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--threads wants a positive integer, got {value:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny = false;
    let mut quick = false;
    let mut models: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--deny-undetected" {
            deny = true;
        } else if arg == "--quick" {
            quick = true;
        } else if arg == "--threads" {
            let Some(value) = iter.next() else {
                eprintln!("--threads wants a value");
                std::process::exit(2);
            };
            sweep::set_threads(parse_thread_count(value));
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            sweep::set_threads(parse_thread_count(value));
        } else if arg.starts_with("--") {
            eprintln!("unknown flag: {arg}");
            std::process::exit(2);
        } else if registry::model(arg).is_some() {
            models.push(arg.as_str());
        } else {
            eprintln!("unknown model: {arg}");
            std::process::exit(2);
        }
    }
    if models.is_empty() {
        models = if quick {
            serving::QUICK_ATTACK_MODELS.to_vec()
        } else {
            serving::FULL_ATTACK_MODELS.to_vec()
        };
    }

    let reports = serving::serve(quick);
    let cells = serving::attack_surfaces(&models);
    println!("==== serve ====");
    println!("{}", serving::render_serve(&reports));
    println!("{}", serving::render_surfaces(&cells));

    // Timing telemetry is nondeterministic, so it goes to stderr only —
    // stdout must stay byte-identical at any thread count.
    if let Some(summary) = sweep::session_summary() {
        eprint!("{summary}");
    }

    if deny && !serving::all_claims_hold(&cells) {
        eprintln!("--deny-undetected: extended attack claims do not hold");
        std::process::exit(1);
    }
}
