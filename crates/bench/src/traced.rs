//! Trace-grouped execution of [`RunSpec`] matrices.
//!
//! The experiment grids sweep schemes (and often NPU counts) as their
//! fastest-varying dimensions, yet a cell's tile trace depends on neither
//! (see [`RunSpec::trace_key`]): every scheme of one `(experiment, model,
//! config)` group lowers the identical plans. [`run_specs`] therefore
//! batches each group into one pool job that lowers the trace **once** —
//! at the group's largest NPU count, so smaller counts replay a prefix —
//! and replays it per member, instead of re-running the tiler for every
//! cell.
//!
//! Results still come back in input (matrix) order, so downstream
//! aggregation — and the byte-stable stdout — sees exactly what the
//! per-cell runner produced. Only the stderr timing summary changes
//! shape: one timed job per trace group, with the group's cell count in
//! its label.

use crate::sweep::{self as pool, PoolReport};
use std::collections::BTreeMap;
use tnpu_core::RunSpec;
use tnpu_npu::RunReport;

/// Indices into the spec list sharing one trace key, in first-appearance
/// order (both across and within groups), so the scatter-back is a pure
/// function of the input order.
fn trace_groups(specs: &[RunSpec]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut by_key: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for (i, spec) in specs.iter().enumerate() {
        match by_key.get(&spec.trace_key()) {
            Some(&g) => groups[g].push(i),
            None => {
                by_key.insert(spec.trace_key(), groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

/// `model/config (xN)` — the timing label of one trace group's job.
fn group_label(specs: &[RunSpec], members: &[usize]) -> String {
    let spec = &specs[members[0]];
    format!("{}/{} (x{})", spec.model, spec.config.name, members.len())
}

/// Execute every cell of `specs` on `threads` workers, one pool job per
/// trace group; results come back in input order. The returned report
/// counts jobs per group but cells per spec.
///
/// # Panics
///
/// Panics if a spec's model is not registered or its trace replay fails
/// (simulator invariants).
#[must_use]
pub fn run_specs_with(
    threads: usize,
    experiment: &str,
    specs: &[RunSpec],
) -> (Vec<RunReport>, PoolReport) {
    let groups = trace_groups(specs);
    let (batches, mut report) = pool::run_ordered_with(
        threads,
        experiment,
        &groups,
        |members| group_label(specs, members),
        |members| {
            let npus = members
                .iter()
                .map(|&i| specs[i].npus)
                .max()
                .expect("groups are never empty");
            let trace = specs[members[0]].build_trace(npus);
            members
                .iter()
                .map(|&i| specs[i].execute_with(&trace).into_slowest())
                .collect::<Vec<RunReport>>()
        },
    );
    report.cells = specs.len();
    let mut slots: Vec<Option<RunReport>> = Vec::with_capacity(specs.len());
    slots.resize_with(specs.len(), || None);
    for (members, batch) in groups.iter().zip(batches) {
        for (&i, result) in members.iter().zip(batch) {
            slots[i] = Some(result);
        }
    }
    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every cell ran exactly once"))
        .collect();
    (results, report)
}

/// [`run_specs_with`] at the session pool width, recording the timing
/// report in the session registry for the end-of-run summary.
///
/// # Panics
///
/// See [`run_specs_with`].
#[must_use]
pub fn run_specs(experiment: &str, specs: &[RunSpec]) -> Vec<RunReport> {
    let (results, report) = run_specs_with(pool::threads(), experiment, specs);
    pool::record(report);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnpu_memprot::SchemeKind;
    use tnpu_npu::NpuConfig;

    /// The reduced figure-style matrix the equivalence tests sweep:
    /// 2 models x 2 schemes x 2 counts = 8 cells in 2 trace groups.
    fn matrix() -> Vec<RunSpec> {
        let npu = NpuConfig::small_npu();
        let mut specs = Vec::new();
        for model in ["df", "ncf"] {
            for scheme in [SchemeKind::Unsecure, SchemeKind::Treeless] {
                for npus in [1usize, 2] {
                    specs.push(RunSpec::new("traced-test", model, &npu, scheme, npus));
                }
            }
        }
        specs
    }

    #[test]
    fn grouping_preserves_matrix_order_and_batches_by_key() {
        let specs = matrix();
        let groups = trace_groups(&specs);
        assert_eq!(groups, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        assert_eq!(group_label(&specs, &groups[0]), "df/small (x4)");
    }

    #[test]
    fn traced_runner_matches_per_cell_execution() {
        let specs = matrix();
        let (results, report) = run_specs_with(2, "traced-test", &specs);
        assert_eq!(report.cells, specs.len());
        assert_eq!(report.jobs.len(), 2, "one job per trace group");
        let direct: Vec<RunReport> = specs.iter().map(|s| s.execute().into_slowest()).collect();
        assert_eq!(results, direct, "trace replay must be bit-identical");
    }
}
