//! Deterministic parallel runner for the experiment matrices.
//!
//! Every experiment in this crate is a list of independent cells
//! ([`tnpu_core::RunSpec`]s or equivalent jobs). [`run_ordered`] executes
//! such a list on a pool of scoped worker threads and returns the results
//! **in input order**, so downstream aggregation sees exactly what a
//! serial run would have produced:
//!
//! * Workers pull jobs from a shared atomic cursor — scheduling order is
//!   racy and irrelevant, because each job's output depends only on its
//!   spec (seeds derive from what is simulated, never from which worker
//!   ran it — see `tnpu_core::runspec`).
//! * Results are scattered back into a slot per input index before the
//!   pool returns, so `experiments -- all` is byte-identical at any
//!   thread count (enforced by `tests/determinism.rs`).
//!
//! Thread-count resolution (first match wins): an explicit
//! [`set_threads`] call (the binary's `--threads N` flag), the
//! `TNPU_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! Each pool run also produces a [`PoolReport`] with per-job wall times
//! and the aggregate speedup; the harness collects them in a session
//! registry ([`record`] / [`session_summary`]) and the binary prints the
//! summary to **stderr** — timing is nondeterministic and must never
//! touch the byte-stable stdout.
//!
//! Timing caveat: a job's wall time includes any time its worker spends
//! descheduled, so when the pool is oversubscribed (more threads than
//! cores) the serial-equivalent sum — and therefore the reported speedup
//! — overstates the benefit. At the default width (= cores) it is an
//! honest estimate of what a serial run would have cost.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

static THREAD_OVERRIDE: OnceLock<usize> = OnceLock::new();

/// Pin the pool width for the rest of the process (the `--threads N`
/// flag). Returns `false` if a width was already pinned (first call wins,
/// like the `OnceLock` it is).
pub fn set_threads(n: usize) -> bool {
    THREAD_OVERRIDE.set(n.max(1)).is_ok()
}

/// The pool width [`run_ordered`] uses: [`set_threads`] override, else
/// `TNPU_THREADS`, else the machine's available parallelism.
#[must_use]
pub fn threads() -> usize {
    if let Some(&n) = THREAD_OVERRIDE.get() {
        return n;
    }
    if let Some(n) = std::env::var("TNPU_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Wall time of one job, under its label.
#[derive(Debug, Clone)]
pub struct JobTiming {
    /// The job's display label (e.g. `df/small/tnpu/1`).
    pub label: String,
    /// Time the job spent executing on its worker.
    pub wall: Duration,
}

/// Timing record of one pool run.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Name of the experiment the pool ran.
    pub name: String,
    /// Worker count actually used.
    pub threads: usize,
    /// Wall time of the whole pool (submit to last join).
    pub wall: Duration,
    /// Per-job timings, in input (= output) order.
    pub jobs: Vec<JobTiming>,
    /// Experiment cells the pool computed. Equal to `jobs.len()` unless
    /// the runner batched several cells into one job (the trace-grouped
    /// runner in [`crate::traced`] does), in which case it exceeds it.
    pub cells: usize,
}

impl PoolReport {
    /// Sum of all per-job wall times — what a serial run would cost.
    #[must_use]
    pub fn serial(&self) -> Duration {
        self.jobs.iter().map(|j| j.wall).sum()
    }

    /// Serial-equivalent time over pool wall time.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.serial().as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }

    /// Render the per-job wall times and the aggregate speedup line.
    #[must_use]
    pub fn render(&self) -> String {
        let shape = if self.cells == self.jobs.len() {
            format!("{} jobs", self.jobs.len())
        } else {
            format!("{} cells in {} jobs", self.cells, self.jobs.len())
        };
        let mut out = format!(
            "pool '{}': {shape} on {} thread(s): wall {:.3} s, serial {:.3} s, speedup {:.2}x\n",
            self.name,
            self.threads,
            self.wall.as_secs_f64(),
            self.serial().as_secs_f64(),
            self.speedup(),
        );
        for job in &self.jobs {
            out += &format!(
                "  {:40} {:9.3} ms\n",
                job.label,
                job.wall.as_secs_f64() * 1e3
            );
        }
        out
    }
}

/// Run `jobs` on `threads` workers; results come back in input order.
///
/// `label` names each job for the timing report; `f` executes it. Jobs
/// are claimed from an atomic cursor, so long jobs do not convoy short
/// ones; with `threads <= 1` everything runs inline on the caller.
///
/// # Panics
///
/// Propagates a panic from any job.
#[must_use]
pub fn run_ordered_with<T, R, L, F>(
    threads: usize,
    name: &str,
    jobs: &[T],
    label: L,
    f: F,
) -> (Vec<R>, PoolReport)
where
    T: Sync,
    R: Send,
    L: Fn(&T) -> String,
    F: Fn(&T) -> R + Sync,
{
    let width = threads.max(1).min(jobs.len().max(1));
    let pool_start = Instant::now();
    let mut slots: Vec<Option<(R, Duration)>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);

    if width <= 1 {
        for (slot, job) in slots.iter_mut().zip(jobs) {
            let start = Instant::now();
            let result = f(job);
            *slot = Some((result, start.elapsed()));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let batches: Vec<Vec<(usize, R, Duration)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..width)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut mine = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(i) else { break };
                            let start = Instant::now();
                            let result = f(job);
                            mine.push((i, result, start.elapsed()));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("pool scope");
        for (i, result, wall) in batches.into_iter().flatten() {
            slots[i] = Some((result, wall));
        }
    }

    let wall = pool_start.elapsed();
    let mut results = Vec::with_capacity(jobs.len());
    let mut timings = Vec::with_capacity(jobs.len());
    for (slot, job) in slots.into_iter().zip(jobs) {
        let (result, job_wall) = slot.expect("every job ran exactly once");
        results.push(result);
        timings.push(JobTiming {
            label: label(job),
            wall: job_wall,
        });
    }
    let cells = timings.len();
    (
        results,
        PoolReport {
            name: name.to_owned(),
            threads: width,
            wall,
            jobs: timings,
            cells,
        },
    )
}

/// [`run_ordered_with`] at the session pool width ([`threads`]), recording
/// the timing report in the session registry for the end-of-run summary.
#[must_use]
pub fn run_ordered<T, R, L, F>(name: &str, jobs: &[T], label: L, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    L: Fn(&T) -> String,
    F: Fn(&T) -> R + Sync,
{
    let (results, report) = run_ordered_with(threads(), name, jobs, label, f);
    record(report);
    results
}

static SESSION: Mutex<Vec<PoolReport>> = Mutex::new(Vec::new());

/// Append a pool's timing report to the session registry.
pub fn record(report: PoolReport) {
    SESSION.lock().expect("session registry").push(report);
}

/// Drain the session registry.
#[must_use]
pub fn take_session() -> Vec<PoolReport> {
    std::mem::take(&mut *SESSION.lock().expect("session registry"))
}

/// Render every pool's timings plus the cross-pool aggregate speedup.
/// `None` if `pools` is empty. Print this to stderr only: job durations
/// vary run to run, and stdout must stay byte-identical at any thread
/// count.
#[must_use]
pub fn summarize(pools: &[PoolReport]) -> Option<String> {
    if pools.is_empty() {
        return None;
    }
    let mut out = String::from("== timing summary (nondeterministic; stderr only) ==\n");
    let mut wall = Duration::ZERO;
    let mut serial = Duration::ZERO;
    let mut jobs = 0;
    let mut cells = 0;
    for pool in pools {
        out += &pool.render();
        wall += pool.wall;
        serial += pool.serial();
        jobs += pool.jobs.len();
        cells += pool.cells;
    }
    out += &format!(
        "total: {cells} cells as {jobs} jobs in {} pool(s): wall {:.3} s, serial-equivalent {:.3} s, aggregate speedup {:.2}x\n",
        pools.len(),
        wall.as_secs_f64(),
        serial.as_secs_f64(),
        serial.as_secs_f64() / wall.as_secs_f64().max(1e-9),
    );
    Some(out)
}

/// Drain the session registry and render it (see [`summarize`]).
#[must_use]
pub fn session_summary() -> Option<String> {
    summarize(&take_session())
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// the vendored tree has no JSON crate, and the benchmark records only
/// need scalars and flat objects.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out += "\\\"",
            '\\' => out += "\\\\",
            c if (c as u32) < 0x20 => out += &format!("\\u{:04x}", c as u32),
            c => out.push(c),
        }
    }
    out
}

/// One benchmark record — the per-pool and total wall seconds of a
/// harness run — as a JSON object, for the perf-trajectory log
/// (`experiments --bench-json PATH`).
#[must_use]
pub fn bench_record_json(label: &str, threads: usize, pools: &[PoolReport]) -> String {
    let mut wall = Duration::ZERO;
    let mut serial = Duration::ZERO;
    let mut jobs = 0;
    let mut cells = 0;
    let mut entries = String::new();
    for (i, pool) in pools.iter().enumerate() {
        if i > 0 {
            entries += ",\n";
        }
        entries += &format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"jobs\": {}, \"cells\": {}, \"wall_s\": {:.6}, \"serial_s\": {:.6}}}",
            json_escape(&pool.name),
            pool.threads,
            pool.jobs.len(),
            pool.cells,
            pool.wall.as_secs_f64(),
            pool.serial().as_secs_f64(),
        );
        wall += pool.wall;
        serial += pool.serial();
        jobs += pool.jobs.len();
        cells += pool.cells;
    }
    format!(
        "{{\n  \"label\": \"{}\",\n  \"threads\": {threads},\n  \"pools\": [\n{entries}\n  ],\n  \"total_jobs\": {jobs},\n  \"total_cells\": {cells},\n  \"total_wall_s\": {:.6},\n  \"total_serial_s\": {:.6}\n}}",
        json_escape(label),
        wall.as_secs_f64(),
        serial.as_secs_f64(),
    )
}

/// Append `record` (a JSON object) to the JSON array in the file at
/// `path`, creating the file as a one-element array if it does not exist
/// or does not already end in `]`. Successive harness runs therefore grow
/// a trajectory of timing records.
///
/// # Errors
///
/// Propagates any I/O error reading or writing `path`.
pub fn append_bench_json(path: &std::path::Path, record: &str) -> std::io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let trimmed = existing.trim_end();
    let out = match trimmed.strip_suffix(']') {
        Some(head) if !trimmed.is_empty() => {
            let head = head.trim_end();
            let head = head.strip_suffix('[').map_or_else(
                || format!("{head},\n"),         // non-empty array: separate records
                |opened| format!("{opened}[\n"), // empty array: first record
            );
            format!("{head}{record}\n]\n")
        }
        _ => format!("[\n{record}\n]\n"),
    };
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_pool(threads: usize, n: usize) -> (Vec<usize>, PoolReport) {
        let jobs: Vec<usize> = (0..n).collect();
        run_ordered_with(threads, "squares", &jobs, |j| format!("job{j}"), |&j| j * j)
    }

    #[test]
    fn results_come_back_in_input_order() {
        for threads in [1, 2, 7, 64] {
            let (results, report) = square_pool(threads, 23);
            let expected: Vec<usize> = (0..23).map(|j| j * j).collect();
            assert_eq!(results, expected, "threads={threads}");
            assert_eq!(report.jobs.len(), 23);
            assert_eq!(report.jobs[5].label, "job5");
        }
    }

    #[test]
    fn pool_width_is_clamped_to_job_count() {
        let (_, report) = square_pool(64, 3);
        assert_eq!(report.threads, 3);
        let (results, report) = square_pool(4, 0);
        assert!(results.is_empty());
        assert_eq!(report.threads, 1);
        assert!(report.jobs.is_empty());
    }

    fn demo_report() -> PoolReport {
        PoolReport {
            name: "demo".to_owned(),
            threads: 2,
            wall: Duration::from_millis(50),
            jobs: vec![
                JobTiming {
                    label: "a".to_owned(),
                    wall: Duration::from_millis(60),
                },
                JobTiming {
                    label: "b".to_owned(),
                    wall: Duration::from_millis(40),
                },
            ],
            cells: 2,
        }
    }

    #[test]
    fn report_renders_jobs_and_speedup() {
        let report = demo_report();
        assert_eq!(report.serial(), Duration::from_millis(100));
        assert!((report.speedup() - 2.0).abs() < 1e-9);
        let rendered = report.render();
        assert!(rendered.contains("pool 'demo': 2 jobs on 2 thread(s)"));
        assert!(rendered.contains("speedup 2.00x"));
        assert!(rendered.contains("  a"));
        assert!(rendered.contains("  b"));
    }

    #[test]
    fn report_renders_batched_cells() {
        let mut report = demo_report();
        report.cells = 7;
        assert!(report
            .render()
            .contains("pool 'demo': 7 cells in 2 jobs on 2 thread(s)"));
        assert!(summarize(&[report])
            .expect("one pool")
            .contains("7 cells as 2 jobs in 1 pool(s)"));
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn bench_record_is_wellformed_json_by_inspection() {
        let record = bench_record_json("all --quick", 3, &[demo_report()]);
        assert!(record.starts_with("{\n  \"label\": \"all --quick\","));
        assert!(record.contains("\"threads\": 3,"));
        assert!(record.contains(
            "{\"name\": \"demo\", \"threads\": 2, \"jobs\": 2, \"cells\": 2, \"wall_s\": 0.050000, \"serial_s\": 0.100000}"
        ));
        assert!(record.contains("\"total_jobs\": 2,"));
        assert!(record.contains("\"total_wall_s\": 0.050000,"));
        assert!(record.ends_with("}"));
        // Escaping: a label with quotes must not break the quoting.
        let tricky = bench_record_json("say \"hi\"\\", 1, &[]);
        assert!(tricky.contains("\"label\": \"say \\\"hi\\\"\\\\\","));
    }

    #[test]
    fn bench_json_appends_records_into_one_array() {
        let dir = std::env::temp_dir().join(format!("tnpu-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_sweep.json");
        let _ = std::fs::remove_file(&path);
        append_bench_json(&path, "{\"a\": 1}").expect("first write");
        append_bench_json(&path, "{\"b\": 2}").expect("second write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, "[\n{\"a\": 1},\n{\"b\": 2}\n]\n");
        // Appending to a hand-seeded empty array also works.
        std::fs::write(&path, "[]\n").expect("seed");
        append_bench_json(&path, "{\"c\": 3}").expect("append to empty");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, "[\n{\"c\": 3}\n]\n");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn worker_panics_propagate() {
        let jobs = vec![0u32, 1, 2, 3];
        let caught = std::panic::catch_unwind(|| {
            run_ordered_with(
                2,
                "boom",
                &jobs,
                |j| j.to_string(),
                |&j| {
                    assert!(j != 2, "job 2 explodes");
                    j
                },
            )
        });
        assert!(caught.is_err());
    }
}
