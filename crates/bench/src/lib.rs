#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index).
//!
//! The [`experiments`] module computes the data, fanning the experiment
//! matrix out over the deterministic worker pool in [`sweep`] (results
//! are byte-identical at any thread count); [`tables`] renders it in the
//! row/series layout the paper plots. The [`decode`] module adds the
//! dynamic-dataflow crossover sweep (sequence length × version limit ×
//! scheme) behind the `decode` binary. The `experiments` binary drives
//! the static set:
//!
//! ```text
//! cargo run --release -p tnpu-bench --bin experiments -- all
//! cargo run --release -p tnpu-bench --bin experiments -- fig14 fig15
//! cargo run --release -p tnpu-bench --bin experiments -- --quick fig16
//! cargo run --release -p tnpu-bench --bin experiments -- --threads 4 all
//! ```

pub mod ablations;
pub mod attacks;
pub mod decode;
pub mod experiments;
pub mod faults;
pub mod serving;
pub mod sweep;
pub mod tables;
pub mod traced;

pub use experiments::{Sweep, SweepKey};
pub use sweep::PoolReport;
