//! The multi-tenant serving report: per-scheme tail latency and
//! throughput under contending arrival processes, with context-switch
//! cycles charged through each scheme's protection engine — plus the
//! attack matrix extended to preempted and co-resident contexts and the
//! stale-IOMMU-TLB probe.
//!
//! Each serving cell is an independent job ([`tnpu_core::serving::simulate`])
//! on the deterministic worker pool, as is each extended attack cell, so
//! stdout stays byte-identical at any thread count.

use crate::sweep as pool;
use crate::PoolReport;
use tnpu_core::attacks::{run_cell_on, CellResult, Surface};
use tnpu_core::context::{refusal_taxonomy_probe, stale_tlb_probe};
use tnpu_core::serving::{simulate, ArrivalProcess, Policy, ServeReport, ServeSpec, TrafficMix};
use tnpu_core::Scheme;
use tnpu_memprot::adversary::AttackKind;
use tnpu_models::registry;
use tnpu_npu::NpuConfig;

/// Pool-report name for the serving tables.
pub const SERVE_EXPERIMENT: &str = "serve";

/// Pool-report name for the extended attack matrix.
pub const SURFACES_EXPERIMENT: &str = "serve-attacks";

/// NPUs in the serving pool.
pub const POOL_NPUS: usize = 2;

/// Requests per cell (full / `--quick`).
pub const FULL_REQUESTS: usize = 96;
/// Reduced request count for `--quick` (and the frozen golden).
pub const QUICK_REQUESTS: usize = 24;

/// Victims for the extended attack matrix (full / `--quick`).
pub const FULL_ATTACK_MODELS: [&str; 2] = ["df", "ncf"];
/// Reduced victim set for `--quick`.
pub const QUICK_ATTACK_MODELS: [&str; 1] = ["df"];

/// The default traffic mix: a heavy low-priority conv pipeline, a
/// mid-priority attention model, and an occasional high-priority NCF —
/// enough priority spread for the preemptive policy to matter.
#[must_use]
pub fn default_mix() -> TrafficMix {
    TrafficMix::new("mix", &[("df", 3, 0), ("sent", 2, 1), ("ncf", 1, 2)])
}

/// The two arrival processes the tables sweep.
#[must_use]
pub fn arrivals() -> [ArrivalProcess; 2] {
    [
        ArrivalProcess::Poisson { load_pct: 80 },
        ArrivalProcess::Bursty {
            load_pct: 80,
            burst: 8,
        },
    ]
}

/// Run the serving grid (arrival × policy × scheme) on the session pool.
#[must_use]
pub fn serve(quick: bool) -> Vec<ServeReport> {
    let (reports, report) = serve_with_threads(pool::threads(), quick);
    pool::record(report);
    reports
}

/// [`serve`] at an explicit pool width, returning the timing report
/// instead of recording it — the hook the determinism test uses.
#[must_use]
pub fn serve_with_threads(threads: usize, quick: bool) -> (Vec<ServeReport>, PoolReport) {
    let requests = if quick { QUICK_REQUESTS } else { FULL_REQUESTS };
    let mut jobs = Vec::new();
    for arrival in arrivals() {
        for policy in [Policy::Fcfs, Policy::Preemptive] {
            for scheme in Scheme::ALL {
                jobs.push((arrival, policy, scheme));
            }
        }
    }
    pool::run_ordered_with(
        threads,
        SERVE_EXPERIMENT,
        &jobs,
        |(arrival, policy, scheme)| {
            format!("{}/{}/{}", arrival.label(), policy.label(), scheme.label())
        },
        |(arrival, policy, scheme)| {
            let spec = ServeSpec::new(
                SERVE_EXPERIMENT,
                default_mix(),
                *arrival,
                *policy,
                *scheme,
                &NpuConfig::small_npu(),
                POOL_NPUS,
                requests,
            );
            simulate(&spec)
        },
    )
}

/// Render the serving grid: one block per arrival × policy, one row per
/// scheme, latencies in kilocycles.
#[must_use]
pub fn render_serve(reports: &[ServeReport]) -> String {
    let kc = |cycles: u64| format!("{:.1}", cycles as f64 / 1000.0);
    let mut out = String::from(
        "Multi-tenant serving: tail latency and throughput over the NPU pool\n\
         (latencies in kcycles; switch cycles are context save/restore traffic\n\
         charged through each scheme's own protection engine)\n",
    );
    let mut current = String::new();
    for r in reports {
        let group = format!("{} / {}", r.arrival, r.policy.label());
        if group != current {
            current = group;
            out += &format!("-- {current} --\n");
            out += &format!(
                "{:14} {:>9} {:>9} {:>9} {:>9} {:>13} {:>6} {:>8} {:>12}\n",
                "scheme",
                "p50",
                "p95",
                "p99",
                "mean",
                "thr(req/Mcyc)",
                "disp",
                "preempt",
                "switch-kcyc"
            );
        }
        out += &format!(
            "{:14} {:>9} {:>9} {:>9} {:>9} {:>13.3} {:>6} {:>8} {:>12}\n",
            r.scheme.label(),
            kc(r.latency_percentile(50)),
            kc(r.latency_percentile(95)),
            kc(r.latency_percentile(99)),
            kc(r.mean_latency()),
            r.milli_requests_per_mcycle() as f64 / 1000.0,
            r.dispatches,
            r.preemptions,
            kc(r.switch_cycles),
        );
    }
    out
}

/// Run the extended attack matrix (preempted and co-resident surfaces)
/// on the session pool.
#[must_use]
pub fn attack_surfaces(models: &[&str]) -> Vec<(String, Surface, CellResult)> {
    let (cells, report) = attack_surfaces_with_threads(pool::threads(), models);
    pool::record(report);
    cells
}

/// [`attack_surfaces`] at an explicit pool width.
#[must_use]
pub fn attack_surfaces_with_threads(
    threads: usize,
    models: &[&str],
) -> (Vec<(String, Surface, CellResult)>, PoolReport) {
    let mut jobs = Vec::new();
    for &model in models {
        for surface in [Surface::Preempted, Surface::CoResident] {
            for attack in AttackKind::ALL {
                for scheme in Scheme::ALL {
                    jobs.push((model, surface, scheme, attack));
                }
            }
        }
    }
    let (results, report) = pool::run_ordered_with(
        threads,
        SURFACES_EXPERIMENT,
        &jobs,
        |(model, surface, scheme, attack)| format!("{model}/{surface}/{scheme}/{attack}"),
        |(model, surface, scheme, attack)| {
            let m = registry::model(model).expect("registered model");
            run_cell_on(&m, *scheme, *attack, *surface)
        },
    );
    let cells = jobs
        .into_iter()
        .map(|(model, surface, _, _)| (model.to_owned(), surface))
        .zip(results)
        .map(|((model, surface), cell)| (model, surface, cell))
        .collect();
    (cells, report)
}

/// Render the extended matrix, one table per model × surface, plus the
/// stale-IOMMU-TLB probe verdict.
#[must_use]
pub fn render_surfaces(cells: &[(String, Surface, CellResult)]) -> String {
    let mut out = String::from(
        "Attack matrix on preempted and co-resident contexts (claims must not\n\
         weaken off the resident path; co-resident cells also assert the\n\
         neighbor tenant's output stays clean)\n",
    );
    let mut current = String::new();
    for (model, surface, cell) in cells {
        let group = format!("{model} / {surface}");
        if group != current {
            current = group;
            out += &format!("-- {current} --\n");
            out += &format!("{:22}", "attack");
            for scheme in Scheme::ALL {
                out += &format!(" {:>14}", scheme.label());
            }
            out.push('\n');
        }
        if cell.scheme == Scheme::ALL[0] {
            out += &format!("{:22}", cell.attack.label());
        }
        if cell.matches() {
            out += &format!(" {:>14}", cell.outcome.label());
        } else {
            out += &format!(" {:>14}", format!("!{}", cell.outcome.label()));
        }
        if cell.scheme == *Scheme::ALL.last().expect("non-empty") {
            out.push('\n');
        }
    }
    let bad = cells.iter().filter(|(_, _, c)| !c.matches()).count();
    if bad == 0 {
        out += &format!(
            "all {} extended cells match the paper's claims\n",
            cells.len()
        );
    } else {
        out += &format!("{bad} extended cell(s) CONTRADICT the paper's claims\n");
    }
    // The recycled-NPU hazard: with the shoot-down in place a recycled
    // NPU must re-translate; without it the probe demonstrates the
    // stale-translation hit the bugfix closed.
    let closed = stale_tlb_probe(true) && !stale_tlb_probe(false);
    out += &format!(
        "stale-TLB window on NPU recycle: {}\n",
        if closed {
            "closed (shoot-down forces re-translation; skipping it would leak)"
        } else {
            "OPEN — destroy_context leaks translations across tenants"
        }
    );
    out
}

/// Whether every extended cell matches, the stale-TLB window is closed,
/// and every session misuse is refused by the right layer with the right
/// [`tnpu_core::context::SessionError`] variant — the `--deny-undetected`
/// gate.
#[must_use]
pub fn all_claims_hold(cells: &[(String, Surface, CellResult)]) -> bool {
    cells.iter().all(|(_, _, c)| c.matches())
        && stale_tlb_probe(true)
        && !stale_tlb_probe(false)
        && refusal_taxonomy_probe()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_tables_are_identical_across_thread_counts() {
        let (one, _) = serve_with_threads(1, true);
        let (two, _) = serve_with_threads(2, true);
        assert_eq!(one, two);
        assert_eq!(render_serve(&one), render_serve(&two));
    }

    #[test]
    fn rendered_serving_table_shows_the_cost_of_protection() {
        let (reports, _) = serve_with_threads(2, true);
        // 2 arrivals x 2 policies x 4 schemes.
        assert_eq!(reports.len(), 16);
        for r in &reports {
            if r.scheme == Scheme::Unsecure {
                assert_eq!(r.switch_cycles, 0, "unsecure switches are free");
            } else {
                assert!(r.switch_cycles > 0, "{}: protected switches cost", r.scheme);
            }
        }
        let rendered = render_serve(&reports);
        assert!(rendered.contains("poisson-80 / fcfs"), "{rendered}");
        assert!(rendered.contains("bursty-80x8 / preempt"), "{rendered}");
    }

    #[test]
    fn extended_matrix_is_identical_across_thread_counts_and_clean() {
        let (one, _) = attack_surfaces_with_threads(1, &QUICK_ATTACK_MODELS);
        let (two, _) = attack_surfaces_with_threads(2, &QUICK_ATTACK_MODELS);
        assert_eq!(one, two);
        assert!(all_claims_hold(&one));
        let rendered = render_surfaces(&one);
        assert!(
            rendered.contains("all 56 extended cells match"),
            "{rendered}"
        );
        assert!(rendered.contains("stale-TLB window on NPU recycle: closed"));
    }
}
