//! Rendering of each figure/table in the paper's row/series layout.

use crate::experiments::{self, Sweep};
use tnpu_core::hwcost::HwCost;
use tnpu_memprot::SchemeKind;
use tnpu_models::registry;
use tnpu_npu::NpuConfig;

fn geomean_free_mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

/// Table II: the two NPU configurations.
#[must_use]
pub fn table2() -> String {
    let mut out = String::from("Table II - simulation environments\n");
    for cfg in NpuConfig::paper_configs() {
        out += &format!(
            "{:6}  PEs {:2}x{:2}  bandwidth {:.0} B/cyc  SPM {:4} KB  DRAM {} cyc\n",
            cfg.name,
            cfg.rows,
            cfg.cols,
            cfg.bandwidth.as_f64(),
            cfg.spm_bytes >> 10,
            cfg.dram.latency.0,
        );
    }
    out
}

/// Table III: models and computed memory footprints.
#[must_use]
pub fn table3(models: &[&str]) -> String {
    let mut out = String::from("Table III - benchmark models (computed footprints)\n");
    for &name in models {
        let m = registry::model(name).expect("registered model");
        out += &format!(
            "{:5} {:28} {:7.1} MB   {:4} layers  {:6.2} GMACs\n",
            m.name,
            m.full_name,
            m.footprint_bytes() as f64 / (1 << 20) as f64,
            m.layers.len(),
            m.total_macs() as f64 / 1e9,
        );
    }
    out
}

/// Figures 4 & 14: normalized execution times (Fig. 4 is the baseline
/// column of Fig. 14).
#[must_use]
pub fn fig14(sweep: &Sweep, models: &[&str]) -> String {
    let mut out =
        String::from("Fig. 14 - execution time normalized to unsecure (baseline | tnpu)\n");
    for cfg in NpuConfig::paper_configs() {
        out += &format!("-- {} NPU --\n", cfg.name);
        let mut base = Vec::new();
        let mut tnpu = Vec::new();
        for &model in models {
            let b = sweep.normalized(model, &cfg, SchemeKind::TreeBased, 1);
            let t = sweep.normalized(model, &cfg, SchemeKind::Treeless, 1);
            base.push(b);
            tnpu.push(t);
            out += &format!("{model:5}  baseline {b:5.3}   tnpu {t:5.3}\n");
        }
        out += &format!(
            "avg    baseline {:5.3}   tnpu {:5.3}   (paper small: 1.211/1.090, large: 1.173/1.086)\n",
            geomean_free_mean(&base),
            geomean_free_mean(&tnpu),
        );
    }
    out
}

/// Figure 5: counter-cache miss rates of the baseline (plus the other
/// metadata caches, which the paper discusses but does not plot).
#[must_use]
pub fn fig5(sweep: &Sweep, models: &[&str]) -> String {
    let mut out =
        String::from("Fig. 5 - baseline metadata-cache miss rates (counter | hash | mac)\n");
    for cfg in NpuConfig::paper_configs() {
        out += &format!("-- {} NPU --\n", cfg.name);
        for &model in models {
            let run = sweep.get(model, &cfg, SchemeKind::TreeBased, 1);
            out += &format!(
                "{model:5}  ctr {:6.2} %   hash {:6.2} %   mac {:6.2} %\n",
                run.engine.counter_cache.miss_rate() * 100.0,
                run.engine.hash_cache.miss_rate() * 100.0,
                run.engine.mac_cache.miss_rate() * 100.0,
            );
        }
    }
    out
}

/// Figure 15: normalized total DRAM traffic.
#[must_use]
pub fn fig15(sweep: &Sweep, models: &[&str]) -> String {
    let mut out = String::from("Fig. 15 - DRAM traffic normalized to unsecure (baseline | tnpu)\n");
    for cfg in NpuConfig::paper_configs() {
        out += &format!("-- {} NPU --\n", cfg.name);
        let mut base = Vec::new();
        let mut tnpu = Vec::new();
        for &model in models {
            let b = sweep.traffic_normalized(model, &cfg, SchemeKind::TreeBased, 1);
            let t = sweep.traffic_normalized(model, &cfg, SchemeKind::Treeless, 1);
            base.push(b);
            tnpu.push(t);
            out += &format!("{model:5}  baseline {b:5.3}   tnpu {t:5.3}\n");
        }
        out += &format!(
            "avg    baseline {:5.3}   tnpu {:5.3}   (paper small: +23.3% vs +12.3% extra)\n",
            geomean_free_mean(&base),
            geomean_free_mean(&tnpu),
        );
    }
    out
}

/// Figure 16: scalability with 1–3 NPUs (normalized to the unsecure run of
/// the same NPU count).
#[must_use]
pub fn fig16(sweep: &Sweep, models: &[&str], counts: &[usize]) -> String {
    let mut out = String::from("Fig. 16 - execution time vs NPU count (baseline | tnpu)\n");
    for cfg in NpuConfig::paper_configs() {
        out += &format!("-- {} NPU --\n", cfg.name);
        for &n in counts {
            let mut base = Vec::new();
            let mut tnpu = Vec::new();
            for &model in models {
                base.push(sweep.normalized(model, &cfg, SchemeKind::TreeBased, n));
                tnpu.push(sweep.normalized(model, &cfg, SchemeKind::Treeless, n));
            }
            let b = geomean_free_mean(&base);
            let t = geomean_free_mean(&tnpu);
            out += &format!(
                "{n} NPU(s): baseline {b:5.3}  tnpu {t:5.3}  improvement {:4.1} %\n",
                (b - t) / b * 100.0
            );
        }
    }
    out
}

/// Figure 17: end-to-end execution times.
#[must_use]
pub fn fig17(models: &[&str]) -> String {
    fig17_from(&experiments::fig17_sweep(models), models)
}

/// Render Figure 17 from an already-computed end-to-end sweep (see
/// [`experiments::fig17_sweep_with_threads`]).
#[must_use]
pub fn fig17_from(
    data: &std::collections::BTreeMap<crate::SweepKey, tnpu_core::endtoend::EndToEndReport>,
    models: &[&str],
) -> String {
    let mut out =
        String::from("Fig. 17 - end-to-end time normalized to unsecure (baseline | tnpu)\n");
    for cfg in NpuConfig::paper_configs() {
        out += &format!("-- {} NPU --\n", cfg.name);
        let mut base = Vec::new();
        let mut tnpu = Vec::new();
        for &model in models {
            let find = |scheme: SchemeKind| {
                data.iter()
                    .find(|(k, _)| {
                        k.model == model && k.config == cfg.name && k.scheme == scheme.label()
                    })
                    .map(|(_, r)| r)
                    .expect("swept")
            };
            let u = find(SchemeKind::Unsecure);
            let b = find(SchemeKind::TreeBased).normalized_to(u);
            let t = find(SchemeKind::Treeless).normalized_to(u);
            base.push(b);
            tnpu.push(t);
            out += &format!("{model:5}  baseline {b:5.3}   tnpu {t:5.3}\n");
        }
        out += &format!(
            "avg    baseline {:5.3}   tnpu {:5.3}   (paper small: 1.141/1.064, large: 1.126/1.056)\n",
            geomean_free_mean(&base),
            geomean_free_mean(&tnpu),
        );
    }
    out
}

/// §IV-D: version-table storage.
#[must_use]
pub fn vtable(models: &[&str]) -> String {
    let mut out = String::from("Version-table storage (steady | peak)\n");
    let rows = experiments::vtable_storage(models);
    let mut peaks = Vec::new();
    for (name, steady, peak) in &rows {
        peaks.push(*peak as f64);
        out += &format!("{name:5}  {steady:6} B  peak {peak:6} B\n");
    }
    out += &format!(
        "avg peak {:.2} KB (paper: avg 1.3 KB, max 7.5 KB)\n",
        peaks.iter().sum::<f64>() / peaks.len() as f64 / 1024.0
    );
    out
}

/// Machine-readable export of the single-NPU sweep (for plotting): one row
/// per (model, config, scheme) with normalized time, normalized traffic and
/// the baseline counter-cache miss rate.
#[must_use]
pub fn csv(sweep: &Sweep, models: &[&str]) -> String {
    let mut out = String::from(
        "model,config,scheme,norm_time,norm_traffic,counter_miss_rate
",
    );
    for cfg in NpuConfig::paper_configs() {
        for &model in models {
            for scheme in [
                SchemeKind::Unsecure,
                SchemeKind::TreeBased,
                SchemeKind::Treeless,
            ] {
                let run = sweep.get(model, &cfg, scheme, 1);
                out += &format!(
                    "{model},{},{},{:.4},{:.4},{:.4}
",
                    cfg.name,
                    scheme.label(),
                    sweep.normalized(model, &cfg, scheme, 1),
                    sweep.traffic_normalized(model, &cfg, scheme, 1),
                    run.engine.counter_cache.miss_rate(),
                );
            }
        }
    }
    out
}

/// §V-E: hardware overhead.
#[must_use]
pub fn hwcost() -> String {
    let mut out = String::from("Hardware overhead (SS V-E)\n");
    for cost in [HwCost::tnpu(), HwCost::tree_baseline()] {
        out += &format!(
            "{:14}  {} AES engines, {:5.1} KB SRAM -> {:.5} mm^2 ({:.3} % of Exynos 990), {:5.2} mW\n",
            cost.name,
            cost.aes_engines,
            cost.sram_kb(),
            cost.area_mm2(),
            cost.pct_of_exynos(),
            cost.power_mw(),
        );
    }
    out += "paper: 0.03632 mm^2, 0.035 % of Exynos 990, 17.73 mW\n";
    out
}

/// Self-check: verify the headline paper-shape invariants on a sweep and
/// return the list of violations (empty = reproduction holds). Used by the
/// `experiments -- check` CI gate.
#[must_use]
pub fn check(sweep: &Sweep, models: &[&str]) -> Vec<String> {
    let mut violations = Vec::new();
    for cfg in NpuConfig::paper_configs() {
        let mut base_sum = 0.0;
        let mut tnpu_sum = 0.0;
        for &model in models {
            let tree = sweep.normalized(model, &cfg, SchemeKind::TreeBased, 1);
            let tnpu = sweep.normalized(model, &cfg, SchemeKind::Treeless, 1);
            base_sum += tree;
            tnpu_sum += tnpu;
            if tnpu < 1.0 - 1e-9 {
                violations.push(format!(
                    "{model}/{}: tnpu below unsecure ({tnpu:.3})",
                    cfg.name
                ));
            }
            if tree < tnpu - 1e-9 {
                violations.push(format!(
                    "{model}/{}: baseline ({tree:.3}) below tnpu ({tnpu:.3})",
                    cfg.name
                ));
            }
            let t_tree = sweep.traffic_normalized(model, &cfg, SchemeKind::TreeBased, 1);
            let t_tnpu = sweep.traffic_normalized(model, &cfg, SchemeKind::Treeless, 1);
            if t_tree < t_tnpu - 1e-9 {
                violations.push(format!(
                    "{model}/{}: baseline traffic ({t_tree:.3}) below tnpu ({t_tnpu:.3})",
                    cfg.name
                ));
            }
        }
        let n = models.len() as f64;
        let (base_avg, tnpu_avg) = (base_sum / n, tnpu_sum / n);
        if !(1.0..1.6).contains(&base_avg) {
            violations.push(format!(
                "{}: baseline average {base_avg:.3} out of band",
                cfg.name
            ));
        }
        if tnpu_avg > base_avg {
            violations.push(format!(
                "{}: tnpu average {tnpu_avg:.3} above baseline {base_avg:.3}",
                cfg.name
            ));
        }
    }
    // sent must be the baseline's worst case when it is in the sweep.
    if models.contains(&"sent") {
        let small = NpuConfig::small_npu();
        let sent = sweep.normalized("sent", &small, SchemeKind::TreeBased, 1);
        for &model in models {
            if model == "sent" {
                continue;
            }
            let other = sweep.normalized(model, &small, SchemeKind::TreeBased, 1);
            if other > sent {
                violations.push(format!(
                    "{model} baseline ({other:.3}) exceeds the sent stress case ({sent:.3})"
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t2 = table2();
        assert!(t2.contains("small") && t2.contains("large"));
        let t3 = table3(&["res", "tf"]);
        assert!(t3.contains("Resnet50") && t3.contains("Transformer"));
        let hw = hwcost();
        assert!(hw.contains("mm^2"));
        let vt = vtable(&["df"]);
        assert!(vt.contains("peak"));
    }

    #[test]
    fn check_passes_on_quick_sweep() {
        let models = experiments::model_list(true);
        let sweep = experiments::sweep(&models, &[1]);
        let violations = check(&sweep, &models);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn csv_export_has_all_rows() {
        let models = ["df"];
        let sweep = experiments::sweep(&models, &[1]);
        let rendered = csv(&sweep, &models);
        // Header + 2 configs x 1 model x 3 schemes.
        assert_eq!(rendered.lines().count(), 1 + 6);
        assert!(rendered.starts_with("model,config,scheme"));
    }

    #[test]
    fn figure_renderers_work_on_a_small_sweep() {
        let models = ["df"];
        let sweep = experiments::sweep(&models, &[1]);
        for rendered in [
            fig14(&sweep, &models),
            fig5(&sweep, &models),
            fig15(&sweep, &models),
        ] {
            assert!(rendered.contains("df"), "{rendered}");
            assert!(rendered.contains("small"));
        }
        let f16 = fig16(&sweep, &models, &[1]);
        assert!(f16.contains("1 NPU(s)"), "{f16}");
    }
}
