//! One benchmark per paper figure/table: each measures the simulator
//! regenerating that experiment's data on a reduced model subset (so
//! `cargo bench` stays minutes, not hours). The full-suite numbers come
//! from `cargo run --release -p tnpu-bench --bin experiments -- all`.

use criterion::{criterion_group, criterion_main, Criterion};
use tnpu_bench::experiments;
use tnpu_bench::tables;
use tnpu_core::endtoend::run_end_to_end;
use tnpu_memprot::SchemeKind;
use tnpu_npu::NpuConfig;

/// The cheap pair used by the per-figure benches: one conv model and one
/// gather-heavy model.
const QUICK: [&str; 2] = ["df", "ncf"];

/// The parallel-runner payoff: the same figure sweep serially and on the
/// session pool width. The ratio is the speedup `experiments -- all`
/// reports on its stderr summary.
fn bench_sweep_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_runner");
    group.sample_size(10);
    group.bench_function("figure_sweep_1_thread", |b| {
        b.iter(|| std::hint::black_box(experiments::sweep_with_threads(1, &QUICK, &[1, 2])));
    });
    let width = tnpu_bench::sweep::threads();
    group.bench_function(format!("figure_sweep_{width}_threads"), |b| {
        b.iter(|| std::hint::black_box(experiments::sweep_with_threads(width, &QUICK, &[1, 2])));
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig4_motivation_baseline", |b| {
        b.iter(|| {
            let model = tnpu_models::registry::model("df").expect("registered");
            std::hint::black_box(tnpu_npu::simulate(
                &model,
                &NpuConfig::small_npu(),
                SchemeKind::TreeBased,
            ))
        });
    });

    group.bench_function("fig5_counter_miss_rates", |b| {
        b.iter(|| {
            let sweep = experiments::sweep(&QUICK, &[1]);
            std::hint::black_box(tables::fig5(&sweep, &QUICK))
        });
    });

    group.bench_function("fig14_exec_times", |b| {
        b.iter(|| {
            let sweep = experiments::sweep(&QUICK, &[1]);
            std::hint::black_box(tables::fig14(&sweep, &QUICK))
        });
    });

    group.bench_function("fig15_traffic", |b| {
        b.iter(|| {
            let sweep = experiments::sweep(&QUICK, &[1]);
            std::hint::black_box(tables::fig15(&sweep, &QUICK))
        });
    });

    group.bench_function("fig16_scalability_3npu", |b| {
        b.iter(|| {
            let model = tnpu_models::registry::model("df").expect("registered");
            std::hint::black_box(tnpu_npu::simulate_multi(
                &model,
                &NpuConfig::small_npu(),
                SchemeKind::Treeless,
                3,
            ))
        });
    });

    group.bench_function("fig17_end_to_end", |b| {
        b.iter(|| {
            let model = tnpu_models::registry::model("df").expect("registered");
            std::hint::black_box(run_end_to_end(
                &model,
                &NpuConfig::small_npu(),
                SchemeKind::Treeless,
            ))
        });
    });

    group.bench_function("table3_footprints", |b| {
        b.iter(|| std::hint::black_box(tables::table3(&tnpu_models::registry::MODEL_NAMES)));
    });

    group.bench_function("vtable_storage", |b| {
        b.iter(|| std::hint::black_box(tables::vtable(&QUICK)));
    });

    group.bench_function("hwcost", |b| {
        b.iter(|| std::hint::black_box(tables::hwcost()));
    });

    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("plan_resnet50", |b| {
        let model = tnpu_models::registry::model("res").expect("registered");
        let npu = NpuConfig::small_npu();
        let layout = tnpu_npu::alloc::ModelLayout::allocate(&model, tnpu_sim::Addr(0));
        b.iter(|| std::hint::black_box(tnpu_npu::tiler::plan(&model, &npu, &layout, 1)));
    });
    group.bench_function("functional_secure_run_agz", |b| {
        let model = tnpu_models::registry::model("agz").expect("registered");
        b.iter(|| {
            let mut runner = tnpu_core::secure_runner::SecureRunner::new(
                &model,
                tnpu_crypto::Key128::derive(b"bench"),
                1,
            );
            runner.run().expect("clean run");
            std::hint::black_box(runner.read_output().expect("verifies"))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_runner, bench_figures, bench_simulator);
criterion_main!(benches);
