//! Criterion benchmarks of the protection-engine cost models: the cache
//! model and block-stream costs per scheme (streaming vs scattered).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
use tnpu_sim::cache::{AccessKind, Cache, CacheConfig};
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::Addr;

fn bench_cache_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache-model");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("streaming_accesses", |b| {
        let mut cache = Cache::new(CacheConfig::new("bench", 4096, 8, 64));
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                addr += 64;
                std::hint::black_box(cache.access(Addr(addr), AccessKind::Read));
            }
        });
    });
    group.bench_function("random_accesses", |b| {
        let mut cache = Cache::new(CacheConfig::new("bench", 4096, 8, 64));
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            for _ in 0..1024 {
                let addr = rng.next_below(1 << 20) * 64;
                std::hint::black_box(cache.access(Addr(addr), AccessKind::Write));
            }
        });
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine-block-stream");
    group.throughput(Throughput::Elements(1024));
    for scheme in [
        SchemeKind::Unsecure,
        SchemeKind::TreeBased,
        SchemeKind::Treeless,
        SchemeKind::EncryptOnly,
    ] {
        group.bench_function(format!("stream/{scheme}"), |b| {
            let mut engine = build_engine(scheme, &ProtectionConfig::paper_default());
            let mut addr = 0u64;
            b.iter(|| {
                for _ in 0..1024 {
                    addr += 64;
                    std::hint::black_box(engine.read_block(Addr(addr % (1 << 30)), 1));
                }
            });
        });
        group.bench_function(format!("scattered/{scheme}"), |b| {
            let mut engine = build_engine(scheme, &ProtectionConfig::paper_default());
            let mut rng = SplitMix64::new(7);
            b.iter(|| {
                for _ in 0..1024 {
                    let addr = rng.next_below(1 << 24) * 64;
                    std::hint::black_box(engine.read_block(Addr(addr), 1));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_model, bench_engines);
criterion_main!(benches);
