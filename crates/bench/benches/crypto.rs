//! Criterion micro-benchmarks of the functional crypto primitives.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tnpu_crypto::aes::Aes128;
use tnpu_crypto::ctr::CtrMode;
use tnpu_crypto::hmac::hmac_sha256;
use tnpu_crypto::mac::BlockMac;
use tnpu_crypto::sha256::sha256;
use tnpu_crypto::xts::XtsMode;
use tnpu_crypto::Key128;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");

    let aes = Aes128::new(Key128::derive(b"bench"));
    group.throughput(Throughput::Bytes(16));
    group.bench_function("aes128_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            std::hint::black_box(&block);
        });
    });

    let xts = XtsMode::from_master(Key128::derive(b"bench"));
    group.throughput(Throughput::Bytes(64));
    group.bench_function("xts_64b_block", |b| {
        let mut block = [0u8; 64];
        b.iter(|| {
            xts.encrypt_block(7, &mut block);
            std::hint::black_box(&block);
        });
    });

    let ctr = CtrMode::new(Key128::derive(b"bench"));
    group.bench_function("ctr_64b_block", |b| {
        let mut block = [0u8; 64];
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            ctr.apply(0x1000, counter, &mut block);
            std::hint::black_box(&block);
        });
    });

    let mac = BlockMac::new(Key128::derive(b"bench"));
    group.bench_function("block_mac_tag", |b| {
        let block = [0x5au8; 64];
        b.iter(|| std::hint::black_box(mac.tag(0x1000, 3, &block)));
    });

    group.throughput(Throughput::Bytes(4096));
    group.bench_function("sha256_4k", |b| {
        let data = vec![0xabu8; 4096];
        b.iter(|| std::hint::black_box(sha256(&data)));
    });
    group.bench_function("hmac_sha256_4k", |b| {
        let data = vec![0xabu8; 4096];
        b.iter(|| std::hint::black_box(hmac_sha256(b"key", &data)));
    });

    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
