//! The tentpole guarantee of the parallel runner: `experiments` output is
//! byte-identical at any thread count.
//!
//! Renders every sweep-backed table — the figure sweep (figs. 4/5/14/15/16
//! and the CSV export) and the end-to-end sweep (fig. 17) — from a
//! 1-thread run and from a 4-thread run of the same reduced matrix, and
//! diffs the bytes. Any dependence of a cell's result on worker identity,
//! scheduling order, or result-collection order fails this test.

use tnpu_bench::{experiments, tables};

/// One conv model and one gather-heavy model, at 1 and 2 NPUs: small
/// enough to run twice in a test, wide enough that 4 workers genuinely
/// interleave (24 figure cells + 12 end-to-end cells).
const MODELS: [&str; 2] = ["df", "ncf"];
const COUNTS: [usize; 2] = [1, 2];

fn render_everything(threads: usize) -> String {
    let (swept, pool) = experiments::sweep_with_threads(threads, &MODELS, &COUNTS);
    // The figure sweep batches cells into one job per (model, config)
    // trace group, so the pool width clamps to the group count while the
    // cell count still covers the whole matrix.
    assert_eq!(pool.threads, threads.min(MODELS.len() * 2));
    assert_eq!(pool.cells, MODELS.len() * 2 * 3 * COUNTS.len());
    let (e2e, _) = experiments::fig17_sweep_with_threads(threads, &MODELS);
    let mut out = String::new();
    out += &tables::fig14(&swept, &MODELS);
    out += &tables::fig5(&swept, &MODELS);
    out += &tables::fig15(&swept, &MODELS);
    out += &tables::fig16(&swept, &MODELS, &COUNTS);
    out += &tables::csv(&swept, &MODELS);
    out += &tables::fig17_from(&e2e, &MODELS);
    out
}

#[test]
fn output_is_byte_identical_at_any_thread_count() {
    let serial = render_everything(1);
    let parallel = render_everything(4);
    assert!(
        serial == parallel,
        "1-thread and 4-thread runs diverged:\n--- 1 thread ---\n{serial}\n--- 4 threads ---\n{parallel}"
    );
    // Sanity: the render actually contains the swept data.
    assert!(serial.contains("df") && serial.contains("ncf"));
    assert!(serial.contains("model,config,scheme"));
}
