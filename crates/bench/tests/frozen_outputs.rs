//! Frozen-output guard: with fault injection disabled, the refactors that
//! carried the recovery layer in (the `MacMismatch` cause discriminant,
//! the runner's retry/sweep plumbing) must not move a single byte of the
//! outputs the repo has already published.
//!
//! The renders pinned against goldens under `tests/golden/`:
//!
//! * the full df+ncf adversarial attack matrix (56 cells),
//! * the reduced serving grid,
//! * the reduced dynamic-dataflow crossover grid, and
//! * the reduced experiment sweep the determinism test drives (the same
//!   tables `results_full.txt` is built from, at df/ncf scale).
//!
//! To re-bless after an *intentional* output change:
//!
//! ```text
//! TNPU_BLESS=1 cargo test -p tnpu-bench --release --test frozen_outputs
//! ```

use std::path::PathBuf;

use tnpu_bench::{attacks, decode, experiments, serving, tables};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the committed golden, or rewrite the golden
/// when `TNPU_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("TNPU_BLESS").is_some() {
        std::fs::write(&path, actual).expect("bless golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with TNPU_BLESS=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name} drifted from its golden; if the change is intentional, \
         re-bless with TNPU_BLESS=1\n--- golden ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn attack_matrix_render_is_frozen() {
    let (cells, _) = attacks::matrix_with_threads(4, &attacks::DEFAULT_MODELS);
    assert_eq!(cells.len(), 56, "df+ncf matrix is 56 cells");
    check_golden("attacks_df_ncf.txt", &attacks::render(&cells));
}

#[test]
fn reduced_serving_table_is_frozen() {
    // The quick serving grid (2 arrivals x 2 policies x 4 schemes at the
    // reduced request count): latency percentiles, throughput, and the
    // engine-charged context-switch cycles must not drift.
    let (reports, _) = serving::serve_with_threads(4, true);
    assert_eq!(reports.len(), 16, "serving grid is 16 cells");
    check_golden("serve_reduced.txt", &serving::render_serve(&reports));
}

#[test]
fn reduced_decode_grid_is_frozen() {
    // The quick dynamic-dataflow crossover: per-step replay cycles for
    // both workloads at every scheme, plus the functional lifecycle
    // columns (sweeps, version-table growth, preemption bill) and the
    // `<<` crossover markers must not drift.
    let ((replays, lifecycles), _) = decode::crossover_with_threads(4, true);
    assert_eq!(replays.len(), 16, "quick replay grid is 16 cells");
    assert_eq!(lifecycles.len(), 8, "quick lifecycle grid is 8 cells");
    check_golden(
        "decode_reduced.txt",
        &decode::render_crossover(&replays, &lifecycles),
    );
}

#[test]
fn reduced_sweep_render_is_frozen() {
    // The same reduced matrix the determinism test runs: every
    // sweep-backed table at df/ncf scale.
    const MODELS: [&str; 2] = ["df", "ncf"];
    const COUNTS: [usize; 2] = [1, 2];
    let (swept, _) = experiments::sweep_with_threads(4, &MODELS, &COUNTS);
    let (e2e, _) = experiments::fig17_sweep_with_threads(4, &MODELS);
    let mut out = String::new();
    out += &tables::fig14(&swept, &MODELS);
    out += &tables::fig5(&swept, &MODELS);
    out += &tables::fig15(&swept, &MODELS);
    out += &tables::fig16(&swept, &MODELS, &COUNTS);
    out += &tables::csv(&swept, &MODELS);
    out += &tables::fig17_from(&e2e, &MODELS);
    check_golden("sweep_df_ncf.txt", &out);
}
