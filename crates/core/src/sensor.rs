//! The sensor-to-enclave leg of the end-to-end pipeline (paper Fig. 3,
//! §III-A).
//!
//! "To securely collect data, sensors encrypt the data and securely
//! transfer them to the CPU memory" — the paper cites Waspmote-class
//! devices with an AES engine plus a MAC for integrity. This module models
//! that link: a [`Sensor`] shares a session key with the enclave,
//! encrypts each sample in counter mode with a monotonically increasing
//! sequence number, and appends an HMAC over (ciphertext, sequence). The
//! enclave-side [`SensorReceiver`] verifies, decrypts, and rejects
//! replayed or reordered frames.

use tnpu_crypto::ctr::CtrMode;
use tnpu_crypto::hmac::HmacSha256;
use tnpu_crypto::Key128;
use tnpu_sim::BLOCK_SIZE;

/// One encrypted, authenticated sensor frame on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensorFrame {
    /// Monotone sequence number (the anti-replay nonce).
    pub sequence: u64,
    /// Counter-mode ciphertext of the sample.
    pub payload: Vec<u8>,
    /// HMAC over (sequence, payload).
    pub tag: [u8; 32],
}

/// Why a frame was rejected by the enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorError {
    /// The MAC did not verify (tampered in transit).
    BadTag,
    /// The sequence number is not strictly newer than the last accepted
    /// frame (replay or reordering).
    StaleSequence {
        /// Sequence carried by the frame.
        got: u64,
        /// Lowest acceptable sequence.
        expected_above: u64,
    },
}

impl std::fmt::Display for SensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensorError::BadTag => write!(f, "sensor frame failed authentication"),
            SensorError::StaleSequence {
                got,
                expected_above,
            } => {
                write!(f, "stale sensor frame: seq {got}, need > {expected_above}")
            }
        }
    }
}

impl std::error::Error for SensorError {}

fn frame_tag(mac_key: &Key128, sequence: u64, payload: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(&mac_key.0);
    mac.update(&sequence.to_le_bytes());
    mac.update(payload);
    mac.finalize()
}

fn apply_stream(cipher: &CtrMode, sequence: u64, data: &mut [u8]) {
    // Counter-mode over the frame: one 64 B pad block per chunk, keyed by
    // (sequence, chunk index) so pads never repeat across frames.
    for (i, chunk) in data.chunks_mut(BLOCK_SIZE).enumerate() {
        let mut block = [0u8; BLOCK_SIZE];
        block[..chunk.len()].copy_from_slice(chunk);
        cipher.apply(i as u64, sequence, &mut block);
        chunk.copy_from_slice(&block[..chunk.len()]);
    }
}

/// The sensor device (Waspmote-class: AES engine + MAC).
pub struct Sensor {
    cipher: CtrMode,
    mac_key: Key128,
    next_sequence: u64,
}

impl std::fmt::Debug for Sensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sensor")
            .field("next_sequence", &self.next_sequence)
            .finish_non_exhaustive()
    }
}

impl Sensor {
    /// A sensor sharing `session_key` with the enclave.
    #[must_use]
    pub fn new(session_key: Key128) -> Self {
        let mut mac_label = b"sensor-mac".to_vec();
        mac_label.extend_from_slice(&session_key.0);
        Sensor {
            cipher: CtrMode::new(session_key),
            mac_key: Key128::derive(&mac_label),
            next_sequence: 1,
        }
    }

    /// Encrypt and authenticate one sample.
    pub fn capture(&mut self, sample: &[u8]) -> SensorFrame {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        let mut payload = sample.to_vec();
        apply_stream(&self.cipher, sequence, &mut payload);
        let tag = frame_tag(&self.mac_key, sequence, &payload);
        SensorFrame {
            sequence,
            payload,
            tag,
        }
    }
}

/// The enclave-side receiver: verifies, decrypts, enforces freshness.
pub struct SensorReceiver {
    cipher: CtrMode,
    mac_key: Key128,
    last_sequence: u64,
}

impl std::fmt::Debug for SensorReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SensorReceiver")
            .field("last_sequence", &self.last_sequence)
            .finish_non_exhaustive()
    }
}

impl SensorReceiver {
    /// A receiver sharing `session_key` with the sensor.
    #[must_use]
    pub fn new(session_key: Key128) -> Self {
        let mut mac_label = b"sensor-mac".to_vec();
        mac_label.extend_from_slice(&session_key.0);
        SensorReceiver {
            cipher: CtrMode::new(session_key),
            mac_key: Key128::derive(&mac_label),
            last_sequence: 0,
        }
    }

    /// Verify and decrypt a frame; the plaintext is ready to become the
    /// model's input tensor (written onward through the `ts_write` path).
    ///
    /// # Errors
    ///
    /// [`SensorError::BadTag`] on tampering, [`SensorError::StaleSequence`]
    /// on replay/reorder. Failed frames do not advance the freshness state.
    pub fn receive(&mut self, frame: &SensorFrame) -> Result<Vec<u8>, SensorError> {
        if frame_tag(&self.mac_key, frame.sequence, &frame.payload) != frame.tag {
            return Err(SensorError::BadTag);
        }
        if frame.sequence <= self.last_sequence {
            return Err(SensorError::StaleSequence {
                got: frame.sequence,
                expected_above: self.last_sequence,
            });
        }
        self.last_sequence = frame.sequence;
        let mut plaintext = frame.payload.clone();
        apply_stream(&self.cipher, frame.sequence, &mut plaintext);
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Sensor, SensorReceiver) {
        let key = Key128::derive(b"sensor-session");
        (Sensor::new(key), SensorReceiver::new(key))
    }

    #[test]
    fn roundtrip() {
        let (mut sensor, mut enclave) = pair();
        let sample = b"camera-frame-0042".to_vec();
        let frame = sensor.capture(&sample);
        assert_ne!(frame.payload, sample, "wire data is ciphertext");
        assert_eq!(enclave.receive(&frame).expect("verifies"), sample);
    }

    #[test]
    fn stream_of_frames() {
        let (mut sensor, mut enclave) = pair();
        for i in 0..100u32 {
            let sample = i.to_le_bytes().to_vec();
            let frame = sensor.capture(&sample);
            assert_eq!(enclave.receive(&frame).expect("verifies"), sample);
        }
    }

    #[test]
    fn tampered_frame_rejected() {
        let (mut sensor, mut enclave) = pair();
        let mut frame = sensor.capture(b"sample");
        frame.payload[0] ^= 1;
        assert_eq!(enclave.receive(&frame), Err(SensorError::BadTag));
    }

    #[test]
    fn replayed_frame_rejected() {
        let (mut sensor, mut enclave) = pair();
        let frame = sensor.capture(b"sample");
        enclave.receive(&frame).expect("first delivery verifies");
        assert!(matches!(
            enclave.receive(&frame),
            Err(SensorError::StaleSequence { .. })
        ));
    }

    #[test]
    fn reordered_frames_rejected() {
        let (mut sensor, mut enclave) = pair();
        let first = sensor.capture(b"one");
        let second = sensor.capture(b"two");
        enclave.receive(&second).expect("newest verifies");
        assert!(matches!(
            enclave.receive(&first),
            Err(SensorError::StaleSequence { .. })
        ));
    }

    #[test]
    fn failed_frames_do_not_burn_freshness() {
        let (mut sensor, mut enclave) = pair();
        let good = sensor.capture(b"good");
        let mut bad = good.clone();
        bad.payload[3] ^= 0xf0;
        assert_eq!(enclave.receive(&bad), Err(SensorError::BadTag));
        // The genuine frame still goes through.
        assert_eq!(enclave.receive(&good).expect("verifies"), b"good".to_vec());
    }

    #[test]
    fn wrong_session_key_rejected() {
        let mut sensor = Sensor::new(Key128::derive(b"sensor"));
        let mut enclave = SensorReceiver::new(Key128::derive(b"other"));
        let frame = sensor.capture(b"sample");
        assert_eq!(enclave.receive(&frame), Err(SensorError::BadTag));
    }

    #[test]
    fn identical_samples_produce_distinct_ciphertexts() {
        let (mut sensor, _) = pair();
        let a = sensor.capture(b"same-sample");
        let b = sensor.capture(b"same-sample");
        assert_ne!(a.payload, b.payload, "fresh pad per sequence number");
    }
}
