//! Hardware overhead accounting (paper §V-E).
//!
//! TNPU's extra hardware is the tree-less memory-encryption engine:
//! AES-XTS (two parallel AES cores) plus an HMAC engine (a third AES-class
//! core in the paper's accounting), 512 B of buffers for tweak and
//! intermediate values, and the 8 KB MAC cache. The paper totals
//! 0.03632 mm² (0.035 % of an Exynos 990) and 17.73 mW at peak, using
//! CACTI 6.0 for the SRAM and the 40 nm compact AES of Zhang et al. (paper ref 56).
//! We reproduce the accounting with per-component constants calibrated to
//! those sources.

/// Area of one compact AES engine, mm² (Zhang et al., 40 nm).
pub const AES_ENGINE_MM2: f64 = 0.00429;
/// SRAM area per KB, mm² (CACTI-6.0-class small arrays).
pub const SRAM_MM2_PER_KB: f64 = 0.00272;
/// Peak power of one AES engine, mW.
pub const AES_ENGINE_MW: f64 = 4.39;
/// SRAM peak power per KB, mW.
pub const SRAM_MW_PER_KB: f64 = 0.52;
/// Die area of the reference SoC (Samsung Exynos 990), mm².
pub const EXYNOS_990_MM2: f64 = 103.0;

/// Bill of materials for a protection engine.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HwCost {
    /// Engine name.
    pub name: &'static str,
    /// Number of AES-class crypto engines.
    pub aes_engines: u32,
    /// SRAM bytes (caches + buffers).
    pub sram_bytes: u64,
}

impl HwCost {
    /// TNPU's tree-less engine: 3 AES engines (2 for XTS, 1 for the HMAC
    /// datapath), 512 B of tweak/intermediate buffers, and the 8 KB MAC
    /// cache.
    #[must_use]
    pub fn tnpu() -> Self {
        HwCost {
            name: "tnpu-treeless",
            aes_engines: 3,
            sram_bytes: 512 + (8 << 10),
        }
    }

    /// The baseline tree engine: one AES for counter-mode OTPs, one
    /// hash engine, plus 4 KB counter cache + 4 KB hash cache + 8 KB MAC
    /// cache.
    #[must_use]
    pub fn tree_baseline() -> Self {
        HwCost {
            name: "tree-baseline",
            aes_engines: 2,
            sram_bytes: (4 << 10) + (4 << 10) + (8 << 10),
        }
    }

    /// SRAM in KB.
    #[must_use]
    pub fn sram_kb(&self) -> f64 {
        self.sram_bytes as f64 / 1024.0
    }

    /// Total area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        f64::from(self.aes_engines) * AES_ENGINE_MM2 + self.sram_kb() * SRAM_MM2_PER_KB
    }

    /// Total peak power in mW.
    #[must_use]
    pub fn power_mw(&self) -> f64 {
        f64::from(self.aes_engines) * AES_ENGINE_MW + self.sram_kb() * SRAM_MW_PER_KB
    }

    /// Area as a percentage of the Exynos 990 die.
    #[must_use]
    pub fn pct_of_exynos(&self) -> f64 {
        self.area_mm2() / EXYNOS_990_MM2 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tnpu_area_matches_paper_scale() {
        // Paper: 0.03632 mm², 0.035 % of the Exynos 990, 17.73 mW.
        let c = HwCost::tnpu();
        let area = c.area_mm2();
        assert!(
            (0.030..0.045).contains(&area),
            "area {area:.5} mm² out of the paper's range"
        );
        let pct = c.pct_of_exynos();
        assert!((0.025..0.05).contains(&pct), "pct {pct:.4}");
        let power = c.power_mw();
        assert!((13.0..22.0).contains(&power), "power {power:.2} mW");
    }

    #[test]
    fn tnpu_sram_is_mac_cache_plus_buffers() {
        let c = HwCost::tnpu();
        assert_eq!(c.sram_bytes, 8704);
        assert_eq!(c.aes_engines, 3);
    }

    #[test]
    fn baseline_needs_more_sram() {
        // The tree design carries counter + hash caches TNPU does not.
        assert!(HwCost::tree_baseline().sram_bytes > HwCost::tnpu().sram_bytes);
    }
}
