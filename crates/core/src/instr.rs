//! Secure instruction-stream lowering — the compiler pass of §IV-D.
//!
//! "The compiler for NPUs and library writers add the code for tracking
//! version numbers. Since the data flow is statically analyzed in the NPU
//! software, the extra effort is minor and it can be automatically inserted
//! by the compiler" — this module is that pass: it takes a tiled
//! [`ModelPlan`] and emits the extended instruction stream of Fig. 13 (a),
//! where every `mvin`/`mvout` carries its version number and the version
//! table is expanded/merged around each layer's output tensor.
//!
//! The emitted stream is *checkable*: [`replay`] re-executes the version
//! discipline against a fresh [`VersionTable`] and verifies every version
//! annotation, which is exactly the consistency property the hardware MAC
//! check enforces at run time.

use crate::version::{VersionError, VersionTable};
use std::collections::BTreeMap;
use tnpu_npu::dma::Dir;
use tnpu_npu::tiler::ModelPlan;
use tnpu_sim::Cycles;

/// One instruction of the secure stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecureInstr {
    /// CPU-side initialization of a tensor through `ts_write_block`
    /// (Fig. 13 (a) "initialization" lines).
    TsWriteTensor {
        /// Tensor id.
        tensor: u32,
        /// Bytes written.
        bytes: u64,
        /// Version the blocks are MAC'd under.
        version: u64,
    },
    /// Expand a tensor's version entry into tile-unit entries.
    Expand {
        /// Tensor id.
        tensor: u32,
        /// Number of tiles.
        tiles: u32,
    },
    /// `mvin` with its expected version (the extended API).
    MvinV {
        /// Tensor id.
        tensor: u32,
        /// Tile id.
        tile: u32,
        /// Expected version supplied to the MAC verifier.
        version: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Systolic-array computation.
    Compute {
        /// Cycles on the array.
        cycles: Cycles,
    },
    /// `mvout` with the new version (the extended API).
    MvoutV {
        /// Tensor id.
        tensor: u32,
        /// Tile id.
        tile: u32,
        /// Version embedded in the generated MACs.
        version: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Merge a tensor's tile entries back into one (end of layer).
    Merge {
        /// Tensor id.
        tensor: u32,
        /// The merged version.
        version: u64,
    },
    /// Declare a zero-cost aliasing tensor (a `Concat` output: its bytes
    /// were produced by the branch layers' `mvout`s; the alias entry gives
    /// downstream readers a version to pass).
    Alias {
        /// Tensor id.
        tensor: u32,
        /// Version downstream `mvin`s will carry.
        version: u64,
    },
}

/// A lowering failure (would indicate a planner bug).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// Version discipline violated during lowering or replay.
    Version(VersionError),
    /// A replayed `mvin`/`mvout` carried a version the table disagrees
    /// with.
    VersionMismatch {
        /// Tensor id.
        tensor: u32,
        /// Tile id.
        tile: u32,
        /// Version in the stream.
        annotated: u64,
        /// Version the table expects.
        expected: u64,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::Version(e) => write!(f, "version error: {e}"),
            LowerError::VersionMismatch {
                tensor,
                tile,
                annotated,
                expected,
            } => write!(
                f,
                "tensor {tensor} tile {tile}: stream says v{annotated}, table says v{expected}"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<VersionError> for LowerError {
    fn from(e: VersionError) -> Self {
        LowerError::Version(e)
    }
}

/// Lower a tiled plan into the secure instruction stream.
///
/// Input and weight tensors are initialized by the CPU at version 1; each
/// layer expands its output tensor over the tiles its stores touch, bumps a
/// tile's version at its `mvout`, and merges when the layer completes.
///
/// # Errors
///
/// [`LowerError`] if the plan's tile structure violates the version
/// discipline (a planner bug, not a user error).
pub fn lower_secure(plan: &ModelPlan) -> Result<Vec<SecureInstr>, LowerError> {
    let mut table = VersionTable::new();
    let mut stream = Vec::new();
    let layout = &plan.layout;

    // CPU-side initialization: input + every distinct weight tensor.
    table.register(layout.input.id);
    let v = table.bump(layout.input.id)?;
    stream.push(SecureInstr::TsWriteTensor {
        tensor: layout.input.id,
        bytes: layout.input.bytes,
        version: v,
    });
    let mut seen_weights = std::collections::BTreeSet::new();
    for w in layout.weights.iter().flatten() {
        if seen_weights.insert(w.id) {
            table.register(w.id);
            let v = table.bump(w.id)?;
            stream.push(SecureInstr::TsWriteTensor {
                tensor: w.id,
                bytes: w.bytes,
                version: v,
            });
        }
    }
    for out in &layout.outputs {
        table.register(out.id);
    }

    for (li, &(start, end)) in plan.layer_jobs.iter().enumerate() {
        if start == end {
            // Zero-cost aliasing layer (concat): its region was written by
            // the branches; declare the alias version downstream reads use.
            let out_id = layout.outputs[li].id;
            let version = table.bump(out_id)?;
            stream.push(SecureInstr::Alias {
                tensor: out_id,
                version,
            });
            continue;
        }
        let out_id = layout.outputs[li].id;
        // Distinct output tiles this layer stores, in first-store order.
        let mut tile_index: BTreeMap<u32, u32> = BTreeMap::new();
        for job in &plan.jobs[start..end] {
            for s in &job.stores {
                if s.tensor_id == out_id {
                    let next = tile_index.len() as u32;
                    tile_index.entry(s.tile_id).or_insert(next);
                }
            }
        }
        let tiles = tile_index.len().max(1) as u32;
        table.expand(out_id, tiles)?;
        stream.push(SecureInstr::Expand {
            tensor: out_id,
            tiles,
        });
        for job in &plan.jobs[start..end] {
            for load in &job.loads {
                let version = table.version(load.tensor_id, 0)?;
                stream.push(SecureInstr::MvinV {
                    tensor: load.tensor_id,
                    tile: load.tile_id,
                    version,
                    bytes: load.bytes(),
                });
            }
            stream.push(SecureInstr::Compute {
                cycles: job.compute,
            });
            for store in &job.stores {
                debug_assert_eq!(store.dir, Dir::Write);
                let tile = tile_index[&store.tile_id];
                let version = table.bump_tile(store.tensor_id, tile)?;
                stream.push(SecureInstr::MvoutV {
                    tensor: store.tensor_id,
                    tile,
                    version,
                    bytes: store.bytes(),
                });
            }
        }
        let merged = table.merge(out_id)?;
        stream.push(SecureInstr::Merge {
            tensor: out_id,
            version: merged,
        });
    }
    Ok(stream)
}

/// Re-execute a stream's version discipline against a fresh table,
/// verifying every annotation — the software analogue of the hardware MAC
/// check.
///
/// # Errors
///
/// [`LowerError::VersionMismatch`] on the first inconsistent annotation.
pub fn replay(stream: &[SecureInstr]) -> Result<(), LowerError> {
    let mut table = VersionTable::new();
    for instr in stream {
        match *instr {
            SecureInstr::TsWriteTensor {
                tensor, version, ..
            } => {
                table.register(tensor);
                let v = table.bump(tensor)?;
                if v != version {
                    return Err(LowerError::VersionMismatch {
                        tensor,
                        tile: 0,
                        annotated: version,
                        expected: v,
                    });
                }
            }
            SecureInstr::Expand { tensor, tiles } => {
                table.register(tensor);
                table.expand(tensor, tiles)?;
            }
            SecureInstr::MvinV {
                tensor,
                tile,
                version,
                ..
            } => {
                let expected = table.version(tensor, 0)?;
                if expected != version {
                    return Err(LowerError::VersionMismatch {
                        tensor,
                        tile,
                        annotated: version,
                        expected,
                    });
                }
            }
            SecureInstr::Compute { .. } => {}
            SecureInstr::MvoutV {
                tensor,
                tile,
                version,
                ..
            } => {
                let v = table.bump_tile(tensor, tile)?;
                if v != version {
                    return Err(LowerError::VersionMismatch {
                        tensor,
                        tile,
                        annotated: version,
                        expected: v,
                    });
                }
            }
            SecureInstr::Merge { tensor, version } => {
                let merged = table.merge(tensor)?;
                if merged != version {
                    return Err(LowerError::VersionMismatch {
                        tensor,
                        tile: 0,
                        annotated: version,
                        expected: merged,
                    });
                }
            }
            SecureInstr::Alias { tensor, version } => {
                table.register(tensor);
                let v = table.bump(tensor)?;
                if v != version {
                    return Err(LowerError::VersionMismatch {
                        tensor,
                        tile: 0,
                        annotated: version,
                        expected: v,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnpu_npu::alloc::ModelLayout;
    use tnpu_npu::{tiler, NpuConfig};
    use tnpu_sim::Addr;

    fn stream_for(name: &str) -> Vec<SecureInstr> {
        let model = tnpu_models::registry::model(name).expect("registered");
        let npu = NpuConfig::small_npu();
        let layout = ModelLayout::allocate(&model, Addr(0));
        let plan = tiler::plan(&model, &npu, &layout, 3);
        lower_secure(&plan).expect("plan obeys the version discipline")
    }

    #[test]
    fn alexnet_stream_replays_cleanly() {
        let stream = stream_for("alex");
        assert!(stream.len() > 50);
        replay(&stream).expect("stream is self-consistent");
    }

    #[test]
    fn every_model_lowers_and_replays() {
        for name in tnpu_models::registry::MODEL_NAMES {
            let stream = stream_for(name);
            replay(&stream).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn stream_structure_matches_fig13() {
        let stream = stream_for("df");
        // Initialization first: input + weights as ts_write.
        assert!(matches!(stream[0], SecureInstr::TsWriteTensor { .. }));
        // Each layer: Expand ... MvinV/Compute/MvoutV ... Merge.
        let expands = stream
            .iter()
            .filter(|i| matches!(i, SecureInstr::Expand { .. }))
            .count();
        let merges = stream
            .iter()
            .filter(|i| matches!(i, SecureInstr::Merge { .. }))
            .count();
        assert_eq!(expands, merges);
        assert_eq!(expands, 6, "one per deepface layer");
    }

    #[test]
    fn mvins_carry_live_versions() {
        let stream = stream_for("df");
        for i in &stream {
            if let SecureInstr::MvinV { version, .. } = i {
                assert!(*version >= 1, "reads must see initialized data");
            }
        }
    }

    #[test]
    fn tampered_stream_fails_replay() {
        let mut stream = stream_for("df");
        let pos = stream
            .iter()
            .position(|i| matches!(i, SecureInstr::MvinV { .. }))
            .expect("has mvins");
        if let SecureInstr::MvinV { version, .. } = &mut stream[pos] {
            *version += 1; // stale/forged version annotation
        }
        assert!(matches!(
            replay(&stream),
            Err(LowerError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn weights_initialized_once_even_when_tied() {
        let stream = stream_for("tf");
        let inits = stream
            .iter()
            .filter(|i| matches!(i, SecureInstr::TsWriteTensor { .. }))
            .count();
        let model = tnpu_models::registry::model("tf").expect("registered");
        let distinct_weights = model
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.weights_shared_with.is_none() && l.kind.weight_elements() > 0)
            .count();
        assert_eq!(inits, distinct_weights + 1, "+1 for the input tensor");
    }
}
