//! The full secure-NPU-context lifecycle (paper §IV-A/B/E), in one place.
//!
//! A [`SecureNpuSession`] owns the platform state — EEPCM, driver enclave,
//! attestation authority, and one IOMMU per physical NPU — and hands out
//! per-application contexts: the CPU enclave is created and measured, its
//! `NELRANGE` tensor pages are added as tree-less protected pages, the
//! driver enclave assigns an NPU, and that NPU's IOMMU validates every
//! translation against the EEPCM. Attack hooks expose the OS-controlled
//! page table so tests can mount remap attacks against a live context, and
//! a teardown variant that skips the TLB shoot-down so the stale-TLB
//! window the fixed [`destroy_context`](SecureNpuSession::destroy_context)
//! closes stays demonstrable.

use tnpu_crypto::Key128;
use tnpu_tee::attest::{AttestationAuthority, Report};
use tnpu_tee::driver::{DriverError, NpuCommand, NpuDriverEnclave};
use tnpu_tee::enclave::{EnclaveError, EnclaveManager, RegionKind};
use tnpu_tee::epcm::Eepcm;
use tnpu_tee::mmu::Mmu;
use tnpu_tee::pagetable::PageTable;
use tnpu_tee::{Access, AccessError, EnclaveId, Perms, Ppn, Vpn, PAGE_SIZE};

/// Virtual base of the NPU context's protected range.
pub const NELRANGE_BASE: u64 = 0x2000_0000;

/// A live secure NPU context.
#[derive(Debug)]
pub struct NpuContext {
    /// The owning CPU enclave.
    pub enclave: EnclaveId,
    /// The assigned NPU.
    pub npu: usize,
    /// The enclave's measurement at initialization.
    pub measurement: [u8; 32],
    page_table: PageTable,
}

impl NpuContext {
    /// The context's OS-controlled page table — the attack hook (the OS
    /// may rewrite it at any time).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }
}

/// Errors of the session API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Enclave lifecycle failure.
    Enclave(EnclaveError),
    /// Driver protocol failure.
    Driver(DriverError),
    /// Access-control violation.
    Access(AccessError),
    /// The context's enclave was already torn down: attestation,
    /// translation, and (re-)destruction against it are refused.
    DeadContext(EnclaveId),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Enclave(e) => write!(f, "enclave: {e}"),
            SessionError::Driver(e) => write!(f, "driver: {e}"),
            SessionError::Access(e) => write!(f, "access: {e}"),
            SessionError::DeadContext(id) => {
                write!(f, "context of {id} was already torn down")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EnclaveError> for SessionError {
    fn from(e: EnclaveError) -> Self {
        SessionError::Enclave(e)
    }
}
impl From<DriverError> for SessionError {
    fn from(e: DriverError) -> Self {
        SessionError::Driver(e)
    }
}
impl From<AccessError> for SessionError {
    fn from(e: AccessError) -> Self {
        SessionError::Access(e)
    }
}

/// Platform state for secure NPU execution.
pub struct SecureNpuSession {
    manager: EnclaveManager,
    eepcm: Eepcm,
    driver: NpuDriverEnclave,
    authority: AttestationAuthority,
    /// One IOMMU per physical NPU. The IOMMU is NPU-side hardware: it
    /// survives the tenant it was validated for, which is exactly why
    /// teardown must shoot its TLB down before the NPU is recycled.
    iommus: Vec<Mmu>,
    next_ppn: u64,
}

impl std::fmt::Debug for SecureNpuSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureNpuSession")
            .field("protected_pages", &self.eepcm.protected_pages())
            .field("npus", &self.iommus.len())
            .finish_non_exhaustive()
    }
}

impl SecureNpuSession {
    /// Boot the platform: `npu_count` NPUs behind a driver enclave, an
    /// attestation authority fused with `device_key`. Each NPU's IOMMU
    /// boots parked on the driver enclave until a context claims it.
    #[must_use]
    pub fn new(device_key: Key128, npu_count: usize) -> Self {
        let mut manager = EnclaveManager::new();
        let driver_id = manager.create();
        SecureNpuSession {
            manager,
            eepcm: Eepcm::new(),
            driver: NpuDriverEnclave::new(driver_id, npu_count),
            authority: AttestationAuthority::new(device_key),
            iommus: (0..npu_count).map(|_| Mmu::new(driver_id, 64)).collect(),
            next_ppn: 0x1000,
        }
    }

    fn fresh_ppn(&mut self) -> Ppn {
        let p = Ppn(self.next_ppn);
        self.next_ppn += 1;
        p
    }

    /// Create a measured enclave running `binary`, give it `tensor_pages`
    /// tree-less pages at `NELRANGE`, and assign it an NPU, re-pointing
    /// that NPU's IOMMU at the new enclave.
    ///
    /// # Errors
    ///
    /// [`SessionError`] if pages cannot be donated or no NPU is free.
    pub fn create_context(
        &mut self,
        binary: &[u8],
        tensor_pages: usize,
    ) -> Result<NpuContext, SessionError> {
        let enclave = self.manager.create();
        let mut page_table = PageTable::new();
        // Code page(s) in the fully-protected region.
        let code_ppn = self.fresh_ppn();
        self.manager.add_page(
            &mut self.eepcm,
            &mut page_table,
            enclave,
            Vpn(0x100),
            code_ppn,
            RegionKind::FullyProtected,
            Perms::RX,
            binary,
        )?;
        // Tensor pages in the tree-less region at NELRANGE.
        let first_vpn = NELRANGE_BASE / PAGE_SIZE;
        for i in 0..tensor_pages as u64 {
            let ppn = self.fresh_ppn();
            self.manager.add_page(
                &mut self.eepcm,
                &mut page_table,
                enclave,
                Vpn(first_vpn + i),
                ppn,
                RegionKind::Treeless,
                Perms::RW,
                b"",
            )?;
        }
        self.manager.set_nelrange(
            enclave,
            NELRANGE_BASE..NELRANGE_BASE + tensor_pages as u64 * PAGE_SIZE,
        )?;
        let measurement = self.manager.initialize(enclave)?;
        let npu = self.driver.acquire(enclave)?;
        // Re-owning the IOMMU does not flush its TLB (distinct hardware
        // state); the shoot-down is destroy_context's job. A correctly
        // torn-down predecessor left the TLB empty.
        // tnpu-lint: allow(panic-path) — the driver only hands out NPU
        // indices < pool size, and `iommus` is sized to the pool.
        self.iommus[npu].assign(enclave);
        Ok(NpuContext {
            enclave,
            npu,
            measurement,
            page_table,
        })
    }

    /// Produce an attestation report for a context.
    ///
    /// # Errors
    ///
    /// [`SessionError::DeadContext`] if the context's enclave was torn
    /// down — a destroyed context must not be attestable. (This used to
    /// panic via `.expect("live context")`.)
    pub fn attest(&self, ctx: &NpuContext, nonce: [u8; 16]) -> Result<Report, SessionError> {
        let enclave = self
            .manager
            .get(ctx.enclave)
            .ok_or(SessionError::DeadContext(ctx.enclave))?;
        Ok(self.authority.report(enclave, nonce))
    }

    /// Verify a report against an expected measurement.
    #[must_use]
    pub fn verify(&self, report: &Report, expected: &[u8; 32], nonce: &[u8; 16]) -> bool {
        self.authority.verify(report, expected, nonce)
    }

    /// Translate an NPU-side access through the NPU's IOMMU with EEPCM
    /// validation (Fig. 11).
    ///
    /// # Errors
    ///
    /// [`SessionError::Access`] on any validation failure;
    /// [`SessionError::DeadContext`] if the context was torn down.
    pub fn iommu_translate(
        &mut self,
        ctx: &mut NpuContext,
        vpn: Vpn,
        access: Access,
    ) -> Result<Ppn, SessionError> {
        if self.manager.get(ctx.enclave).is_none() {
            return Err(SessionError::DeadContext(ctx.enclave));
        }
        // tnpu-lint: allow(panic-path) — `ctx.npu` was assigned by the
        // driver at create_context time and is < pool size by construction.
        Ok(self.iommus[ctx.npu].translate(&ctx.page_table, &self.eepcm, vpn, access)?)
    }

    /// Whether the NPU's IOMMU currently caches a translation for `vpn`
    /// (observability for shoot-down tests and the serving layer).
    #[must_use]
    pub fn iommu_cached(&self, npu: usize, vpn: Vpn) -> bool {
        self.iommus[npu].cached(vpn)
    }

    /// Shoot down the NPU's IOMMU TLB (the OS/driver can always do this).
    ///
    /// # Panics
    ///
    /// Panics if `npu` is not an index into the session's NPU pool.
    pub fn flush_iommu(&mut self, npu: usize) {
        // tnpu-lint: allow(panic-path) — documented contract above: `npu`
        // must index the pool; an out-of-range shoot-down is caller error.
        self.iommus[npu].flush_tlb();
    }

    /// Issue an NPU command through the driver enclave (owner-checked).
    ///
    /// # Errors
    ///
    /// [`SessionError::Driver`] if the caller does not own the NPU.
    pub fn issue(
        &mut self,
        caller: EnclaveId,
        ctx: &NpuContext,
        command: NpuCommand,
    ) -> Result<(), SessionError> {
        Ok(self.driver.issue(caller, ctx.npu, command)?)
    }

    /// Tear a context down: release its NPU (owner-checked), shoot down
    /// that NPU's IOMMU TLB *before* the NPU can be recycled, destroy the
    /// enclave, and release its EEPCM frames.
    ///
    /// The shoot-down is the load-bearing step: the IOMMU belongs to the
    /// NPU, not the tenant, so translations validated for the dead enclave
    /// would otherwise keep serving its (now freed and reassignable)
    /// frames to the next tenant.
    ///
    /// # Errors
    ///
    /// [`SessionError::DeadContext`] if the context was already destroyed;
    /// [`SessionError::Driver`] if the context does not own its NPU (the
    /// teardown then does nothing — a caller holding a forged context must
    /// not be able to flush or free a victim's state).
    pub fn destroy_context(&mut self, ctx: &NpuContext) -> Result<(), SessionError> {
        self.teardown(ctx, true)
    }

    /// Attack hook: the pre-fix teardown, which recycles the NPU without
    /// shooting down its IOMMU TLB. Exists so regression tests and the
    /// adversary matrix can demonstrate the stale-TLB window that
    /// [`destroy_context`](SecureNpuSession::destroy_context) closes.
    ///
    /// # Errors
    ///
    /// As [`destroy_context`](SecureNpuSession::destroy_context).
    pub fn destroy_context_skipping_shootdown(
        &mut self,
        ctx: &NpuContext,
    ) -> Result<(), SessionError> {
        self.teardown(ctx, false)
    }

    fn teardown(&mut self, ctx: &NpuContext, shootdown: bool) -> Result<(), SessionError> {
        if self.manager.get(ctx.enclave).is_none() {
            return Err(SessionError::DeadContext(ctx.enclave));
        }
        // Owner check first: only the NPU's owner may tear the context
        // down. On NotOwner nothing has been touched yet.
        self.driver.release(ctx.enclave, ctx.npu)?;
        if shootdown {
            // tnpu-lint: allow(panic-path) — `ctx.npu` came from the
            // driver and indexes the pool; release() above verified it.
            self.iommus[ctx.npu].flush_tlb();
        }
        let dead = self.manager.destroy(ctx.enclave)?;
        for &(_, ppn, _) in dead.pages() {
            self.eepcm.release(ppn, ctx.enclave)?;
        }
        Ok(())
    }

    /// Tear down a context by value (the original API; now the full
    /// teardown of [`destroy_context`](SecureNpuSession::destroy_context)).
    ///
    /// # Errors
    ///
    /// As [`destroy_context`](SecureNpuSession::destroy_context).
    pub fn release(&mut self, ctx: NpuContext) -> Result<(), SessionError> {
        self.destroy_context(&ctx)
    }
}

/// Probe the recycled-NPU stale-translation window end to end: tenant A
/// warms NPU 0's IOMMU, is torn down (with or without the TLB shoot-down),
/// tenant B recycles the NPU — and B's first translation of the same
/// `NELRANGE` page either re-validates to B's own frame (window closed,
/// `true`) or hits A's stale, freed frame (window open, `false`).
///
/// With `shootdown` the fixed teardown runs and the probe must return
/// `true`; without it the pre-fix behavior is replayed and the probe
/// demonstrates the leak. The attack matrix runs both.
///
/// # Panics
///
/// Panics if the harness itself misbehaves (contexts fail to build).
#[must_use]
pub fn stale_tlb_probe(shootdown: bool) -> bool {
    // The expects below are the documented "# Panics" contract: a probe
    // whose scaffolding fails must abort loudly, not report a verdict.
    let mut s = SecureNpuSession::new(Key128::derive(b"stale-tlb-probe"), 1);
    let mut a = s.create_context(b"tenant-a", 1).expect("tenant A"); // tnpu-lint: allow(panic-path) — documented probe scaffolding
    let vpn = Vpn(NELRANGE_BASE / PAGE_SIZE);
    let a_frame = s
        .iommu_translate(&mut a, vpn, Access::Write)
        .expect("A validates its tensor page"); // tnpu-lint: allow(panic-path) — documented probe scaffolding
    if shootdown {
        s.destroy_context(&a).expect("teardown"); // tnpu-lint: allow(panic-path) — documented probe scaffolding
    } else {
        s.destroy_context_skipping_shootdown(&a)
            .expect("teardown without shoot-down"); // tnpu-lint: allow(panic-path) — documented probe scaffolding
    }
    let mut b = s.create_context(b"tenant-b", 1).expect("tenant B recycles"); // tnpu-lint: allow(panic-path) — documented probe scaffolding
    let b_frame = s
        .iommu_translate(&mut b, vpn, Access::Write)
        .expect("B's translation resolves"); // tnpu-lint: allow(panic-path) — documented probe scaffolding
    b_frame != a_frame
}

/// Probe the refusal taxonomy end to end: each misuse must be refused by
/// the *right* layer with the matching [`SessionError`] variant. A refusal
/// for the wrong reason would mean a different layer caught it — defense
/// in depth eroding silently while everything still "fails closed".
///
/// Four refusals are exercised: the OS remapping one tenant's page onto
/// another's frame ([`SessionError::Access`]), NPU exhaustion
/// ([`SessionError::Driver`]), use of a destroyed context
/// ([`SessionError::DeadContext`]), and a misbehaving frame allocator
/// re-issuing an owned frame ([`SessionError::Enclave`]). Returns `true`
/// only when every refusal carries its expected variant.
#[must_use]
pub fn refusal_taxonomy_probe() -> bool {
    let mut s = SecureNpuSession::new(Key128::derive(b"refusal-probe"), 2);
    let Ok(a) = s.create_context(b"tenant-a", 1) else {
        return false;
    };
    let Ok(mut b) = s.create_context(b"tenant-b", 1) else {
        return false;
    };
    // Access: the OS remaps B's tensor page onto A's first tensor frame.
    // The walk succeeds; EEPCM ownership validation must be what refuses.
    let vpn = Vpn(NELRANGE_BASE / PAGE_SIZE);
    b.page_table_mut().map(vpn, Ppn(0x1001));
    s.flush_iommu(b.npu);
    let access = matches!(
        s.iommu_translate(&mut b, vpn, Access::Read),
        Err(SessionError::Access(AccessError::WrongOwner { .. }))
    );
    // Driver: both NPUs are taken, so a third tenant must be refused by
    // the driver enclave, not by anything later in the pipeline.
    let driver = matches!(
        s.create_context(b"tenant-c", 1),
        Err(SessionError::Driver(DriverError::NoFreeNpu))
    );
    // DeadContext: any use of a torn-down context.
    if s.destroy_context(&a).is_err() {
        return false;
    }
    let dead = matches!(s.attest(&a, [0u8; 16]), Err(SessionError::DeadContext(_)));
    // Enclave: rewind the frame allocator onto B's still-owned code frame
    // (a buggy or malicious allocator); the enclave manager must refuse
    // the donation rather than silently double-mapping protected memory.
    s.next_ppn = 0x1002;
    let enclave = matches!(
        s.create_context(b"tenant-d", 1),
        Err(SessionError::Enclave(EnclaveError::PageBusy(_)))
    );
    access && driver && dead && enclave
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> SecureNpuSession {
        SecureNpuSession::new(Key128::derive(b"device"), 2)
    }

    #[test]
    fn full_lifecycle() {
        let mut s = session();
        let mut ctx = s.create_context(b"ml-app", 4).expect("context");
        // Attest.
        let nonce = [9u8; 16];
        let report = s.attest(&ctx, nonce).expect("live context");
        assert!(s.verify(&report, &ctx.measurement, &nonce));
        // Legitimate tensor access through the IOMMU.
        let vpn = Vpn(NELRANGE_BASE / PAGE_SIZE);
        s.iommu_translate(&mut ctx, vpn, Access::Write)
            .expect("valid");
        // Command the NPU.
        s.issue(ctx.enclave, &ctx, NpuCommand::Mvin { version: 1 })
            .expect("owner");
        s.release(ctx).expect("owner releases");
    }

    #[test]
    fn two_contexts_are_isolated() {
        let mut s = session();
        let ctx_a = s.create_context(b"app-a", 2).expect("context a");
        let mut ctx_b = s.create_context(b"app-b", 2).expect("context b");
        assert_ne!(ctx_a.npu, ctx_b.npu);
        assert_ne!(ctx_a.measurement, ctx_b.measurement);
        // B's enclave cannot command A's NPU.
        assert!(matches!(
            s.issue(ctx_b.enclave, &ctx_a, NpuCommand::Compute),
            Err(SessionError::Driver(DriverError::NotOwner { .. }))
        ));
        // The OS remaps B's tensor page to A's frame: B's IOMMU rejects it.
        let vpn = Vpn(NELRANGE_BASE / PAGE_SIZE);
        let a_frame = Ppn(0x1001); // A's first tensor page frame
        ctx_b.page_table_mut().map(vpn, a_frame);
        s.flush_iommu(ctx_b.npu);
        assert!(matches!(
            s.iommu_translate(&mut ctx_b, vpn, Access::Read),
            Err(SessionError::Access(AccessError::WrongOwner { .. }))
        ));
    }

    #[test]
    fn npu_exhaustion_and_reuse() {
        let mut s = session();
        let a = s.create_context(b"a", 1).expect("a");
        let _b = s.create_context(b"b", 1).expect("b");
        assert!(matches!(
            s.create_context(b"c", 1),
            Err(SessionError::Driver(DriverError::NoFreeNpu))
        ));
        s.release(a).expect("release");
        let _c = s.create_context(b"c", 1).expect("npu recycled");
    }

    #[test]
    fn attestation_distinguishes_binaries() {
        let mut s = session();
        let genuine = s.create_context(b"genuine-v1", 1).expect("context");
        let trojan = s.create_context(b"trojan-v1", 1).expect("context");
        let nonce = [1u8; 16];
        let report = s.attest(&trojan, nonce).expect("live context");
        assert!(!s.verify(&report, &genuine.measurement, &nonce));
    }

    #[test]
    fn dead_context_operations_are_typed_errors() {
        // Regression test: attest on a destroyed context used to panic via
        // `.expect("live context")`; translate silently kept working
        // through the cached TLB; destroy double-freed. All three must be
        // typed DeadContext errors now.
        let mut s = session();
        let mut ctx = s.create_context(b"app", 1).expect("context");
        let id = ctx.enclave;
        s.destroy_context(&ctx).expect("first teardown");
        assert_eq!(
            s.attest(&ctx, [0u8; 16]).unwrap_err(),
            SessionError::DeadContext(id)
        );
        let vpn = Vpn(NELRANGE_BASE / PAGE_SIZE);
        assert_eq!(
            s.iommu_translate(&mut ctx, vpn, Access::Read).unwrap_err(),
            SessionError::DeadContext(id)
        );
        assert_eq!(
            s.destroy_context(&ctx).unwrap_err(),
            SessionError::DeadContext(id)
        );
        assert!(SessionError::DeadContext(id)
            .to_string()
            .contains("torn down"));
    }

    #[test]
    fn destroy_requires_npu_ownership() {
        // The destroy_context NPU-ownership audit: a context whose NPU was
        // handed to someone else (forged/stale handle) must not be able to
        // tear anything down — and the refusal must leave the real owner's
        // state intact.
        let mut s = session();
        let ctx_a = s.create_context(b"app-a", 1).expect("a");
        let ctx_b = s.create_context(b"app-b", 1).expect("b");
        // Forge a context claiming B's enclave but A's NPU.
        let forged = NpuContext {
            enclave: ctx_b.enclave,
            npu: ctx_a.npu,
            measurement: ctx_b.measurement,
            page_table: PageTable::new(),
        };
        assert!(matches!(
            s.destroy_context(&forged),
            Err(SessionError::Driver(DriverError::NotOwner { .. }))
        ));
        // Both genuine contexts still fully work.
        assert!(s.attest(&ctx_a, [2u8; 16]).is_ok());
        assert!(s.attest(&ctx_b, [2u8; 16]).is_ok());
        s.destroy_context(&ctx_a).expect("a tears down");
        s.destroy_context(&ctx_b).expect("b tears down");
    }

    #[test]
    fn destroy_releases_frames_for_reuse() {
        let mut s = session();
        let ctx = s.create_context(b"app", 2).expect("context");
        let pages_live = format!("{s:?}");
        assert!(pages_live.contains("protected_pages: 3"), "{pages_live}");
        s.destroy_context(&ctx).expect("teardown");
        let pages_after = format!("{s:?}");
        assert!(pages_after.contains("protected_pages: 0"), "{pages_after}");
    }

    #[test]
    fn recycled_npu_cannot_hit_stale_translation() {
        // Regression test for the stale-TLB window: without the teardown
        // shoot-down, tenant B's first translation on the recycled NPU
        // hits tenant A's freed frame straight from the TLB.
        assert!(
            !stale_tlb_probe(false),
            "pre-fix teardown must demonstrate the stale hit"
        );
        assert!(
            stale_tlb_probe(true),
            "destroy_context's shoot-down must close the window"
        );
    }

    #[test]
    fn destroyed_tenants_translation_is_not_cached() {
        let mut s = SecureNpuSession::new(Key128::derive(b"d"), 1);
        let mut a = s.create_context(b"a", 1).expect("a");
        let vpn = Vpn(NELRANGE_BASE / PAGE_SIZE);
        s.iommu_translate(&mut a, vpn, Access::Read).expect("warm");
        assert!(s.iommu_cached(a.npu, vpn));
        let npu = a.npu;
        s.destroy_context(&a).expect("teardown");
        assert!(!s.iommu_cached(npu, vpn), "shoot-down cleared the TLB");
    }
}
