//! The full secure-NPU-context lifecycle (paper §IV-A/B/E), in one place.
//!
//! A [`SecureNpuSession`] owns the platform state — EEPCM, driver enclave,
//! attestation authority — and hands out per-application contexts: the CPU
//! enclave is created and measured, its `NELRANGE` tensor pages are added
//! as tree-less protected pages, the driver enclave assigns an NPU, and the
//! IOMMU validates every translation against the EEPCM. Attack hooks expose
//! the OS-controlled page table so tests can mount remap attacks against a
//! live context.

use tnpu_crypto::Key128;
use tnpu_tee::attest::{AttestationAuthority, Report};
use tnpu_tee::driver::{DriverError, NpuCommand, NpuDriverEnclave};
use tnpu_tee::enclave::{EnclaveError, EnclaveManager, RegionKind};
use tnpu_tee::epcm::Eepcm;
use tnpu_tee::mmu::Mmu;
use tnpu_tee::pagetable::PageTable;
use tnpu_tee::{Access, AccessError, EnclaveId, Perms, Ppn, Vpn, PAGE_SIZE};

/// Virtual base of the NPU context's protected range.
pub const NELRANGE_BASE: u64 = 0x2000_0000;

/// A live secure NPU context.
#[derive(Debug)]
pub struct NpuContext {
    /// The owning CPU enclave.
    pub enclave: EnclaveId,
    /// The assigned NPU.
    pub npu: usize,
    /// The enclave's measurement at initialization.
    pub measurement: [u8; 32],
    iommu: Mmu,
    page_table: PageTable,
}

impl NpuContext {
    /// The context's OS-controlled page table — the attack hook (the OS
    /// may rewrite it at any time).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Flush the IOMMU TLB (context switch / shoot-down).
    pub fn flush_tlb(&mut self) {
        self.iommu.flush_tlb();
    }
}

/// Errors of the session API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Enclave lifecycle failure.
    Enclave(EnclaveError),
    /// Driver protocol failure.
    Driver(DriverError),
    /// Access-control violation.
    Access(AccessError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Enclave(e) => write!(f, "enclave: {e}"),
            SessionError::Driver(e) => write!(f, "driver: {e}"),
            SessionError::Access(e) => write!(f, "access: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EnclaveError> for SessionError {
    fn from(e: EnclaveError) -> Self {
        SessionError::Enclave(e)
    }
}
impl From<DriverError> for SessionError {
    fn from(e: DriverError) -> Self {
        SessionError::Driver(e)
    }
}
impl From<AccessError> for SessionError {
    fn from(e: AccessError) -> Self {
        SessionError::Access(e)
    }
}

/// Platform state for secure NPU execution.
pub struct SecureNpuSession {
    manager: EnclaveManager,
    eepcm: Eepcm,
    driver: NpuDriverEnclave,
    authority: AttestationAuthority,
    next_ppn: u64,
}

impl std::fmt::Debug for SecureNpuSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureNpuSession")
            .field("protected_pages", &self.eepcm.protected_pages())
            .finish_non_exhaustive()
    }
}

impl SecureNpuSession {
    /// Boot the platform: `npu_count` NPUs behind a driver enclave, an
    /// attestation authority fused with `device_key`.
    #[must_use]
    pub fn new(device_key: Key128, npu_count: usize) -> Self {
        let mut manager = EnclaveManager::new();
        let driver_id = manager.create();
        SecureNpuSession {
            manager,
            eepcm: Eepcm::new(),
            driver: NpuDriverEnclave::new(driver_id, npu_count),
            authority: AttestationAuthority::new(device_key),
            next_ppn: 0x1000,
        }
    }

    fn fresh_ppn(&mut self) -> Ppn {
        let p = Ppn(self.next_ppn);
        self.next_ppn += 1;
        p
    }

    /// Create a measured enclave running `binary`, give it `tensor_pages`
    /// tree-less pages at `NELRANGE`, and assign it an NPU.
    ///
    /// # Errors
    ///
    /// [`SessionError`] if pages cannot be donated or no NPU is free.
    pub fn create_context(
        &mut self,
        binary: &[u8],
        tensor_pages: usize,
    ) -> Result<NpuContext, SessionError> {
        let enclave = self.manager.create();
        let mut page_table = PageTable::new();
        // Code page(s) in the fully-protected region.
        let code_ppn = self.fresh_ppn();
        self.manager.add_page(
            &mut self.eepcm,
            &mut page_table,
            enclave,
            Vpn(0x100),
            code_ppn,
            RegionKind::FullyProtected,
            Perms::RX,
            binary,
        )?;
        // Tensor pages in the tree-less region at NELRANGE.
        let first_vpn = NELRANGE_BASE / PAGE_SIZE;
        for i in 0..tensor_pages as u64 {
            let ppn = self.fresh_ppn();
            self.manager.add_page(
                &mut self.eepcm,
                &mut page_table,
                enclave,
                Vpn(first_vpn + i),
                ppn,
                RegionKind::Treeless,
                Perms::RW,
                b"",
            )?;
        }
        self.manager.set_nelrange(
            enclave,
            NELRANGE_BASE..NELRANGE_BASE + tensor_pages as u64 * PAGE_SIZE,
        )?;
        let measurement = self.manager.initialize(enclave)?;
        let npu = self.driver.acquire(enclave)?;
        Ok(NpuContext {
            enclave,
            npu,
            measurement,
            iommu: Mmu::new(enclave, 64),
            page_table,
        })
    }

    /// Produce an attestation report for a context.
    ///
    /// # Panics
    ///
    /// Panics if the context's enclave vanished (session misuse).
    #[must_use]
    pub fn attest(&self, ctx: &NpuContext, nonce: [u8; 16]) -> Report {
        let enclave = self.manager.get(ctx.enclave).expect("live context");
        self.authority.report(enclave, nonce)
    }

    /// Verify a report against an expected measurement.
    #[must_use]
    pub fn verify(&self, report: &Report, expected: &[u8; 32], nonce: &[u8; 16]) -> bool {
        self.authority.verify(report, expected, nonce)
    }

    /// Translate an NPU-side access through the context's IOMMU with
    /// EEPCM validation (Fig. 11).
    ///
    /// # Errors
    ///
    /// [`SessionError::Access`] on any validation failure.
    pub fn iommu_translate(
        &mut self,
        ctx: &mut NpuContext,
        vpn: Vpn,
        access: Access,
    ) -> Result<Ppn, SessionError> {
        Ok(ctx
            .iommu
            .translate(&ctx.page_table, &self.eepcm, vpn, access)?)
    }

    /// Issue an NPU command through the driver enclave (owner-checked).
    ///
    /// # Errors
    ///
    /// [`SessionError::Driver`] if the caller does not own the NPU.
    pub fn issue(
        &mut self,
        caller: EnclaveId,
        ctx: &NpuContext,
        command: NpuCommand,
    ) -> Result<(), SessionError> {
        Ok(self.driver.issue(caller, ctx.npu, command)?)
    }

    /// Tear down a context, releasing its NPU.
    ///
    /// # Errors
    ///
    /// [`SessionError::Driver`] if the context does not own its NPU.
    pub fn release(&mut self, ctx: NpuContext) -> Result<(), SessionError> {
        Ok(self.driver.release(ctx.enclave, ctx.npu)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> SecureNpuSession {
        SecureNpuSession::new(Key128::derive(b"device"), 2)
    }

    #[test]
    fn full_lifecycle() {
        let mut s = session();
        let mut ctx = s.create_context(b"ml-app", 4).expect("context");
        // Attest.
        let nonce = [9u8; 16];
        let report = s.attest(&ctx, nonce);
        assert!(s.verify(&report, &ctx.measurement, &nonce));
        // Legitimate tensor access through the IOMMU.
        let vpn = Vpn(NELRANGE_BASE / PAGE_SIZE);
        s.iommu_translate(&mut ctx, vpn, Access::Write)
            .expect("valid");
        // Command the NPU.
        s.issue(ctx.enclave, &ctx, NpuCommand::Mvin { version: 1 })
            .expect("owner");
        s.release(ctx).expect("owner releases");
    }

    #[test]
    fn two_contexts_are_isolated() {
        let mut s = session();
        let ctx_a = s.create_context(b"app-a", 2).expect("context a");
        let mut ctx_b = s.create_context(b"app-b", 2).expect("context b");
        assert_ne!(ctx_a.npu, ctx_b.npu);
        assert_ne!(ctx_a.measurement, ctx_b.measurement);
        // B's enclave cannot command A's NPU.
        assert!(matches!(
            s.issue(ctx_b.enclave, &ctx_a, NpuCommand::Compute),
            Err(SessionError::Driver(DriverError::NotOwner { .. }))
        ));
        // The OS remaps B's tensor page to A's frame: B's IOMMU rejects it.
        let vpn = Vpn(NELRANGE_BASE / PAGE_SIZE);
        let a_frame = Ppn(0x1001); // A's first tensor page frame
        ctx_b.page_table_mut().map(vpn, a_frame);
        ctx_b.flush_tlb();
        assert!(matches!(
            s.iommu_translate(&mut ctx_b, vpn, Access::Read),
            Err(SessionError::Access(AccessError::WrongOwner { .. }))
        ));
    }

    #[test]
    fn npu_exhaustion_and_reuse() {
        let mut s = session();
        let a = s.create_context(b"a", 1).expect("a");
        let _b = s.create_context(b"b", 1).expect("b");
        assert!(matches!(
            s.create_context(b"c", 1),
            Err(SessionError::Driver(DriverError::NoFreeNpu))
        ));
        s.release(a).expect("release");
        let _c = s.create_context(b"c", 1).expect("npu recycled");
    }

    #[test]
    fn attestation_distinguishes_binaries() {
        let mut s = session();
        let genuine = s.create_context(b"genuine-v1", 1).expect("context");
        let trojan = s.create_context(b"trojan-v1", 1).expect("context");
        let nonce = [1u8; 16];
        let report = s.attest(&trojan, nonce);
        assert!(!s.verify(&report, &genuine.measurement, &nonce));
    }
}
