//! One cell of an experiment matrix, as data.
//!
//! Every figure of the paper's evaluation sweeps the same grid — (model,
//! NPU configuration, protection scheme), sometimes × NPU count — and the
//! experiment harness executes each cell as an independent job on a worker
//! pool. [`RunSpec`] describes a cell; [`RunSpec::execute`] runs it and
//! yields a [`RunResult`] carrying the reports plus the job's wall time.
//!
//! # Determinism
//!
//! Each cell's workload RNG seed is derived from *what is simulated* —
//! the `(experiment, model, config)` labels — via
//! [`SplitMix64::seed_from_labels`], never from worker identity or
//! submission order. Two deliberate properties:
//!
//! * The seed does **not** depend on the scheme: all schemes of one cell
//!   group replay the identical request stream, so normalizing a protected
//!   run to the unsecure run compares like with like.
//! * The seed does **not** depend on the NPU count: per-NPU streams are
//!   split from the cell seed by NPU index inside the simulator, so NPU 0
//!   of a 1-NPU run and a 3-NPU run serve the same requests.
//!
//! Consequently a sweep's results are byte-identical at any thread count.

// tnpu-lint: allow(wallclock) — wall time is measured only around the whole
// job for the stderr timing report; nothing simulated can observe it.
use std::time::{Duration, Instant};
use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
use tnpu_models::registry;
use tnpu_npu::{NpuConfig, RunReport, TileTrace};
use tnpu_sim::rng::SplitMix64;

/// Description of one simulated run: a single cell of an experiment grid.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Experiment label (e.g. `"figures"`, `"ablation-arity"`): part of
    /// the seed derivation, so distinct experiments draw distinct request
    /// streams even over the same model.
    pub experiment: String,
    /// Registered model short name (see `tnpu_models::registry`).
    pub model: String,
    /// NPU configuration.
    pub config: NpuConfig,
    /// Protection scheme simulated.
    pub scheme: SchemeKind,
    /// Number of NPUs sharing the memory controller and engine.
    pub npus: usize,
    /// Protection-engine parameters (cache sizes, tree arity, ...).
    pub protection: ProtectionConfig,
}

impl RunSpec {
    /// Cell with the paper's default protection parameters.
    #[must_use]
    pub fn new(
        experiment: &str,
        model: &str,
        config: &NpuConfig,
        scheme: SchemeKind,
        npus: usize,
    ) -> Self {
        RunSpec {
            experiment: experiment.to_owned(),
            model: model.to_owned(),
            config: config.clone(),
            scheme,
            npus,
            protection: ProtectionConfig::paper_default(),
        }
    }

    /// Replace the protection parameters (ablation studies).
    #[must_use]
    pub fn with_protection(mut self, protection: ProtectionConfig) -> Self {
        self.protection = protection;
        self
    }

    /// The cell's deterministic workload seed — a pure function of
    /// `(experiment, model, config)`. See the module docs for why the
    /// scheme and NPU count are deliberately excluded.
    #[must_use]
    pub fn seed(&self) -> u64 {
        SplitMix64::seed_from_labels(&[&self.experiment, &self.model, self.config.name])
    }

    /// The key under which this cell's tile trace can be shared: cells
    /// with equal keys lower identical plans, because the trace depends
    /// only on the seed inputs `(experiment, model, config)` plus the NPU
    /// index — never on the scheme, the NPU count, or the protection
    /// parameters (see [`TileTrace`]).
    #[must_use]
    pub fn trace_key(&self) -> (String, String, String) {
        (
            self.experiment.clone(),
            self.model.clone(),
            self.config.name.to_owned(),
        )
    }

    /// Lower this cell's tile trace for up to `npus` NPUs — build it at
    /// the largest NPU count of a [`trace_key`] group and every member
    /// replays a prefix.
    ///
    /// # Panics
    ///
    /// Panics if the model name is not registered or `npus` is zero.
    ///
    /// [`trace_key`]: RunSpec::trace_key
    #[must_use]
    pub fn build_trace(&self, npus: usize) -> TileTrace {
        let model = registry::model(&self.model)
            // tnpu-lint: allow(panic-path) — documented "# Panics" contract:
            // specs are built from registry names, so a miss is caller error.
            .unwrap_or_else(|| panic!("model {:?} is not registered", self.model));
        TileTrace::build_replicated(&model, &self.config, npus, self.seed())
    }

    /// Execute the cell on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if the model name is not registered.
    #[must_use]
    pub fn execute(&self) -> RunResult {
        // tnpu-lint: allow(wallclock) — brackets the job for RunResult::wall
        // (stderr-only); the simulation inside sees cycle time exclusively.
        let start = Instant::now();
        let trace = self.build_trace(self.npus);
        let mut result = self.execute_with(&trace);
        result.wall = start.elapsed();
        result
    }

    /// Execute the cell against an already-lowered `trace` (which must
    /// come from a spec with the same [`trace_key`] and cover at least
    /// `self.npus` NPUs) — the sweep runners' replay path.
    ///
    /// # Panics
    ///
    /// Panics if the trace covers fewer NPUs than the cell needs.
    ///
    /// [`trace_key`]: RunSpec::trace_key
    #[must_use]
    pub fn execute_with(&self, trace: &TileTrace) -> RunResult {
        let engine = build_engine(self.scheme, &self.protection);
        // tnpu-lint: allow(wallclock) — same stderr-only job timing as
        // `execute`; nothing simulated can observe it.
        let start = Instant::now();
        let reports = trace.replay(engine, &self.config, self.npus);
        RunResult {
            reports,
            wall: start.elapsed(),
        }
    }

    /// `model/config/scheme/npus` — the label job timings are reported
    /// under.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.model,
            self.config.name,
            self.scheme.label(),
            self.npus
        )
    }
}

/// Outcome of executing one [`RunSpec`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// One report per simulated NPU.
    pub reports: Vec<RunReport>,
    /// Wall-clock time the job took on its worker.
    pub wall: Duration,
}

impl RunResult {
    /// The slowest NPU's report — for a single-NPU cell, *the* report.
    /// Multi-NPU figures plot the slowest NPU (the paper's convention).
    ///
    /// # Panics
    ///
    /// Panics if the result is empty (cannot happen for executed specs:
    /// `npus >= 1` is enforced by the simulator).
    #[must_use]
    pub fn slowest(&self) -> &RunReport {
        self.reports
            .iter()
            .max_by_key(|r| r.total)
            .expect("at least one NPU report")
    }

    /// Consume the result, keeping the slowest NPU's report.
    #[must_use]
    pub fn into_slowest(self) -> RunReport {
        self.reports
            .into_iter()
            .max_by_key(|r| r.total)
            // tnpu-lint: allow(panic-path) — a RunResult is only built from
            // an executed cell, which always has at least one NPU report.
            .expect("at least one NPU report")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(scheme: SchemeKind) -> RunSpec {
        RunSpec::new("test-exp", "df", &NpuConfig::small_npu(), scheme, 1)
    }

    #[test]
    fn seed_ignores_scheme_and_npus() {
        let a = spec(SchemeKind::Unsecure);
        let b = spec(SchemeKind::Treeless);
        assert_eq!(a.seed(), b.seed(), "schemes must replay the same workload");
        let mut c = spec(SchemeKind::Unsecure);
        c.npus = 3;
        assert_eq!(a.seed(), c.seed(), "NPU count must not shift the stream");
    }

    #[test]
    fn seed_depends_on_experiment_model_config() {
        let base = spec(SchemeKind::Unsecure);
        let mut other_model = base.clone();
        other_model.model = "ncf".to_owned();
        let other_exp = RunSpec::new(
            "other-exp",
            "df",
            &NpuConfig::small_npu(),
            SchemeKind::Unsecure,
            1,
        );
        let large = RunSpec::new(
            "test-exp",
            "df",
            &NpuConfig::large_npu(),
            SchemeKind::Unsecure,
            1,
        );
        assert_ne!(base.seed(), other_model.seed());
        assert_ne!(base.seed(), other_exp.seed());
        assert_ne!(base.seed(), large.seed());
    }

    #[test]
    fn execute_is_deterministic() {
        let s = spec(SchemeKind::Treeless);
        let a = s.execute();
        let b = s.execute();
        assert_eq!(a.reports, b.reports, "same spec, same results");
        assert_eq!(a.reports.len(), 1);
        assert!(a.slowest().total.0 > 0);
        assert!(a.wall > Duration::ZERO);
    }

    #[test]
    fn slowest_picks_the_maximum() {
        let mut s = spec(SchemeKind::Unsecure);
        s.npus = 2;
        let r = s.execute();
        assert_eq!(r.reports.len(), 2);
        let max = r.reports.iter().map(|x| x.total).max().expect("two");
        assert_eq!(r.slowest().total, max);
        assert_eq!(r.into_slowest().total, max);
    }

    #[test]
    fn label_is_fully_qualified() {
        assert_eq!(spec(SchemeKind::TreeBased).label(), "df/small/baseline/1");
    }

    #[test]
    fn trace_key_groups_by_seed_inputs_only() {
        let base = spec(SchemeKind::Unsecure);
        let mut other_scheme = spec(SchemeKind::Treeless);
        other_scheme.npus = 3;
        assert_eq!(
            base.trace_key(),
            other_scheme.trace_key(),
            "scheme and NPU count must not split a trace group"
        );
        let mut other_model = base.clone();
        other_model.model = "ncf".to_owned();
        assert_ne!(base.trace_key(), other_model.trace_key());
    }

    #[test]
    fn execute_with_shared_trace_matches_execute() {
        // The replay path the sweep runners use: one trace built at the
        // group's largest NPU count serves every scheme and every smaller
        // count bit-identically.
        let mut two = spec(SchemeKind::TreeBased);
        two.npus = 2;
        let trace = two.build_trace(2);
        for scheme in [SchemeKind::Unsecure, SchemeKind::Treeless] {
            for npus in [1usize, 2] {
                let mut s = spec(scheme);
                s.npus = npus;
                assert_eq!(
                    s.execute_with(&trace).reports,
                    s.execute().reports,
                    "{scheme}/{npus}"
                );
            }
        }
    }
}
