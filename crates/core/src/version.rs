//! Software version-number management (paper §III-C, §IV-D, Figs. 9/13).
//!
//! One version number per tensor, stored in a table in the fully-protected
//! enclave memory. While a tensor is produced tile-by-tile, its entry is
//! *expanded* into per-tile version numbers; once every tile has been
//! updated the same number of times, the entry is *merged* back into a
//! single number. The table's storage footprint is tracked because the
//! paper reports it (1.3 KB on average, up to 7.5 KB for `tf`).

use std::collections::BTreeMap;

/// Index of a tensor in the version table.
pub type TensorId = u32;

/// Bytes per version number (the paper uses 8 B entries).
pub const ENTRY_BYTES: u64 = 8;

/// A tensor's entry: a single number, or one per tile while the tensor is
/// being produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionEntry {
    /// Tensor-unit version.
    Single(u64),
    /// Tile-unit versions (the tensor is mid-update).
    Expanded(Vec<u64>),
}

impl VersionEntry {
    /// Storage bytes this entry occupies.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        match self {
            VersionEntry::Single(_) => ENTRY_BYTES,
            VersionEntry::Expanded(tiles) => tiles.len() as u64 * ENTRY_BYTES,
        }
    }
}

/// Errors of version management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionError {
    /// Unknown tensor.
    UnknownTensor(TensorId),
    /// Tile index out of range for the expansion.
    NoSuchTile {
        /// Tensor.
        tensor: TensorId,
        /// Offending tile index.
        tile: u32,
    },
    /// Merge requested while tile versions still differ — the tiles have
    /// not all completed the same number of updates, so collapsing to one
    /// number would lose information and break replay detection.
    TilesNotUniform(TensorId),
    /// Expand requested on an already-expanded tensor without growing it
    /// (the tile count did not exceed the current expansion — a shrink or
    /// a silent no-op, both refused).
    AlreadyExpanded(TensorId),
    /// Tile-granular operation on a non-expanded tensor.
    NotExpanded(TensorId),
    /// The version counter reached `u64::MAX`. Wrapping back to an earlier
    /// value would make old ciphertext MACs verify again — the replay
    /// window the versions exist to close — so the bump is refused and the
    /// tensor must be re-keyed or retired.
    Exhausted(TensorId),
    /// A [`VersionSnapshot`] taken in an earlier re-encryption epoch was
    /// offered for restore after a sweep ran. Restoring it would rewind
    /// every entry to pre-sweep values while the data region is already
    /// re-keyed and rewritten at version 1 — the replay hazard the
    /// epoch-tagging exists to close — so the restore is refused and the
    /// table is left untouched.
    StaleSnapshot {
        /// Epoch the snapshot was taken in.
        snapshot: u64,
        /// The context's current epoch.
        current: u64,
    },
}

impl std::fmt::Display for VersionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VersionError::UnknownTensor(t) => write!(f, "unknown tensor {t}"),
            VersionError::NoSuchTile { tensor, tile } => {
                write!(f, "tensor {tensor} has no tile {tile}")
            }
            VersionError::TilesNotUniform(t) => {
                write!(f, "tensor {t} tile versions are not uniform")
            }
            VersionError::AlreadyExpanded(t) => write!(f, "tensor {t} is already expanded"),
            VersionError::NotExpanded(t) => write!(f, "tensor {t} is not expanded"),
            VersionError::Exhausted(t) => {
                write!(f, "tensor {t} version counter is exhausted (would wrap)")
            }
            VersionError::StaleSnapshot { snapshot, current } => {
                write!(
                    f,
                    "snapshot from epoch {snapshot} cannot restore into epoch {current} \
                     (pre-sweep versions would rewind — replay hazard)"
                )
            }
        }
    }
}

impl std::error::Error for VersionError {}

/// A point-in-time copy of a context's version table, tagged with the
/// re-encryption epoch it was taken in.
///
/// Context switches save the table through the fully-protected region and
/// restore it when the context is re-scheduled. The epoch tag is what makes
/// that safe against the sweep/preemption hazard: a snapshot taken before
/// an epoch sweep holds versions whose MAC bindings died with the old keys,
/// so [`VersionTable::restore`] refuses it with
/// [`VersionError::StaleSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionSnapshot {
    entries: BTreeMap<TensorId, VersionEntry>,
    limit: u64,
    epoch: u64,
}

impl VersionSnapshot {
    /// The re-encryption epoch this snapshot was taken in.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bytes of protected-region storage the snapshot occupies — the DMA
    /// payload a context switch moves for the version-table half of the
    /// saved state.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        // tnpu-lint: allow(float-accumulation) — u64 sum over a BTreeMap:
        // integral and iterated in key order, so the order cannot matter.
        self.entries.values().map(VersionEntry::bytes).sum()
    }
}

/// The version table of one NPU context.
///
/// # Examples
///
/// ```
/// use tnpu_core::version::VersionTable;
///
/// let mut table = VersionTable::new();
/// table.register(0); // output tensor
/// table.expand(0, 4).unwrap();
/// for tile in 0..4 {
///     assert_eq!(table.bump_tile(0, tile).unwrap(), 1);
/// }
/// table.merge(0).unwrap(); // all tiles at version 1: collapse
/// assert_eq!(table.version(0, 0).unwrap(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct VersionTable {
    entries: BTreeMap<TensorId, VersionEntry>,
    peak_bytes: u64,
    /// Largest version a bump may produce before reporting
    /// [`VersionError::Exhausted`]. `u64::MAX` by default (the paper's 8 B
    /// entries); tests and the fault harness lower it to exercise the
    /// re-encryption epoch sweep without 2^64 writes.
    limit: u64,
}

impl Default for VersionTable {
    fn default() -> Self {
        VersionTable {
            entries: BTreeMap::new(),
            peak_bytes: 0,
            limit: u64::MAX,
        }
    }
}

impl VersionTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Lower the exhaustion threshold: bumps refuse to exceed `limit`.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero — version 0 means "never written", so a
    /// zero limit would make every tensor unwritable.
    pub fn set_limit(&mut self, limit: u64) {
        assert!(limit > 0, "version limit must be positive");
        self.limit = limit;
    }

    /// The current exhaustion threshold.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Reset every entry to version 0 — the version half of a
    /// re-encryption epoch sweep. Sound *only* together with a re-key:
    /// all MACs bound under the old epoch's keys are dead, so reusing the
    /// low version numbers re-admits nothing. Expanded entries collapse to
    /// `Single(0)` (the sweep rewrites whole tensors).
    pub fn reset_epoch(&mut self) {
        for entry in self.entries.values_mut() {
            *entry = VersionEntry::Single(0);
        }
    }

    /// Register a tensor at version 0 (freshly allocated, never written).
    pub fn register(&mut self, tensor: TensorId) {
        self.entries
            .entry(tensor)
            .or_insert(VersionEntry::Single(0));
        self.update_peak();
    }

    /// Current version supplied to `mvin` for `(tensor, tile)`.
    ///
    /// # Errors
    ///
    /// [`VersionError::UnknownTensor`] / [`VersionError::NoSuchTile`].
    pub fn version(&self, tensor: TensorId, tile: u32) -> Result<u64, VersionError> {
        match self.entries.get(&tensor) {
            None => Err(VersionError::UnknownTensor(tensor)),
            Some(VersionEntry::Single(v)) => Ok(*v),
            Some(VersionEntry::Expanded(tiles)) => tiles
                .get(tile as usize)
                .copied()
                .ok_or(VersionError::NoSuchTile { tensor, tile }),
        }
    }

    /// Bump the whole-tensor version (a tensor updated as a single unit)
    /// and return the new value, to be passed to `mvout`.
    ///
    /// # Errors
    ///
    /// [`VersionError::UnknownTensor`]; [`VersionError::AlreadyExpanded`]
    /// if the tensor is mid-expansion (bump its tiles instead);
    /// [`VersionError::Exhausted`] at `u64::MAX` — wrapping would re-admit
    /// ciphertext MAC'd under version 0.
    pub fn bump(&mut self, tensor: TensorId) -> Result<u64, VersionError> {
        match self.entries.get_mut(&tensor) {
            None => Err(VersionError::UnknownTensor(tensor)),
            Some(VersionEntry::Expanded(_)) => Err(VersionError::AlreadyExpanded(tensor)),
            Some(VersionEntry::Single(v)) => {
                if *v >= self.limit {
                    return Err(VersionError::Exhausted(tensor));
                }
                *v = v.checked_add(1).ok_or(VersionError::Exhausted(tensor))?;
                Ok(*v)
            }
        }
    }

    /// Expand a tensor into `tiles` tile-unit versions, all starting at the
    /// current tensor version (Fig. 9 step 0 / Fig. 13 (b)).
    ///
    /// A zero-tile expansion is clamped to one tile: an empty expansion
    /// would drop the tensor's current version, so a later [`merge`]
    /// (trivially uniform over no tiles) would rewind it to 0 and re-admit
    /// stale ciphertext — exactly the replay the version numbers exist to
    /// prevent.
    ///
    /// Expanding an *already-expanded* tensor with a larger tile count
    /// grows it in place — the KV-cache append path, where a tensor gains
    /// one tile per decode step and is never merged mid-sequence. Existing
    /// tile versions are preserved exactly; appended tiles start at the
    /// current **maximum** tile version. The maximum is the only sound
    /// seed: every version the tensor's tiles ever carried is bounded by
    /// the entry-wide maximum (bumps are monotone, merge requires
    /// uniformity, and fresh expansion propagates the single value), so
    /// the appended tiles' first `bump_tile` produces a version strictly
    /// greater than anything ever MAC'd at those addresses — no rewind,
    /// even if the tensor was expanded, merged, and re-expanded before.
    ///
    /// [`merge`]: VersionTable::merge
    ///
    /// # Errors
    ///
    /// [`VersionError::UnknownTensor`]; [`VersionError::AlreadyExpanded`]
    /// if the tensor is expanded and `tiles` does not exceed the current
    /// tile count (a shrink would drop live tile versions, and a same-size
    /// expand would be a silent no-op — both are caller bugs).
    pub fn expand(&mut self, tensor: TensorId, tiles: u32) -> Result<(), VersionError> {
        match self.entries.get_mut(&tensor) {
            None => Err(VersionError::UnknownTensor(tensor)),
            Some(VersionEntry::Expanded(existing)) => {
                if tiles as usize <= existing.len() {
                    return Err(VersionError::AlreadyExpanded(tensor));
                }
                let seed = existing.iter().copied().max().unwrap_or(0);
                existing.resize(tiles as usize, seed);
                self.update_peak();
                Ok(())
            }
            Some(entry) => {
                let VersionEntry::Single(v) = *entry else {
                    // tnpu-lint: allow(panic-path) — the Expanded arm above
                    // already returned; only Single can reach this binding.
                    unreachable!("expanded case handled above");
                };
                *entry = VersionEntry::Expanded(vec![v; tiles.max(1) as usize]);
                self.update_peak();
                Ok(())
            }
        }
    }

    /// Bump one tile's version and return the new value (passed to that
    /// tile's `mvout`).
    ///
    /// # Errors
    ///
    /// [`VersionError`] if the tensor is unknown, not expanded, or the
    /// tile is out of range; [`VersionError::Exhausted`] if the tile's
    /// version would wrap past `u64::MAX`.
    pub fn bump_tile(&mut self, tensor: TensorId, tile: u32) -> Result<u64, VersionError> {
        match self.entries.get_mut(&tensor) {
            None => Err(VersionError::UnknownTensor(tensor)),
            Some(VersionEntry::Single(_)) => Err(VersionError::NotExpanded(tensor)),
            Some(VersionEntry::Expanded(tiles)) => {
                let slot = tiles
                    .get_mut(tile as usize)
                    .ok_or(VersionError::NoSuchTile { tensor, tile })?;
                if *slot >= self.limit {
                    return Err(VersionError::Exhausted(tensor));
                }
                *slot = slot.checked_add(1).ok_or(VersionError::Exhausted(tensor))?;
                Ok(*slot)
            }
        }
    }

    /// Merge an expanded tensor back to a single version (Fig. 9 step 9):
    /// legal only when every tile reached the same version.
    ///
    /// # Errors
    ///
    /// [`VersionError::TilesNotUniform`] if tile versions differ;
    /// [`VersionError::NotExpanded`] / [`VersionError::UnknownTensor`].
    pub fn merge(&mut self, tensor: TensorId) -> Result<u64, VersionError> {
        match self.entries.get_mut(&tensor) {
            None => Err(VersionError::UnknownTensor(tensor)),
            Some(VersionEntry::Single(_)) => Err(VersionError::NotExpanded(tensor)),
            Some(entry) => {
                let VersionEntry::Expanded(tiles) = &*entry else {
                    // tnpu-lint: allow(panic-path) — the Single arm above
                    // already returned; only Expanded can reach this binding.
                    unreachable!("single case handled above");
                };
                let first = tiles.first().copied().unwrap_or(0);
                if tiles.iter().any(|&t| t != first) {
                    return Err(VersionError::TilesNotUniform(tensor));
                }
                *entry = VersionEntry::Single(first);
                Ok(first)
            }
        }
    }

    /// Whether the tensor's entry is currently tile-expanded (the tensor
    /// is mid-production). The epoch sweep preserves such tensors tile by
    /// tile — a dynamic-dataflow tensor (a KV cache mid-sequence) may
    /// stay expanded across many steps, so its written tiles and its
    /// expansion shape must survive the sweep.
    ///
    /// # Errors
    ///
    /// [`VersionError::UnknownTensor`].
    pub fn is_expanded(&self, tensor: TensorId) -> Result<bool, VersionError> {
        match self.entries.get(&tensor) {
            None => Err(VersionError::UnknownTensor(tensor)),
            Some(VersionEntry::Single(_)) => Ok(false),
            Some(VersionEntry::Expanded(_)) => Ok(true),
        }
    }

    /// Number of tile entries the tensor currently holds: the expansion
    /// length for an expanded entry, 1 for a `Single` entry.
    ///
    /// # Errors
    ///
    /// [`VersionError::UnknownTensor`].
    pub fn tile_count(&self, tensor: TensorId) -> Result<u32, VersionError> {
        match self.entries.get(&tensor) {
            None => Err(VersionError::UnknownTensor(tensor)),
            Some(VersionEntry::Single(_)) => Ok(1),
            Some(VersionEntry::Expanded(tiles)) => Ok(tiles.len() as u32),
        }
    }

    /// Current table storage in bytes.
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        // tnpu-lint: allow(float-accumulation) — u64 sum over a BTreeMap:
        // integral and iterated in key order, so the order cannot matter.
        self.entries.values().map(VersionEntry::bytes).sum()
    }

    /// Largest storage the table ever needed (the number §IV-D reports).
    #[must_use]
    pub fn peak_storage_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of registered tensors.
    #[must_use]
    pub fn tensors(&self) -> usize {
        self.entries.len()
    }

    /// Capture the table for a context switch, tagging it with the caller's
    /// current re-encryption `epoch`.
    #[must_use]
    pub fn snapshot(&self, epoch: u64) -> VersionSnapshot {
        VersionSnapshot {
            entries: self.entries.clone(),
            limit: self.limit,
            epoch,
        }
    }

    /// Restore a snapshot taken at [`snapshot`](VersionTable::snapshot)
    /// time, re-validating its epoch tag against the context's
    /// `current_epoch`.
    ///
    /// On success the table's entries and limit are replaced wholesale
    /// (peak accounting stays monotone: a restore never lowers the peak).
    ///
    /// # Errors
    ///
    /// [`VersionError::StaleSnapshot`] if an epoch sweep ran after the
    /// snapshot was taken — restoring pre-sweep versions under post-sweep
    /// keys would re-open the replay window. The table is left untouched.
    pub fn restore(
        &mut self,
        snapshot: &VersionSnapshot,
        current_epoch: u64,
    ) -> Result<(), VersionError> {
        if snapshot.epoch != current_epoch {
            return Err(VersionError::StaleSnapshot {
                snapshot: snapshot.epoch,
                current: current_epoch,
            });
        }
        self.entries = snapshot.entries.clone();
        self.limit = snapshot.limit;
        self.update_peak();
        Ok(())
    }

    fn update_peak(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.storage_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(tensor: TensorId) -> VersionTable {
        let mut t = VersionTable::new();
        t.register(tensor);
        t
    }

    #[test]
    fn register_starts_at_zero() {
        let t = table_with(5);
        assert_eq!(t.version(5, 0), Ok(0));
        assert_eq!(t.version(5, 99), Ok(0), "single entry serves any tile");
    }

    #[test]
    fn bump_whole_tensor() {
        let mut t = table_with(1);
        assert_eq!(t.bump(1), Ok(1));
        assert_eq!(t.bump(1), Ok(2));
        assert_eq!(t.version(1, 0), Ok(2));
    }

    #[test]
    fn matmul_tiling_example_from_fig9() {
        // Fig. 9: a 2x2-tiled output; each tile is written once per k-step
        // (2 steps), then merged.
        let mut t = table_with(0);
        t.expand(0, 4).expect("expand");
        for _step in 0..2 {
            for tile in 0..4 {
                t.bump_tile(0, tile).expect("bump");
            }
        }
        assert_eq!(t.merge(0), Ok(2));
        assert_eq!(t.version(0, 3), Ok(2));
    }

    #[test]
    fn merge_rejects_nonuniform() {
        let mut t = table_with(0);
        t.expand(0, 3).expect("expand");
        t.bump_tile(0, 0).expect("bump");
        assert_eq!(t.merge(0), Err(VersionError::TilesNotUniform(0)));
        // Completing the remaining tiles makes the merge legal.
        t.bump_tile(0, 1).expect("bump");
        t.bump_tile(0, 2).expect("bump");
        assert_eq!(t.merge(0), Ok(1));
    }

    #[test]
    fn expand_preserves_version() {
        let mut t = table_with(0);
        t.bump(0).expect("bump");
        t.expand(0, 2).expect("expand");
        assert_eq!(t.version(0, 0), Ok(1));
        assert_eq!(t.version(0, 1), Ok(1));
    }

    #[test]
    fn double_expand_rejected() {
        // Same-size and shrinking re-expansion stay refused: a shrink
        // would drop live tile versions and a same-size expand would be a
        // silent no-op. Only a *growing* expand (the KV-append path) is
        // legal on an expanded tensor.
        let mut t = table_with(0);
        t.expand(0, 2).expect("expand");
        assert_eq!(t.expand(0, 2), Err(VersionError::AlreadyExpanded(0)));
        assert_eq!(t.expand(0, 1), Err(VersionError::AlreadyExpanded(0)));
        assert_eq!(t.expand(0, 0), Err(VersionError::AlreadyExpanded(0)));
        assert_eq!(t.bump(0), Err(VersionError::AlreadyExpanded(0)));
    }

    #[test]
    fn expand_grow_preserves_existing_tile_versions() {
        // The KV-cache append path: each decode step grows the expansion
        // by one tile. Existing tiles keep their exact versions; the new
        // tile starts at the current maximum so its first bump can never
        // collide with a version already MAC'd at that address.
        let mut t = table_with(0);
        t.expand(0, 2).expect("expand");
        t.bump_tile(0, 0).expect("bump");
        t.bump_tile(0, 0).expect("bump");
        t.bump_tile(0, 1).expect("bump");
        t.expand(0, 4).expect("grow");
        assert_eq!(t.version(0, 0), Ok(2), "existing tile preserved");
        assert_eq!(t.version(0, 1), Ok(1), "existing tile preserved");
        assert_eq!(t.version(0, 2), Ok(2), "fresh tile seeded at the max");
        assert_eq!(t.version(0, 3), Ok(2), "fresh tile seeded at the max");
        assert_eq!(t.bump_tile(0, 3), Ok(3), "first write is above the max");
    }

    #[test]
    fn expand_grow_after_merge_and_reexpand_never_rewinds() {
        // A tensor that was expanded to 4 tiles, merged, and re-expanded
        // to 2 tiles still remembers (via the max seed) that tiles 2..4
        // once carried version 3: growing back to 4 must not hand those
        // addresses a lower version.
        let mut t = table_with(0);
        t.expand(0, 4).expect("expand");
        for _ in 0..3 {
            for tile in 0..4 {
                t.bump_tile(0, tile).expect("bump");
            }
        }
        assert_eq!(t.merge(0), Ok(3));
        t.expand(0, 2).expect("re-expand");
        t.expand(0, 4).expect("grow back");
        assert_eq!(t.version(0, 2), Ok(3), "no rewind below the old version");
        assert_eq!(t.bump_tile(0, 2), Ok(4));
    }

    #[test]
    fn expand_grow_updates_storage_and_peak() {
        let mut t = table_with(0);
        t.expand(0, 2).expect("expand");
        assert_eq!(t.storage_bytes(), 2 * ENTRY_BYTES);
        t.expand(0, 5).expect("grow");
        assert_eq!(t.storage_bytes(), 5 * ENTRY_BYTES);
        assert_eq!(t.peak_storage_bytes(), 5 * ENTRY_BYTES);
    }

    #[test]
    fn tile_ops_need_expansion() {
        let mut t = table_with(0);
        assert_eq!(t.bump_tile(0, 0), Err(VersionError::NotExpanded(0)));
        assert_eq!(t.merge(0), Err(VersionError::NotExpanded(0)));
    }

    #[test]
    fn unknown_tensor_errors() {
        let mut t = VersionTable::new();
        assert_eq!(t.version(9, 0), Err(VersionError::UnknownTensor(9)));
        assert_eq!(t.bump(9), Err(VersionError::UnknownTensor(9)));
        assert_eq!(t.expand(9, 2), Err(VersionError::UnknownTensor(9)));
    }

    #[test]
    fn out_of_range_tile() {
        let mut t = table_with(0);
        t.expand(0, 2).expect("expand");
        assert_eq!(
            t.bump_tile(0, 5),
            Err(VersionError::NoSuchTile { tensor: 0, tile: 5 })
        );
    }

    #[test]
    fn zero_tile_expansion_cannot_rewind_the_version() {
        // An empty expansion would let a merge (trivially uniform over no
        // tiles) reset the version to 0 — a replay window. The expansion
        // is clamped to one tile, so the version survives the round trip.
        let mut t = table_with(0);
        t.bump(0).expect("bump");
        t.bump(0).expect("bump");
        t.expand(0, 0).expect("expand");
        assert_eq!(t.version(0, 0), Ok(2));
        assert_eq!(t.merge(0), Ok(2));
    }

    #[test]
    fn bump_at_max_is_exhausted_not_wrapped() {
        // Regression test: `bump` used unchecked `+= 1`, so a tensor at
        // u64::MAX wrapped to 0 in release builds and every block MAC'd
        // under any earlier version verified again — an unbounded replay
        // window. The table must refuse instead.
        let mut t = VersionTable::new();
        t.register(0);
        t.entries.insert(0, VersionEntry::Single(u64::MAX));
        assert_eq!(t.bump(0), Err(VersionError::Exhausted(0)));
        // The entry is untouched: still at MAX, still readable.
        assert_eq!(t.version(0, 0), Ok(u64::MAX));
        assert_eq!(t.bump(0), Err(VersionError::Exhausted(0)), "stays refused");
    }

    #[test]
    fn bump_tile_at_max_is_exhausted_not_wrapped() {
        let mut t = VersionTable::new();
        t.register(3);
        t.entries
            .insert(3, VersionEntry::Expanded(vec![u64::MAX, 7]));
        assert_eq!(t.bump_tile(3, 0), Err(VersionError::Exhausted(3)));
        assert_eq!(t.version(3, 0), Ok(u64::MAX), "tile untouched");
        // Other tiles keep working.
        assert_eq!(t.bump_tile(3, 1), Ok(8));
    }

    #[test]
    fn lowered_limit_exhausts_early_and_reset_recovers() {
        let mut t = table_with(0);
        t.set_limit(2);
        assert_eq!(t.limit(), 2);
        assert_eq!(t.bump(0), Ok(1));
        assert_eq!(t.bump(0), Ok(2));
        assert_eq!(t.bump(0), Err(VersionError::Exhausted(0)));
        assert_eq!(t.version(0, 0), Ok(2), "entry untouched by refusal");
        // The epoch sweep's version half: everything back to 0, bumps
        // work again.
        t.reset_epoch();
        assert_eq!(t.version(0, 0), Ok(0));
        assert_eq!(t.bump(0), Ok(1));
    }

    #[test]
    fn limit_applies_to_tiles_and_reset_collapses_expansions() {
        let mut t = table_with(0);
        t.set_limit(1);
        t.expand(0, 3).expect("expand");
        assert_eq!(t.bump_tile(0, 0), Ok(1));
        assert_eq!(t.bump_tile(0, 0), Err(VersionError::Exhausted(0)));
        t.reset_epoch();
        // Expanded entries collapse: the sweep rewrites whole tensors.
        assert_eq!(t.version(0, 0), Ok(0));
        assert_eq!(t.bump(0), Ok(1), "single entry again");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_rejected() {
        let mut t = VersionTable::new();
        t.set_limit(0);
    }

    #[test]
    fn default_limit_is_max() {
        assert_eq!(VersionTable::new().limit(), u64::MAX);
    }

    #[test]
    fn exhausted_error_displays() {
        let e = VersionError::Exhausted(9);
        assert!(e.to_string().contains("exhausted"));
    }

    #[test]
    fn snapshot_restore_roundtrips() {
        let mut t = table_with(0);
        t.register(1);
        t.bump(0).expect("bump");
        t.expand(1, 3).expect("expand");
        t.bump_tile(1, 2).expect("bump tile");
        let snap = t.snapshot(0);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.bytes(), t.storage_bytes());
        // Mutate past the snapshot, then restore.
        t.bump_tile(1, 0).expect("bump tile");
        t.bump_tile(1, 1).expect("bump tile");
        t.restore(&snap, 0).expect("same-epoch restore");
        assert_eq!(t.version(0, 0), Ok(1));
        assert_eq!(t.version(1, 0), Ok(0));
        assert_eq!(t.version(1, 2), Ok(1));
    }

    #[test]
    fn stale_snapshot_is_refused_and_table_untouched() {
        // The sweep/preemption hazard: snapshot at epoch 0, sweep to
        // epoch 1, restore must be a typed refusal — not a silent rewind
        // of post-sweep versions.
        let mut t = table_with(0);
        t.bump(0).expect("bump");
        t.bump(0).expect("bump");
        let snap = t.snapshot(0);
        t.reset_epoch(); // the version half of an epoch sweep
        t.bump(0).expect("post-sweep rewrite");
        assert_eq!(
            t.restore(&snap, 1),
            Err(VersionError::StaleSnapshot {
                snapshot: 0,
                current: 1
            })
        );
        assert_eq!(t.version(0, 0), Ok(1), "refusal leaves the table alone");
        assert!(t
            .restore(&snap, 1)
            .unwrap_err()
            .to_string()
            .contains("replay hazard"));
    }

    #[test]
    fn snapshot_restore_carries_the_limit() {
        let mut t = table_with(0);
        t.set_limit(3);
        let snap = t.snapshot(7);
        let mut fresh = table_with(0);
        fresh.restore(&snap, 7).expect("restore");
        assert_eq!(fresh.limit(), 3);
        assert_eq!(fresh.bump(0), Ok(1));
    }

    #[test]
    fn restore_never_lowers_the_peak() {
        let mut t = table_with(0);
        t.expand(0, 64).expect("expand");
        let big_peak = t.peak_storage_bytes();
        let small = table_with(0).snapshot(0);
        t.restore(&small, 0).expect("restore");
        assert_eq!(t.storage_bytes(), ENTRY_BYTES);
        assert_eq!(t.peak_storage_bytes(), big_peak, "peak stays monotone");
    }

    #[test]
    fn storage_accounting() {
        let mut t = VersionTable::new();
        for i in 0..10 {
            t.register(i);
        }
        assert_eq!(t.storage_bytes(), 80);
        t.expand(0, 100).expect("expand");
        assert_eq!(t.storage_bytes(), 9 * 8 + 100 * 8);
        assert_eq!(t.peak_storage_bytes(), 872);
        t.bump_tile(0, 0).expect("bump");
        for tile in 1..100 {
            t.bump_tile(0, tile).expect("bump");
        }
        t.merge(0).expect("merge");
        assert_eq!(t.storage_bytes(), 80, "merge shrinks the table");
        assert_eq!(t.peak_storage_bytes(), 872, "peak remembers");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Tensors the generated programs operate over.
    const TENSORS: u32 = 4;

    proptest! {
        /// Any interleaving of `expand` / `bump_tile` / `merge` — legal
        /// or rejected — keeps `peak_storage_bytes` monotonically
        /// non-decreasing and always at or above the live storage.
        #[test]
        fn peak_bytes_is_monotone_under_any_interleaving(
            ops in prop::collection::vec((0u8..3, 0u32..TENSORS, 0u32..12), 1..64),
        ) {
            let mut table = VersionTable::new();
            for tensor in 0..TENSORS {
                table.register(tensor);
            }
            let mut prev_peak = table.peak_storage_bytes();
            for (op, tensor, arg) in ops {
                // Errors are part of the property: a rejected operation
                // must not disturb the accounting either.
                let _ = match op {
                    0 => table.expand(tensor, arg).map(|()| 0),
                    1 => table.bump_tile(tensor, arg),
                    _ => table.merge(tensor),
                };
                let peak = table.peak_storage_bytes();
                prop_assert!(
                    peak >= prev_peak,
                    "peak shrank: {prev_peak} -> {peak}"
                );
                prop_assert!(
                    peak >= table.storage_bytes(),
                    "peak {peak} below live storage {}",
                    table.storage_bytes()
                );
                prev_peak = peak;
            }
        }

        /// Expanding, bumping every tile the same number of times, and
        /// merging round-trips the entry to `Single` with the version
        /// advanced by exactly the per-tile update count.
        #[test]
        fn merge_after_uniform_bumps_roundtrips_to_single(
            start in 0u64..64,
            tiles in 0u32..32,
            rounds in 1u64..6,
        ) {
            let mut table = VersionTable::new();
            table.register(0);
            for _ in 0..start {
                table.bump(0).expect("single-entry bump");
            }
            table.expand(0, tiles).expect("fresh expand");
            let live_tiles = tiles.max(1); // zero-tile expansions clamp
            for _ in 0..rounds {
                for tile in 0..live_tiles {
                    table.bump_tile(0, tile).expect("in-range tile");
                }
            }
            let merged = table.merge(0).expect("uniform tiles merge");
            prop_assert_eq!(merged, start + rounds);
            prop_assert_eq!(table.version(0, 0).expect("known tensor"), start + rounds);
            // The entry is Single again: tensor-unit storage and a legal
            // whole-tensor bump.
            prop_assert_eq!(table.storage_bytes(), ENTRY_BYTES);
            prop_assert_eq!(table.bump(0).expect("single again"), start + rounds + 1);
        }

        /// Snapshot/restore round-trips exactly under arbitrary
        /// expand/bump/merge/sweep interleavings: whatever state the table
        /// reached when the snapshot was taken (and whatever epoch count
        /// the sweeps produced), restoring with the matching epoch
        /// reproduces every entry and the storage footprint, and restoring
        /// after one more sweep is a typed refusal that leaves the mutated
        /// table untouched.
        #[test]
        fn snapshot_restore_roundtrips_under_any_interleaving(
            pre in prop::collection::vec((0u8..5, 0u32..TENSORS, 0u32..12), 0..48),
            post in prop::collection::vec((0u8..5, 0u32..TENSORS, 0u32..12), 1..48),
        ) {
            let mut table = VersionTable::new();
            for tensor in 0..TENSORS {
                table.register(tensor);
            }
            let mut epoch = 0u64;
            let apply = |table: &mut VersionTable, epoch: &mut u64,
                             (op, tensor, arg): (u8, u32, u32)| {
                let _ = match op {
                    0 => table.expand(tensor, arg).map(|()| 0),
                    1 => table.bump_tile(tensor, arg),
                    2 => table.merge(tensor),
                    3 => table.bump(tensor),
                    _ => {
                        table.reset_epoch();
                        *epoch += 1;
                        Ok(0)
                    }
                };
            };
            for op in pre {
                apply(&mut table, &mut epoch, op);
            }
            let snap = table.snapshot(epoch);
            let frozen: Vec<(TensorId, Result<u64, VersionError>, bool)> = (0..TENSORS)
                .map(|t| (t, table.version(t, 0), table.is_expanded(t).unwrap()))
                .collect();
            let frozen_storage = table.storage_bytes();
            prop_assert_eq!(snap.bytes(), frozen_storage);

            for op in post {
                apply(&mut table, &mut epoch, op);
            }
            let sweeps_ran = epoch != snap.epoch();
            if sweeps_ran {
                // Post-snapshot sweeps: the restore must refuse and leave
                // the mutated table exactly as it was.
                let before = table.clone();
                prop_assert_eq!(
                    table.restore(&snap, epoch),
                    Err(VersionError::StaleSnapshot {
                        snapshot: snap.epoch(),
                        current: epoch
                    })
                );
                for t in 0..TENSORS {
                    prop_assert_eq!(table.version(t, 0), before.version(t, 0));
                }
                prop_assert_eq!(table.storage_bytes(), before.storage_bytes());
            } else {
                table.restore(&snap, epoch).expect("same-epoch restore");
                for (t, version, expanded) in frozen {
                    prop_assert_eq!(table.version(t, 0), version);
                    prop_assert_eq!(table.is_expanded(t).unwrap(), expanded);
                }
                prop_assert_eq!(table.storage_bytes(), frozen_storage);
            }
        }

        /// Expand-grow against a plain reference model: a `Vec<u64>` per
        /// tensor mirrors what the table must hold under any interleaving
        /// of expand / expand-grow / `bump_tile` / `merge` /
        /// `snapshot`+`restore`. The reference applies the KV-append rule
        /// directly (grow appends tiles at the running maximum), so any
        /// divergence — a rewound tile, a dropped version, a silent no-op
        /// grow — fails the comparison.
        #[test]
        fn expand_grow_tracks_reference_model_under_any_interleaving(
            ops in prop::collection::vec((0u8..6, 0u32..TENSORS, 0u32..10), 1..64),
        ) {
            // Reference: per-tensor tile versions (len 1 + not-expanded
            // flag models Single).
            #[derive(Clone)]
            struct RefEntry { tiles: Vec<u64>, expanded: bool }
            let mut table = VersionTable::new();
            let mut model: Vec<RefEntry> = (0..TENSORS)
                .map(|t| {
                    table.register(t);
                    RefEntry { tiles: vec![0], expanded: false }
                })
                .collect();
            let mut saved: Option<(VersionSnapshot, Vec<RefEntry>)> = None;
            for (op, tensor, arg) in ops {
                let entry = &mut model[tensor as usize];
                match op {
                    0 => {
                        // expand or expand-grow
                        let res = table.expand(tensor, arg);
                        if entry.expanded {
                            if (arg as usize) > entry.tiles.len() {
                                prop_assert_eq!(res, Ok(()));
                                let seed =
                                    entry.tiles.iter().copied().max().unwrap_or(0);
                                entry.tiles.resize(arg as usize, seed);
                            } else {
                                prop_assert_eq!(
                                    res,
                                    Err(VersionError::AlreadyExpanded(tensor))
                                );
                            }
                        } else {
                            prop_assert_eq!(res, Ok(()));
                            let v = entry.tiles[0];
                            entry.tiles = vec![v; arg.max(1) as usize];
                            entry.expanded = true;
                        }
                    }
                    1 => {
                        // bump_tile
                        let res = table.bump_tile(tensor, arg);
                        if !entry.expanded {
                            prop_assert_eq!(
                                res,
                                Err(VersionError::NotExpanded(tensor))
                            );
                        } else if let Some(slot) =
                            entry.tiles.get_mut(arg as usize)
                        {
                            *slot += 1;
                            prop_assert_eq!(res, Ok(*slot));
                        } else {
                            prop_assert_eq!(
                                res,
                                Err(VersionError::NoSuchTile { tensor, tile: arg })
                            );
                        }
                    }
                    2 => {
                        // merge
                        let res = table.merge(tensor);
                        if !entry.expanded {
                            prop_assert_eq!(
                                res,
                                Err(VersionError::NotExpanded(tensor))
                            );
                        } else if entry.tiles.windows(2).all(|w| w[0] == w[1]) {
                            let v = entry.tiles[0];
                            prop_assert_eq!(res, Ok(v));
                            entry.tiles = vec![v];
                            entry.expanded = false;
                        } else {
                            prop_assert_eq!(
                                res,
                                Err(VersionError::TilesNotUniform(tensor))
                            );
                        }
                    }
                    3 => {
                        // bump (whole tensor)
                        let res = table.bump(tensor);
                        if entry.expanded {
                            prop_assert_eq!(
                                res,
                                Err(VersionError::AlreadyExpanded(tensor))
                            );
                        } else {
                            entry.tiles[0] += 1;
                            prop_assert_eq!(res, Ok(entry.tiles[0]));
                        }
                    }
                    4 => {
                        // snapshot (epoch 0 throughout: no sweeps here, the
                        // staleness interleaving has its own proptest)
                        saved = Some((table.snapshot(0), model.clone()));
                    }
                    _ => {
                        // restore, when a snapshot exists
                        if let Some((snap, ref_model)) = &saved {
                            table.restore(snap, 0).expect("same-epoch restore");
                            model = ref_model.clone();
                        }
                    }
                }
                // After every op the table must agree with the reference
                // on every tile version and the storage footprint.
                let mut expect_bytes = 0u64;
                for (t, entry) in model.iter().enumerate() {
                    let t = t as u32;
                    prop_assert_eq!(
                        table.is_expanded(t).expect("registered"),
                        entry.expanded
                    );
                    expect_bytes += entry.tiles.len() as u64 * ENTRY_BYTES;
                    for (tile, &v) in entry.tiles.iter().enumerate() {
                        prop_assert_eq!(table.version(t, tile as u32), Ok(v));
                    }
                }
                prop_assert_eq!(table.storage_bytes(), expect_bytes);
            }
        }

        /// Starting anywhere in the last few values below `u64::MAX`,
        /// repeated bumps walk monotonically to `MAX` and then report
        /// `Exhausted` forever — the version never wraps back into the
        /// range old MACs were bound to.
        #[test]
        fn bumps_near_max_saturate_into_exhausted(headroom in 0u64..8) {
            let start = u64::MAX - headroom;
            let mut table = VersionTable::new();
            table.register(0);
            table.entries.insert(0, VersionEntry::Single(start));
            let mut v = start;
            while v < u64::MAX {
                v += 1;
                prop_assert_eq!(table.bump(0), Ok(v));
            }
            for _ in 0..3 {
                prop_assert_eq!(table.bump(0), Err(VersionError::Exhausted(0)));
                prop_assert_eq!(table.version(0, 0), Ok(u64::MAX));
            }
        }
    }
}
