//! End-to-end latency model (paper §V-D, Fig. 17).
//!
//! The end-to-end latency runs "from the completion of data transfer from
//! the sensor, to the return of the inference output from NPU to CPU".
//! Besides the NPU computation it adds the CPU-side phases, of which "the
//! dominant extra latency is for the initial transfer of model parameters
//! to the memory region of the NPU context": the enclave streams the input
//! and every weight tensor through the protected-write path, the NPU runs
//! the inference, and the CPU reads the output back. Following the paper's
//! conservative choice, the parameter initialization is charged to a
//! single request (no amortization).

use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
use tnpu_models::Model;
use tnpu_npu::alloc::ModelLayout;
use tnpu_npu::controller::MemoryController;
use tnpu_npu::dma::{Dir, DmaPattern, Transfer};
use tnpu_npu::machine::NpuMachine;
use tnpu_npu::{tiler, NpuConfig};
use tnpu_sim::{Addr, Cycles};

/// Phase breakdown of one end-to-end request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EndToEndReport {
    /// Scheme used.
    pub scheme: SchemeKind,
    /// Completion of the CPU-side initialization (input + parameters).
    pub init_done: Cycles,
    /// Completion of the NPU inference.
    pub inference_done: Cycles,
    /// Completion of the CPU output readback — the end-to-end latency.
    pub total: Cycles,
}

impl EndToEndReport {
    /// End-to-end time of this run divided by `baseline`'s.
    #[must_use]
    pub fn normalized_to(&self, baseline: &EndToEndReport) -> f64 {
        self.total.as_f64() / baseline.total.as_f64()
    }
}

/// Stream one tensor through the CPU protected path as a single long
/// burst: the write-combining `ts_write_block` loop issues back-to-back
/// blocks, so DRAM fill latency is paid once per tensor.
fn stream_tensor(
    ctl: &mut MemoryController,
    info: tnpu_npu::alloc::TensorInfo,
    dir: Dir,
    arrival: Cycles,
) -> Cycles {
    let t = Transfer {
        pattern: DmaPattern::Contiguous {
            base: info.addr,
            bytes: info.bytes,
        },
        dir,
        tensor_id: info.id,
        tile_id: 0,
        version: 1,
    };
    ctl.serve(&t, arrival).completion
}

/// Run the complete request path for `model` on one NPU under `scheme`.
#[must_use]
pub fn run_end_to_end(model: &Model, npu: &NpuConfig, scheme: SchemeKind) -> EndToEndReport {
    run_end_to_end_seeded(model, npu, scheme, 0xE2E)
}

/// [`run_end_to_end`] with an explicit workload seed for the embedding
/// gather streams — the hook sweep runners use to key each cell's RNG to
/// what is simulated rather than to a shared constant.
#[must_use]
pub fn run_end_to_end_seeded(
    model: &Model,
    npu: &NpuConfig,
    scheme: SchemeKind,
    seed: u64,
) -> EndToEndReport {
    let engine = build_engine(scheme, &ProtectionConfig::paper_default());
    let mut ctl = MemoryController::new(engine, npu);
    let layout = ModelLayout::allocate(model, Addr(0));

    // Phase 1: CPU-side initialization — the input tensor plus every
    // distinct weight tensor (tied weights are written once).
    let mut init_done = stream_tensor(&mut ctl, layout.input, Dir::Write, Cycles::ZERO);
    for (li, weight) in layout.weights.iter().enumerate() {
        if let Some(w) = weight {
            if model.layers[li].weights_shared_with.is_some() {
                continue;
            }
            init_done = stream_tensor(&mut ctl, *w, Dir::Write, init_done);
        }
    }

    // Phase 2: NPU inference. The controller is busy until init_done, so
    // the machine's transfers queue behind the initialization.
    let plan = tiler::plan(model, npu, &layout, seed);
    let mut machine = NpuMachine::new(plan);
    while !machine.is_done() {
        machine.serve_next(&mut ctl);
    }
    let report = machine.into_report(&ctl);
    let inference_done = report.total;

    // Phase 3: CPU reads the output back.
    let out = *layout.outputs.last().expect("models have layers");
    let total = stream_tensor(&mut ctl, out, Dir::Read, inference_done);

    EndToEndReport {
        scheme,
        init_done,
        inference_done,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnpu_models::registry;

    fn e2e(name: &str, scheme: SchemeKind) -> EndToEndReport {
        let model = registry::model(name).expect("registered");
        run_end_to_end(&model, &NpuConfig::small_npu(), scheme)
    }

    #[test]
    fn phases_are_ordered() {
        let r = e2e("df", SchemeKind::Unsecure);
        assert!(r.init_done.0 > 0);
        assert!(r.inference_done > r.init_done);
        assert!(r.total > r.inference_done);
    }

    #[test]
    fn end_to_end_ordering_across_schemes() {
        let u = e2e("df", SchemeKind::Unsecure);
        let t = e2e("df", SchemeKind::Treeless);
        let b = e2e("df", SchemeKind::TreeBased);
        assert!(u.total <= t.total);
        assert!(t.total <= b.total);
    }

    #[test]
    fn overheads_are_diluted_for_gather_heavy_models() {
        // Fig. 17's point: the end-to-end overheads (14.1 % baseline
        // average) sit below the NPU-only ones (21.1 %) because the models
        // with spiky inference overhead (fine-grained gathers) stream
        // their parameters cheaply during initialization. ncf is the
        // cheapest such model to simulate.
        let model = registry::model("ncf").expect("registered");
        let npu = NpuConfig::small_npu();
        let u_npu = tnpu_npu::simulate(&model, &npu, SchemeKind::Unsecure)
            .total
            .as_f64();
        let b_npu = tnpu_npu::simulate(&model, &npu, SchemeKind::TreeBased)
            .total
            .as_f64();
        let u = run_end_to_end(&model, &npu, SchemeKind::Unsecure);
        let b = run_end_to_end(&model, &npu, SchemeKind::TreeBased);
        let npu_overhead = b_npu / u_npu;
        let e2e_overhead = b.normalized_to(&u);
        assert!(e2e_overhead > 1.0);
        assert!(
            e2e_overhead < npu_overhead,
            "e2e {e2e_overhead:.3} should be diluted below npu-only {npu_overhead:.3}"
        );
    }

    #[test]
    fn init_scales_with_parameters() {
        // A parameter-heavy model spends proportionally longer in init.
        let light = e2e("df", SchemeKind::Unsecure);
        let heavy = e2e("alex", SchemeKind::Unsecure);
        let light_frac = light.init_done.as_f64() / light.total.as_f64();
        let heavy_frac = heavy.init_done.as_f64() / heavy.total.as_f64();
        assert!(heavy_frac > light_frac);
    }
}
