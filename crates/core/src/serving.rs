//! Multi-tenant secure serving: request generation, scheduling, and
//! faithful context-switch accounting (paper §IV-E).
//!
//! The paper's evaluation runs one inference at a time; a real deployment
//! multiplexes many tenants' enclaves over a pool of NPUs. This module
//! simulates that serving plane on top of the existing single-inference
//! machinery:
//!
//! * **Request generation** — open-loop Poisson and bursty arrival
//!   processes plus a closed-loop (fixed-client) process, over a weighted
//!   per-model traffic mix. Arrival times, model picks, and per-request
//!   input seeds are all derived from labels via
//!   [`SplitMix64::seed_from_labels`] — never from the scheme or the
//!   scheduling policy — so every scheme serves the *identical* request
//!   stream and tail latencies compare like with like.
//! * **Scheduling** — FCFS and priority-preemptive policies over an
//!   NPU pool. Preemption happens only at layer boundaries: a layer's
//!   tile loop is not interruptible (suspending mid-layer would leave a
//!   tensor half-bumped, exactly the state
//!   [`SecureRunner`](crate::secure_runner::SecureRunner) refuses to
//!   expose).
//! * **Context-switch accounting** — suspending a secure context is not
//!   free. A switch-out saves the software [`VersionTable`] (one
//!   [`version_access`](tnpu_memprot::ProtectionEngine::version_access)
//!   per entry for the treeless scheme — the table lives in the
//!   fully-protected region), flushes the engine's dirty metadata
//!   ([`flush`](tnpu_memprot::ProtectionEngine::flush)), moves the table
//!   image plus the engine's per-context state
//!   ([`context_state_bytes`](tnpu_memprot::ProtectionEngine::context_state_bytes))
//!   as protected-region DMA priced by [`AccessCost::beat_cycles`], and
//!   shoots down the IOMMU TLB
//!   (cf. [`context`](crate::context)'s stale-translation hazard). A
//!   switch-in replays the table transfer, re-programs NELRANGE, and
//!   re-fills nothing — caches warm up on their own cycles. The unsecure
//!   scheme has no engine state, no version table, and no enclave, so its
//!   switches cost exactly zero; the gap *is* the cost of trusted
//!   execution.
//!
//! The simulator is a discrete-event loop over integer cycle time with a
//! deterministic tie-break sequence, so a serving cell's
//! [`ServeReport`] is a pure function of its [`ServeSpec`] — byte-stable
//! across runs, thread counts, and machines.
//!
//! In *functional* mode ([`ServeSpec::functional`]) each request drives a
//! real [`SecureRunner`] over real encrypted bytes: preemption calls
//! [`suspend`](crate::secure_runner::SecureRunner::suspend), re-dispatch
//! calls [`resume`](crate::secure_runner::SecureRunner::resume), and each
//! completed request's output is verified against an unpreempted
//! unsecure-memory reference — the proof that multiplexing never changes
//! what a tenant computes.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, OnceLock};

use crate::secure_runner::{RunnerSnapshot, SecureRunner};
use crate::version::ENTRY_BYTES;
use crate::{RunSpec, Scheme, VersionTable};
use tnpu_crypto::Key128;
use tnpu_memprot::functional::{build_functional, FunctionalMemory, UnsecureMemory};
use tnpu_memprot::{build_engine, AccessCost, ProtectionConfig, ProtectionEngine};
use tnpu_models::registry;
use tnpu_npu::alloc::ModelLayout;
use tnpu_npu::NpuConfig;
use tnpu_sim::dram::{BandwidthModel, DramTiming};
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Cycles to re-program the NELRANGE base/bound registers and the
/// per-context key slots on a switch-in (a handful of uncached MMIO
/// writes through the secure driver path).
pub const NELRANGE_PROGRAM_CYCLES: u64 = 200;

/// Cycles for the IOMMU TLB shoot-down a switch-out must complete before
/// the NPU can be handed to another context (invalidate + ack round
/// trip; cf. the stale-translation hazard in [`crate::context`]).
pub const TLB_SHOOTDOWN_CYCLES: u64 = 150;

/// Protected-region address at which a suspended context's version-table
/// image is spilled (inside NELRANGE, above the live table).
const VT_SPILL_BASE: u64 = 0x3800_0000;

/// How requests arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Open loop, exponential inter-arrivals at `load_pct`% of the
    /// pool's unsecure service capacity.
    Poisson {
        /// Offered load as a percentage of pool capacity (100 = the pool
        /// can just barely keep up at unsecure speed).
        load_pct: u32,
    },
    /// Open loop, arrivals in back-to-back bursts of `burst` requests;
    /// exponential gaps between bursts keep the same average load.
    Bursty {
        /// Offered load, as for [`ArrivalProcess::Poisson`].
        load_pct: u32,
        /// Requests per burst (all arrive at the same cycle).
        burst: u32,
    },
    /// Closed loop: `clients` tenants, each submitting its next request
    /// the moment the previous one completes (zero think time).
    Closed {
        /// Concurrent clients.
        clients: u32,
    },
}

impl ArrivalProcess {
    /// Stable label, part of seed derivation and report headers.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Poisson { load_pct } => format!("poisson-{load_pct}"),
            ArrivalProcess::Bursty { load_pct, burst } => format!("bursty-{load_pct}x{burst}"),
            ArrivalProcess::Closed { clients } => format!("closed-{clients}"),
        }
    }
}

/// Scheduling policy for the NPU pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// First come, first served; a dispatched request runs to completion.
    Fcfs,
    /// Priority preemptive: at every layer boundary a running request
    /// yields to a strictly higher-priority waiter (FCFS within a
    /// priority level; preempted requests keep their arrival order).
    Preemptive,
}

impl Policy {
    /// Stable label for report headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::Preemptive => "preempt",
        }
    }
}

/// One model's share of the traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixEntry {
    /// Registered model short name.
    pub model: String,
    /// Relative arrival weight.
    pub weight: u32,
    /// Priority (higher runs first under [`Policy::Preemptive`]).
    pub priority: u8,
}

/// A named, weighted traffic mix over the model zoo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficMix {
    /// Mix name — part of seed derivation.
    pub name: String,
    /// The models and their weights/priorities.
    pub entries: Vec<MixEntry>,
}

impl TrafficMix {
    /// Build a mix from `(model, weight, priority)` triples.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or all weights are zero.
    #[must_use]
    pub fn new(name: &str, entries: &[(&str, u32, u8)]) -> Self {
        assert!(
            !entries.is_empty(),
            "a traffic mix needs at least one model"
        );
        assert!(
            entries.iter().any(|&(_, w, _)| w > 0),
            "a traffic mix needs a nonzero weight"
        );
        TrafficMix {
            name: name.to_owned(),
            entries: entries
                .iter()
                .map(|&(model, weight, priority)| MixEntry {
                    model: model.to_owned(),
                    weight,
                    priority,
                })
                .collect(),
        }
    }
}

/// One cell of the serving grid: everything [`simulate`] needs.
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Experiment label — part of seed derivation, like
    /// [`RunSpec::experiment`].
    pub experiment: String,
    /// Traffic mix served.
    pub mix: TrafficMix,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Scheduling policy.
    pub policy: Policy,
    /// Protection scheme (switch costs and service times).
    pub scheme: Scheme,
    /// NPU configuration of every pool member.
    pub config: NpuConfig,
    /// NPUs in the pool.
    pub npus: usize,
    /// Requests to serve.
    pub requests: usize,
    /// Drive real [`SecureRunner`]s (slow; used by tests to prove
    /// preemption transparency). Cycle numbers are identical either way.
    pub functional: bool,
}

impl ServeSpec {
    /// A serving cell with the given knobs and functional mode off.
    ///
    /// The knob list mirrors the cell coordinates of the serving grid
    /// one-for-one; bundling them into an options struct would just
    /// rename the same eight fields.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        experiment: &str,
        mix: TrafficMix,
        arrival: ArrivalProcess,
        policy: Policy,
        scheme: Scheme,
        config: &NpuConfig,
        npus: usize,
        requests: usize,
    ) -> Self {
        ServeSpec {
            experiment: experiment.to_owned(),
            mix,
            arrival,
            policy,
            scheme,
            config: config.clone(),
            npus,
            requests,
            functional: false,
        }
    }

    /// The request-stream seed — a pure function of
    /// `(experiment, mix, arrival, config)`. The scheme and the policy
    /// are deliberately excluded so every scheme × policy cell of one
    /// serving group replays the identical request stream.
    #[must_use]
    pub fn stream_seed(&self) -> u64 {
        SplitMix64::seed_from_labels(&[
            "serve",
            &self.experiment,
            &self.mix.name,
            &self.arrival.label(),
            self.config.name,
        ])
    }

    /// `mix/arrival/policy/scheme/npus` — the label serving jobs report
    /// timings under.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            self.mix.name,
            self.arrival.label(),
            self.policy.label(),
            self.scheme.label(),
            self.npus
        )
    }
}

/// What happened to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Model served.
    pub model: String,
    /// Priority it was served at.
    pub priority: u8,
    /// Arrival cycle.
    pub arrival: u64,
    /// Cycle the first layer started (after the first switch-in).
    pub start: u64,
    /// Cycle the last layer finished.
    pub finish: u64,
    /// Times this request was preempted.
    pub preemptions: u32,
}

impl RequestOutcome {
    /// End-to-end latency (arrival → last layer done).
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.finish.saturating_sub(self.arrival)
    }
}

/// Result of simulating one [`ServeSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Scheme served.
    pub scheme: Scheme,
    /// Policy used.
    pub policy: Policy,
    /// Arrival-process label.
    pub arrival: String,
    /// Per-request outcomes, in arrival order.
    pub outcomes: Vec<RequestOutcome>,
    /// Context switch-ins (dispatches + resumptions).
    pub dispatches: u64,
    /// Preemptions across all requests.
    pub preemptions: u64,
    /// Cycles spent switching contexts (in + out), across the pool.
    pub switch_cycles: u64,
    /// Security-metadata bytes the switches moved.
    pub switch_meta_bytes: u64,
    /// Functional-mode outputs verified against unpreempted references
    /// (zero when [`ServeSpec::functional`] is off).
    pub verified_outputs: u64,
    /// Cycle the last NPU went idle.
    pub makespan: u64,
}

impl ServeReport {
    /// Nearest-rank latency percentile (`pct` in 1..=100), in cycles.
    ///
    /// # Panics
    ///
    /// Panics if there are no outcomes or `pct` is out of range.
    #[must_use]
    pub fn latency_percentile(&self, pct: u32) -> u64 {
        assert!((1..=100).contains(&pct), "percentile must be in 1..=100");
        let mut lat: Vec<u64> = self.outcomes.iter().map(RequestOutcome::latency).collect();
        assert!(!lat.is_empty(), "no outcomes");
        lat.sort_unstable();
        let rank = (lat.len() as u64 * u64::from(pct)).div_ceil(100);
        lat[rank as usize - 1]
    }

    /// Mean latency in cycles (integer division).
    #[must_use]
    pub fn mean_latency(&self) -> u64 {
        if self.outcomes.is_empty() {
            return 0;
        }
        let sum: u128 = self.outcomes.iter().map(|o| u128::from(o.latency())).sum();
        (sum / self.outcomes.len() as u128) as u64
    }

    /// Throughput in requests per million cycles, ×1000 (integer, for
    /// byte-stable rendering).
    #[must_use]
    pub fn milli_requests_per_mcycle(&self) -> u64 {
        if self.makespan == 0 {
            return 0;
        }
        ((self.outcomes.len() as u128 * 1_000_000_000) / u128::from(self.makespan)) as u64
    }
}

/// Per-model data the simulator needs, memoized across requests.
struct ModelData {
    /// Per-layer service durations under the cell's scheme.
    durations: Vec<u64>,
    /// Unsecure end-to-end cycles (offered-load normalization).
    unsecure_total: u64,
    /// Bytes of the version table a treeless switch must spill when the
    /// table is fully merged: one [`ENTRY_BYTES`] entry per registered
    /// tensor. This is the modeled fallback — a context holding a
    /// tile-expanded tensor at switch time spills more, and the charge
    /// sites prefer the live size from the runner or its snapshot.
    vt_bytes: u64,
    /// Functional-memory size in blocks.
    data_blocks: u64,
}

/// Process-wide memo for [`ModelData`]: the per-layer service trace of a
/// `(experiment, model, config, scheme)` cell is a pure function of its
/// key, and serving grids ask for the same handful of models from every
/// worker. Purely a compute cache — results are identical either way.
type ModelDataKey = (String, String, &'static str, &'static str);

fn model_data(experiment: &str, name: &str, config: &NpuConfig, scheme: Scheme) -> Arc<ModelData> {
    static CACHE: OnceLock<Mutex<BTreeMap<ModelDataKey, Arc<ModelData>>>> = OnceLock::new();
    let key = (
        experiment.to_owned(),
        name.to_owned(),
        config.name,
        scheme.label(),
    );
    if let Some(hit) = CACHE
        .get_or_init(Mutex::default)
        .lock()
        .expect("model-data cache")
        .get(&key)
    {
        return Arc::clone(hit);
    }
    let data = Arc::new(model_data_uncached(experiment, name, config, scheme));
    CACHE
        .get_or_init(Mutex::default)
        .lock()
        .expect("model-data cache")
        .entry(key)
        .or_insert(data)
        .clone()
}

fn model_data_uncached(
    experiment: &str,
    name: &str,
    config: &NpuConfig,
    scheme: Scheme,
) -> ModelData {
    let report = RunSpec::new(experiment, name, config, scheme, 1)
        .execute()
        .into_slowest();
    let mut durations = Vec::with_capacity(report.layers.len());
    let mut prev = 0u64;
    for layer in &report.layers {
        durations.push(layer.finish.0.saturating_sub(prev));
        prev = layer.finish.0;
    }
    let unsecure_total = RunSpec::new(experiment, name, config, Scheme::Unsecure, 1)
        .execute()
        .into_slowest()
        .total
        .0;
    let model = registry::model(name).unwrap_or_else(|| panic!("model {name:?} not registered"));
    let layout = ModelLayout::allocate(&model, Addr(0));
    // Mirrors SecureRunner::with_memory registration: the input, every
    // non-shared weight tensor, and every layer output get a table entry.
    let mut tensors = 1 + layout.outputs.len() as u64;
    for (li, w) in layout.weights.iter().enumerate() {
        if w.is_some() && model.layers[li].weights_shared_with.is_none() {
            tensors += 1;
        }
    }
    ModelData {
        durations,
        unsecure_total,
        vt_bytes: tensors * ENTRY_BYTES,
        data_blocks: layout.total_bytes.div_ceil(BLOCK_SIZE as u64).max(1),
    }
}

/// Charges context-switch traffic through the cell's protection engine.
///
/// Crate-visible so the stepped decode/train sessions
/// ([`crate::stepped`]) bill their mid-sequence preemptions through the
/// exact same cost model as the serving plane.
pub(crate) struct Switcher {
    scheme: Scheme,
    engine: Box<dyn ProtectionEngine>,
    bandwidth: BandwidthModel,
    dram: DramTiming,
    pub(crate) cycles: u64,
    pub(crate) meta_bytes: u64,
}

impl Switcher {
    pub(crate) fn new(scheme: Scheme, config: &NpuConfig) -> Self {
        Switcher {
            scheme,
            engine: build_engine(scheme, &ProtectionConfig::paper_default()),
            bandwidth: config.bandwidth,
            dram: config.dram,
            cycles: 0,
            meta_bytes: 0,
        }
    }

    /// Cycles one switch direction costs. `out` is a switch-out (spill +
    /// flush + TLB shoot-down); otherwise a switch-in (reload + NELRANGE
    /// re-programming). Unsecure contexts have nothing to save and no
    /// enclave to tear down: exactly zero.
    ///
    /// `vt_bytes` must be the *live* table size — a tensor that is
    /// tile-expanded at switch time (a decode session's KV cache
    /// mid-sequence) spills one entry per tile, not one per tensor.
    /// Callers with a running [`SecureRunner`] or a [`RunnerSnapshot`]
    /// take the size from there; the modeled (non-functional) path may
    /// use the static per-tensor count only because static models are
    /// fully merged at every layer boundary.
    pub(crate) fn charge(&mut self, vt_bytes: u64, out: bool) -> u64 {
        if self.scheme == Scheme::Unsecure {
            return 0;
        }
        let mut cost = AccessCost::FREE;
        // Only the treeless scheme keeps a software version table; the
        // tree-based and encrypt-only schemes spill engine state alone.
        let vt = if self.scheme == Scheme::Treeless {
            vt_bytes
        } else {
            0
        };
        for i in 0..vt / ENTRY_BYTES {
            cost.merge(
                self.engine
                    .version_access(Addr(VT_SPILL_BASE + i * ENTRY_BYTES), out),
            );
        }
        if out {
            cost.merge(self.engine.flush());
        }
        let moved = vt.saturating_add(self.engine.context_state_bytes());
        self.meta_bytes = self.meta_bytes.saturating_add(cost.meta_bytes);
        let beats = cost.beat_cycles(
            moved,
            &self.bandwidth,
            &self.dram,
            self.engine.pipeline_latency(),
        );
        let fixed = if out {
            TLB_SHOOTDOWN_CYCLES
        } else {
            NELRANGE_PROGRAM_CYCLES
        };
        let total = beats.saturating_add(fixed);
        self.cycles = self.cycles.saturating_add(total);
        total
    }
}

/// Pre-drawn identity of one request (model pick + input seed). Arrival
/// times come from the gap stream (open loop) or completions (closed
/// loop).
struct Template {
    entry: usize,
    seed: u64,
}

enum Event {
    Arrive(usize),
    LayerDone { req: usize, npu: usize },
    NpuFree(usize),
}

struct Ctx {
    entry: usize,
    arrival: u64,
    next_layer: usize,
    start: Option<u64>,
    preemptions: u32,
    runner: Option<SecureRunner<Box<dyn FunctionalMemory>>>,
    snapshot: Option<RunnerSnapshot>,
    reference: Option<Vec<u8>>,
}

/// Simulate one serving cell.
///
/// Deterministic: the report is a pure function of `spec`.
///
/// # Panics
///
/// Panics if the spec is degenerate (no NPUs, no requests, unregistered
/// model) or, in functional mode, if a verified output ever differs from
/// its unpreempted reference — that would be a correctness bug, not a
/// measurement.
#[must_use]
pub fn simulate(spec: &ServeSpec) -> ServeReport {
    assert!(spec.npus >= 1, "a pool needs at least one NPU");
    assert!(spec.requests >= 1, "serve at least one request");
    let base = spec.stream_seed();
    let mut gap_rng = SplitMix64::stream(base, 0);
    let mut pick_rng = SplitMix64::stream(base, 1);
    let mut seed_rng = SplitMix64::stream(base, 2);

    // Per-model service/spill data, memoized by model name.
    let mut data: BTreeMap<&str, Arc<ModelData>> = BTreeMap::new();
    for e in &spec.mix.entries {
        data.entry(&e.model)
            .or_insert_with(|| model_data(&spec.experiment, &e.model, &spec.config, spec.scheme));
    }

    // Offered-load normalization: the weighted-average unsecure service
    // time defines 100% load for one NPU.
    let total_weight: u64 = spec.mix.entries.iter().map(|e| u64::from(e.weight)).sum();
    let wavg_service: u64 = (spec
        .mix
        .entries
        .iter()
        .map(|e| u128::from(data[e.model.as_str()].unsecure_total) * u128::from(e.weight))
        .sum::<u128>()
        / u128::from(total_weight)) as u64;

    // Request identities, in arrival order (scheme/policy-free).
    let templates: Vec<Template> = (0..spec.requests)
        .map(|_| {
            let mut roll = pick_rng.next_below(total_weight);
            let mut entry = 0;
            for (i, e) in spec.mix.entries.iter().enumerate() {
                let w = u64::from(e.weight);
                if roll < w {
                    entry = i;
                    break;
                }
                roll -= w;
            }
            Template {
                entry,
                seed: seed_rng.next_u64(),
            }
        })
        .collect();

    let mut events: BTreeMap<(u64, u64), Event> = BTreeMap::new();
    let mut seq = 0u64;
    let push = |events: &mut BTreeMap<(u64, u64), Event>, seq: &mut u64, t: u64, e: Event| {
        events.insert((t, *seq), e);
        *seq += 1;
    };

    // Seed the arrival events.
    let mut issued;
    match spec.arrival {
        ArrivalProcess::Poisson { load_pct } => {
            assert!(load_pct > 0, "offered load must be positive");
            let mean = (u128::from(wavg_service) * 100 / (u128::from(load_pct) * spec.npus as u128))
                .max(1) as u64;
            let mut t = 0u64;
            for rid in 0..spec.requests {
                t = t.saturating_add(gap_rng.next_exponential(mean));
                push(&mut events, &mut seq, t, Event::Arrive(rid));
            }
            issued = spec.requests;
        }
        ArrivalProcess::Bursty { load_pct, burst } => {
            assert!(load_pct > 0 && burst > 0, "degenerate burst process");
            let mean = (u128::from(wavg_service) * 100 * u128::from(burst)
                / (u128::from(load_pct) * spec.npus as u128))
                .max(1) as u64;
            let mut t = 0u64;
            for rid in 0..spec.requests {
                if (rid as u32).is_multiple_of(burst) {
                    t = t.saturating_add(gap_rng.next_exponential(mean));
                }
                push(&mut events, &mut seq, t, Event::Arrive(rid));
            }
            issued = spec.requests;
        }
        ArrivalProcess::Closed { clients } => {
            assert!(clients > 0, "a closed loop needs clients");
            let first = (clients as usize).min(spec.requests);
            for rid in 0..first {
                push(&mut events, &mut seq, 0, Event::Arrive(rid));
            }
            issued = first;
        }
    }

    let mut ctxs: Vec<Option<Ctx>> = (0..spec.requests).map(|_| None).collect();
    // Waiting requests: (rank, arrival seq). FCFS ranks everyone equally;
    // preemptive ranks by inverted priority so the smallest key is the
    // most urgent, with arrival order breaking ties.
    let mut pending: BTreeSet<(u8, u64)> = BTreeSet::new();
    let rank = |policy: Policy, priority: u8| match policy {
        Policy::Fcfs => 0,
        Policy::Preemptive => u8::MAX - priority,
    };
    let mut free: BTreeSet<usize> = (0..spec.npus).collect();
    let mut switcher = Switcher::new(spec.scheme, &spec.config);

    let mut outcomes: Vec<Option<RequestOutcome>> = (0..spec.requests).map(|_| None).collect();
    let mut dispatches = 0u64;
    let mut preemptions = 0u64;
    let mut verified = 0u64;
    let mut makespan = 0u64;
    let mut done = 0usize;

    while let Some((&(now, _), _)) = events.iter().next() {
        let key = *events.keys().next().expect("nonempty");
        let event = events.remove(&key).expect("present");
        makespan = makespan.max(now);
        match event {
            Event::Arrive(rid) => {
                let tpl = &templates[rid];
                let entry = &spec.mix.entries[tpl.entry];
                let (runner, reference) = if spec.functional {
                    let model = registry::model(&entry.model).expect("registered");
                    let blocks = data[entry.model.as_str()].data_blocks;
                    let key = Key128::derive(format!("serve-{}-{rid}", spec.mix.name).as_bytes());
                    let mem = build_functional(spec.scheme, key, blocks);
                    let runner = SecureRunner::with_memory(&model, mem, tpl.seed);
                    // Unpreempted reference over plain memory: what the
                    // tenant must observe no matter how we schedule it.
                    let unsec: Box<dyn FunctionalMemory> = Box::new(UnsecureMemory::new());
                    let mut reference = SecureRunner::with_memory(&model, unsec, tpl.seed);
                    reference.run().expect("reference run is clean");
                    let out = reference.read_output().expect("reference output");
                    (Some(runner), Some(out))
                } else {
                    (None, None)
                };
                ctxs[rid] = Some(Ctx {
                    entry: tpl.entry,
                    arrival: now,
                    next_layer: 0,
                    start: None,
                    preemptions: 0,
                    runner,
                    snapshot: None,
                    reference,
                });
                pending.insert((rank(spec.policy, entry.priority), rid as u64));
            }
            Event::LayerDone { req, npu } => {
                let ctx = ctxs[req].as_mut().expect("running context exists");
                let entry = &spec.mix.entries[ctx.entry];
                let md = &data[entry.model.as_str()];
                if let Some(runner) = ctx.runner.as_mut() {
                    runner.step().expect("serving layers are untampered");
                }
                ctx.next_layer += 1;
                if ctx.next_layer == md.durations.len() {
                    // Complete: record the outcome, then pay the
                    // switch-out (final flush + TLB shoot-down) before
                    // the NPU can take the next context.
                    if let Some(runner) = ctx.runner.as_mut() {
                        let out = runner.read_output().expect("verified output");
                        assert_eq!(
                            Some(&out),
                            ctx.reference.as_ref(),
                            "scheduling must not change a tenant's output"
                        );
                        verified += 1;
                    }
                    outcomes[req] = Some(RequestOutcome {
                        model: entry.model.clone(),
                        priority: entry.priority,
                        arrival: ctx.arrival,
                        start: ctx.start.expect("started"),
                        finish: now,
                        preemptions: ctx.preemptions,
                    });
                    // Spill the live table: per-tile entries for any
                    // still-expanded tensor, not the per-tensor count.
                    let vt_bytes = ctx
                        .runner
                        .as_ref()
                        .map_or(md.vt_bytes, |r| r.version_table().storage_bytes());
                    ctx.runner = None;
                    done += 1;
                    let out_cycles = switcher.charge(vt_bytes, true);
                    push(&mut events, &mut seq, now + out_cycles, Event::NpuFree(npu));
                    if issued < spec.requests {
                        // Closed loop: the finishing client submits its
                        // next request immediately.
                        let rid = issued;
                        issued += 1;
                        push(&mut events, &mut seq, now, Event::Arrive(rid));
                    }
                } else {
                    // Preemption point: yield only to a strictly more
                    // urgent waiter.
                    let my_rank = rank(spec.policy, entry.priority);
                    let preempt = spec.policy == Policy::Preemptive
                        && pending.iter().next().is_some_and(|&(r, _)| r < my_rank);
                    if preempt {
                        ctx.preemptions += 1;
                        preemptions += 1;
                        if let Some(runner) = ctx.runner.as_ref() {
                            ctx.snapshot = Some(runner.suspend().expect("clean suspend"));
                        }
                        pending.insert((my_rank, req as u64));
                        // The snapshot carries the live table image —
                        // bill exactly what it spills.
                        let vt_bytes = ctx
                            .snapshot
                            .as_ref()
                            .map_or(md.vt_bytes, RunnerSnapshot::table_bytes);
                        let out_cycles = switcher.charge(vt_bytes, true);
                        push(&mut events, &mut seq, now + out_cycles, Event::NpuFree(npu));
                    } else {
                        let dur = md.durations[ctx.next_layer];
                        push(
                            &mut events,
                            &mut seq,
                            now + dur,
                            Event::LayerDone { req, npu },
                        );
                    }
                }
            }
            Event::NpuFree(npu) => {
                free.insert(npu);
            }
        }
        // Dispatch: fill free NPUs from the head of the queue.
        while !free.is_empty() && !pending.is_empty() {
            let &npu = free.iter().next().expect("nonempty");
            free.remove(&npu);
            let head = *pending.iter().next().expect("nonempty");
            pending.remove(&head);
            let rid = head.1 as usize;
            let ctx = ctxs[rid].as_mut().expect("pending context exists");
            let entry = &spec.mix.entries[ctx.entry];
            let md = &data[entry.model.as_str()];
            // A resumption reloads the snapshot's table image; a first
            // dispatch loads the freshly registered (merged) table.
            let vt_bytes = ctx
                .snapshot
                .as_ref()
                .map_or(md.vt_bytes, RunnerSnapshot::table_bytes);
            let in_cycles = switcher.charge(vt_bytes, false);
            dispatches += 1;
            if let Some(snapshot) = ctx.snapshot.take() {
                if let Some(runner) = ctx.runner.as_mut() {
                    runner.resume(&snapshot).expect("epoch-fresh resume");
                }
            }
            let start = now + in_cycles;
            ctx.start.get_or_insert(start);
            let dur = md.durations[ctx.next_layer];
            push(
                &mut events,
                &mut seq,
                start + dur,
                Event::LayerDone { req: rid, npu },
            );
        }
    }

    assert_eq!(done, spec.requests, "every request must complete");
    ServeReport {
        scheme: spec.scheme,
        policy: spec.policy,
        arrival: spec.arrival.label(),
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("completed"))
            .collect(),
        dispatches,
        preemptions,
        switch_cycles: switcher.cycles,
        switch_meta_bytes: switcher.meta_bytes,
        verified_outputs: verified,
        makespan,
    }
}

/// The version-table bytes a context switch of `model` must spill under
/// the treeless scheme — exposed for the bench tables.
///
/// # Panics
///
/// Panics if the model is not registered.
#[must_use]
pub fn spill_bytes(model: &str) -> u64 {
    let m = registry::model(model).unwrap_or_else(|| panic!("model {model:?} not registered"));
    let layout = ModelLayout::allocate(&m, Addr(0));
    let mut tensors = 1 + layout.outputs.len() as u64;
    for (li, w) in layout.weights.iter().enumerate() {
        if w.is_some() && m.layers[li].weights_shared_with.is_none() {
            tensors += 1;
        }
    }
    tensors * ENTRY_BYTES
}

// Referenced by the module docs.
#[allow(unused_imports)]
use VersionTable as _DocOnly;

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> TrafficMix {
        TrafficMix::new("quick", &[("ncf", 3, 0), ("sent", 1, 2)])
    }

    fn spec(scheme: Scheme, policy: Policy, arrival: ArrivalProcess) -> ServeSpec {
        ServeSpec::new(
            "serve-test",
            mix(),
            arrival,
            policy,
            scheme,
            &NpuConfig::small_npu(),
            2,
            12,
        )
    }

    #[test]
    fn simulate_is_deterministic() {
        let s = spec(
            Scheme::Treeless,
            Policy::Preemptive,
            ArrivalProcess::Poisson { load_pct: 80 },
        );
        assert_eq!(simulate(&s), simulate(&s));
    }

    #[test]
    fn request_stream_ignores_scheme_and_policy() {
        let a = spec(
            Scheme::Unsecure,
            Policy::Fcfs,
            ArrivalProcess::Poisson { load_pct: 80 },
        );
        let b = spec(
            Scheme::Treeless,
            Policy::Preemptive,
            ArrivalProcess::Poisson { load_pct: 80 },
        );
        assert_eq!(a.stream_seed(), b.stream_seed());
        let ra = simulate(&a);
        let rb = simulate(&b);
        let ids = |r: &ServeReport| -> Vec<(String, u64)> {
            r.outcomes
                .iter()
                .map(|o| (o.model.clone(), o.arrival))
                .collect()
        };
        assert_eq!(ids(&ra), ids(&rb), "same arrivals, same models");
    }

    #[test]
    fn unsecure_switches_free_protected_switches_cost() {
        let arrival = ArrivalProcess::Poisson { load_pct: 80 };
        let free = simulate(&spec(Scheme::Unsecure, Policy::Fcfs, arrival));
        assert_eq!(free.switch_cycles, 0, "no enclave, nothing to save");
        assert!(free.dispatches >= 12, "every request dispatched");
        let mut prev = 0u64;
        for scheme in [Scheme::EncryptOnly, Scheme::TreeBased, Scheme::Treeless] {
            let r = simulate(&spec(scheme, Policy::Fcfs, arrival));
            assert!(
                r.switch_cycles > 0,
                "{scheme}: protected switches cost cycles"
            );
            assert!(
                r.switch_cycles > prev,
                "{scheme}: more state, costlier switch"
            );
            prev = r.switch_cycles;
        }
    }

    /// High offered load over a single NPU: high-priority arrivals always
    /// find the NPU busy and (under the preemptive policy) must evict the
    /// running context at its next layer boundary.
    fn contended(scheme: Scheme, policy: Policy) -> ServeSpec {
        let mut s = spec(scheme, policy, ArrivalProcess::Poisson { load_pct: 95 });
        s.npus = 1;
        s.requests = 20;
        s
    }

    #[test]
    fn fcfs_never_preempts_priority_does() {
        let fcfs = simulate(&contended(Scheme::Treeless, Policy::Fcfs));
        assert_eq!(fcfs.preemptions, 0);
        let pre = simulate(&contended(Scheme::Treeless, Policy::Preemptive));
        assert!(pre.preemptions > 0, "priority traffic must preempt");
        // Preemption is supposed to help the high-priority class.
        let high_mean = |r: &ServeReport| {
            let hi: Vec<u64> = r
                .outcomes
                .iter()
                .filter(|o| o.priority > 0)
                .map(RequestOutcome::latency)
                .collect();
            assert!(!hi.is_empty(), "mix draws some high-priority requests");
            hi.iter().sum::<u64>() / hi.len() as u64
        };
        assert!(
            high_mean(&pre) < high_mean(&fcfs),
            "preemption must cut high-priority latency ({} vs {})",
            high_mean(&pre),
            high_mean(&fcfs)
        );
    }

    #[test]
    fn preempted_functional_outputs_match_unpreempted_references() {
        let mut s = contended(Scheme::Treeless, Policy::Preemptive);
        s.functional = true;
        let r = simulate(&s);
        assert_eq!(r.verified_outputs, 20, "every output verified");
        assert!(
            r.preemptions > 0,
            "the equivalence claim needs actual preemptions"
        );
    }

    #[test]
    fn bursty_arrivals_queue_harder_than_poisson() {
        let poisson = simulate(&spec(
            Scheme::Treeless,
            Policy::Fcfs,
            ArrivalProcess::Poisson { load_pct: 60 },
        ));
        let bursty = simulate(&spec(
            Scheme::Treeless,
            Policy::Fcfs,
            ArrivalProcess::Bursty {
                load_pct: 60,
                burst: 6,
            },
        ));
        assert!(
            bursty.latency_percentile(95) > poisson.latency_percentile(50),
            "bursts should stretch the tail"
        );
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mk = |lat: &[u64]| ServeReport {
            scheme: Scheme::Unsecure,
            policy: Policy::Fcfs,
            arrival: "test".to_owned(),
            outcomes: lat
                .iter()
                .map(|&l| RequestOutcome {
                    model: "m".to_owned(),
                    priority: 0,
                    arrival: 0,
                    start: 0,
                    finish: l,
                    preemptions: 0,
                })
                .collect(),
            dispatches: 0,
            preemptions: 0,
            switch_cycles: 0,
            switch_meta_bytes: 0,
            verified_outputs: 0,
            makespan: 100,
        };
        let r = mk(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(r.latency_percentile(50), 50);
        assert_eq!(r.latency_percentile(95), 100);
        assert_eq!(r.latency_percentile(99), 100);
        assert_eq!(r.latency_percentile(100), 100);
        assert_eq!(r.mean_latency(), 55);
        assert_eq!(r.milli_requests_per_mcycle(), 100_000_000);
    }

    /// The spill-sizing fix: a context whose table holds a tile-expanded
    /// tensor (a mid-sequence KV cache) must be billed one entry per
    /// tile. Same tensor count, more tiles, strictly costlier treeless
    /// switch — while the tree-based scheme, which keeps no software
    /// table, charges identically either way.
    #[test]
    fn expanded_tensor_spill_charges_per_tile_entries() {
        let config = NpuConfig::small_npu();
        // Three merged tensors vs the same three with one expanded to
        // 16 tiles (3 - 1 + 16 entries).
        let merged = 3 * ENTRY_BYTES;
        let expanded = (2 + 16) * ENTRY_BYTES;
        let charge_once = |scheme: Scheme, vt: u64| {
            let mut sw = Switcher::new(scheme, &config);
            let cycles = sw.charge(vt, true);
            (cycles, sw.meta_bytes)
        };
        let (tl_merged, tl_merged_meta) = charge_once(Scheme::Treeless, merged);
        let (tl_exp, tl_exp_meta) = charge_once(Scheme::Treeless, expanded);
        assert!(
            tl_exp > tl_merged,
            "per-tile entries must cost cycles ({tl_exp} vs {tl_merged})"
        );
        assert!(
            tl_exp_meta > tl_merged_meta,
            "per-tile entries must move metadata ({tl_exp_meta} vs {tl_merged_meta})"
        );
        let (tb_merged, _) = charge_once(Scheme::TreeBased, merged);
        let (tb_exp, _) = charge_once(Scheme::TreeBased, expanded);
        assert_eq!(
            tb_merged, tb_exp,
            "tree-based spills engine state alone, no version table"
        );
    }

    /// Static models are fully merged at every layer boundary, so the
    /// live table a functional run spills equals the modeled per-tensor
    /// fallback — the spill-sizing fix cannot move the quick serving
    /// grid (and `serve_reduced.txt` stays byte-identical).
    #[test]
    fn functional_switch_charges_match_modeled() {
        let mut functional = contended(Scheme::Treeless, Policy::Preemptive);
        functional.functional = true;
        let modeled = contended(Scheme::Treeless, Policy::Preemptive);
        let rf = simulate(&functional);
        let rm = simulate(&modeled);
        assert!(rf.preemptions > 0, "the comparison needs live snapshots");
        assert_eq!(rf.switch_cycles, rm.switch_cycles);
        assert_eq!(rf.switch_meta_bytes, rm.switch_meta_bytes);
    }

    #[test]
    fn spill_bytes_counts_registered_tensors() {
        // ncf: input + per-layer outputs + non-shared weights, 8 B each.
        let bytes = spill_bytes("ncf");
        assert!(bytes >= 3 * ENTRY_BYTES, "got {bytes}");
        assert_eq!(bytes % ENTRY_BYTES, 0);
    }
}
