//! CPU-side access to tree-less protected tensors (paper §IV-C).
//!
//! A CPU enclave initializes tensors and reads back results, but ordinary
//! cached loads/stores cannot carry version numbers. The paper adds
//! uncacheable block instructions backed by two small 64 B buffers per
//! core:
//!
//! * `ts_read_block` — fetch + verify one block into the read buffer,
//! * `ts_read_byte` — read a byte out of the read buffer,
//! * `ts_write_byte` — stage a byte into the write buffer,
//! * `ts_write_block` — MAC + flush the write buffer to memory.

use tnpu_memprot::functional::{FunctionalMemory, IntegrityError};
use tnpu_sim::{Addr, BLOCK_SIZE};

/// The per-core block buffers and their state.
#[derive(Debug)]
pub struct CpuTensorAccess {
    read_buf: [u8; BLOCK_SIZE],
    /// Which block the read buffer holds, if any.
    read_from: Option<Addr>,
    write_buf: [u8; BLOCK_SIZE],
}

/// Errors of the `ts_*` instruction set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsError {
    /// The block fetch failed integrity verification.
    Integrity(IntegrityError),
    /// `ts_read_byte` with no valid read buffer.
    ReadBufferEmpty,
    /// Byte offset outside the 64 B buffer.
    OffsetOutOfRange {
        /// The offending offset.
        offset: usize,
    },
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::Integrity(e) => write!(f, "integrity failure: {e}"),
            TsError::ReadBufferEmpty => write!(f, "read buffer not filled"),
            TsError::OffsetOutOfRange { offset } => {
                write!(f, "offset {offset} outside the 64 B buffer")
            }
        }
    }
}

impl std::error::Error for TsError {}

impl From<IntegrityError> for TsError {
    fn from(e: IntegrityError) -> Self {
        TsError::Integrity(e)
    }
}

impl Default for CpuTensorAccess {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuTensorAccess {
    /// Fresh buffers.
    #[must_use]
    pub fn new() -> Self {
        CpuTensorAccess {
            read_buf: [0; BLOCK_SIZE],
            read_from: None,
            write_buf: [0; BLOCK_SIZE],
        }
    }

    /// `ts_read_block`: fetch and verify the block at `addr` with the
    /// expected `version` into the read buffer.
    ///
    /// # Errors
    ///
    /// [`TsError::Integrity`] when verification fails; the read buffer is
    /// invalidated in that case.
    pub fn ts_read_block(
        &mut self,
        mem: &dyn FunctionalMemory,
        addr: Addr,
        version: u64,
    ) -> Result<(), TsError> {
        match mem.read_block(addr, version) {
            Ok(data) => {
                self.read_buf = data;
                self.read_from = Some(addr);
                Ok(())
            }
            Err(e) => {
                self.read_from = None;
                Err(e.into())
            }
        }
    }

    /// `ts_read_byte`: a byte from the read buffer.
    ///
    /// # Errors
    ///
    /// [`TsError::ReadBufferEmpty`] before any successful
    /// [`ts_read_block`](Self::ts_read_block);
    /// [`TsError::OffsetOutOfRange`] past the buffer.
    pub fn ts_read_byte(&self, offset: usize) -> Result<u8, TsError> {
        if self.read_from.is_none() {
            return Err(TsError::ReadBufferEmpty);
        }
        self.read_buf
            .get(offset)
            .copied()
            .ok_or(TsError::OffsetOutOfRange { offset })
    }

    /// `ts_write_byte`: stage a byte into the write buffer.
    ///
    /// # Errors
    ///
    /// [`TsError::OffsetOutOfRange`] past the buffer.
    pub fn ts_write_byte(&mut self, offset: usize, value: u8) -> Result<(), TsError> {
        *self
            .write_buf
            .get_mut(offset)
            .ok_or(TsError::OffsetOutOfRange { offset })? = value;
        Ok(())
    }

    /// `ts_write_block`: MAC the write buffer under `version` and flush it
    /// to `addr`. The buffer is cleared afterwards.
    pub fn ts_write_block(&mut self, mem: &mut dyn FunctionalMemory, addr: Addr, version: u64) {
        mem.write_block(addr, version, self.write_buf);
        self.write_buf = [0; BLOCK_SIZE];
    }

    /// Convenience: stream `data` to the protected region at `base`,
    /// block by block, under `version` — the CPU-side tensor
    /// initialization loop of Fig. 13 (a).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not block-aligned.
    pub fn write_tensor(
        &mut self,
        mem: &mut dyn FunctionalMemory,
        base: Addr,
        version: u64,
        data: &[u8],
    ) {
        assert_eq!(base.block_offset(), 0, "tensor base must be block aligned");
        for (i, chunk) in data.chunks(BLOCK_SIZE).enumerate() {
            for (off, &b) in chunk.iter().enumerate() {
                // tnpu-lint: allow(panic-path) — `off < BLOCK_SIZE` by
                // chunks(BLOCK_SIZE), and the staging buffer is one block.
                self.ts_write_byte(off, b).expect("offset within buffer");
            }
            self.ts_write_block(mem, base.offset((i * BLOCK_SIZE) as u64), version);
        }
    }

    /// Convenience: read `len` bytes back from the protected region.
    ///
    /// # Errors
    ///
    /// [`TsError::Integrity`] if any block fails verification.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not block-aligned.
    pub fn read_tensor(
        &mut self,
        mem: &dyn FunctionalMemory,
        base: Addr,
        version: u64,
        len: usize,
    ) -> Result<Vec<u8>, TsError> {
        assert_eq!(base.block_offset(), 0, "tensor base must be block aligned");
        let mut out = Vec::with_capacity(len);
        let mut remaining = len;
        let mut block = 0u64;
        while remaining > 0 {
            self.ts_read_block(mem, base.offset(block * BLOCK_SIZE as u64), version)?;
            let take = remaining.min(BLOCK_SIZE);
            for off in 0..take {
                out.push(self.ts_read_byte(off)?);
            }
            remaining -= take;
            block += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnpu_crypto::Key128;
    use tnpu_memprot::functional::TreelessMemory;

    fn mem() -> TreelessMemory {
        TreelessMemory::new(Key128::derive(b"cpu-access"))
    }

    #[test]
    fn byte_level_roundtrip() {
        let mut m = mem();
        let mut cpu = CpuTensorAccess::new();
        cpu.ts_write_byte(0, 0xaa).expect("in range");
        cpu.ts_write_byte(63, 0x55).expect("in range");
        cpu.ts_write_block(&mut m, Addr(0), 1);
        cpu.ts_read_block(&m, Addr(0), 1).expect("verifies");
        assert_eq!(cpu.ts_read_byte(0), Ok(0xaa));
        assert_eq!(cpu.ts_read_byte(63), Ok(0x55));
        assert_eq!(cpu.ts_read_byte(1), Ok(0), "buffer cleared after flush");
    }

    #[test]
    fn read_before_fill_fails() {
        let cpu = CpuTensorAccess::new();
        assert_eq!(cpu.ts_read_byte(0), Err(TsError::ReadBufferEmpty));
    }

    #[test]
    fn offsets_bounded() {
        let mut cpu = CpuTensorAccess::new();
        assert_eq!(
            cpu.ts_write_byte(64, 0),
            Err(TsError::OffsetOutOfRange { offset: 64 })
        );
    }

    #[test]
    fn stale_version_rejected_and_buffer_invalidated() {
        let mut m = mem();
        let mut cpu = CpuTensorAccess::new();
        cpu.write_tensor(&mut m, Addr(0), 1, &[7u8; 64]);
        assert!(cpu.ts_read_block(&m, Addr(0), 2).is_err());
        assert_eq!(cpu.ts_read_byte(0), Err(TsError::ReadBufferEmpty));
    }

    #[test]
    fn tensor_streaming_roundtrip() {
        let mut m = mem();
        let mut cpu = CpuTensorAccess::new();
        let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        cpu.write_tensor(&mut m, Addr(4096), 3, &data);
        let back = cpu
            .read_tensor(&m, Addr(4096), 3, data.len())
            .expect("verifies");
        assert_eq!(back, data);
    }

    #[test]
    fn cpu_written_data_verifies_for_npu_path() {
        // The whole point of ts_* instructions: the CPU writes with the
        // same MAC scheme the NPU verifies with.
        let mut m = mem();
        let mut cpu = CpuTensorAccess::new();
        cpu.write_tensor(&mut m, Addr(0), 1, &[0x42u8; 128]);
        // "NPU" reads the raw blocks directly through the same memory.
        assert_eq!(m.read_block(Addr(0), 1).expect("verifies"), [0x42u8; 64]);
        assert_eq!(m.read_block(Addr(64), 1).expect("verifies"), [0x42u8; 64]);
    }
}
