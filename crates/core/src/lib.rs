#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! The paper's primary contribution, as a library.
//!
//! TNPU replaces the counter tree over NPU memory with *semantic-aware,
//! software-managed version numbers*: the CPU-side enclave software knows
//! the static data flow of the DNN, so it can assign one version number
//! per tensor (or per tile while a tensor is being produced), pass it with
//! every `mvin`/`mvout`, and let the per-block MACs bind it. This crate
//! implements that software stack and the system-level models built on it:
//!
//! * [`version`] — the version table with expand / bump / merge
//!   (paper §III-C, §IV-D, Figs. 9 & 13).
//! * [`cpu_access`] — the `ts_read_*`/`ts_write_*` uncacheable CPU
//!   instructions with their 64 B block buffers (§IV-C).
//! * [`instr`] — the compiler pass of Fig. 13 (a): lowering a tiled plan
//!   into the version-annotated secure instruction stream, plus a replay
//!   checker for its consistency.
//! * [`secure_runner`] — functional secure inference: real bytes through
//!   real crypto with version management end-to-end.
//! * [`recovery`] — bounded re-fetch retry and re-encryption epoch
//!   sweeps for *environmental* faults, with every recovery cycle
//!   charged through the scheme's cost engine.
//! * [`stepped`] — dynamic-dataflow sessions: autoregressive decode
//!   whose KV caches grow their tile-version state every append, and
//!   training loops whose weight rewrites churn through version limits.
//! * [`attacks`] — the adversarial attack-injection harness: seeded
//!   attacks against full functional inferences, classified into the
//!   scheme × attack detection matrix of §III/§IV-C.
//! * [`endtoend`] — the end-to-end latency model of Fig. 17.
//! * [`hwcost`] — the hardware-overhead accounting of §V-E.
//! * [`context`] — the secure-context lifecycle of §IV-E: enclave
//!   creation, NELRANGE pages, driver assignment, attestation, IOMMU.
//! * [`serving`] — multi-tenant serving: arrival processes, FCFS and
//!   priority-preemptive scheduling over an NPU pool, and faithful
//!   context-switch cost accounting through the protection engines.
//! * [`sensor`] — the sensor-to-enclave secure ingestion of Fig. 3
//!   (encrypted, authenticated, replay-protected frames).
//! * [`system`] — the [`TnpuSystem`] facade tying everything together.

pub mod attacks;
pub mod context;
pub mod cpu_access;
pub mod endtoend;
pub mod hwcost;
pub mod instr;
pub mod recovery;
pub mod runspec;
pub mod secure_runner;
pub mod sensor;
pub mod serving;
pub mod stepped;
pub mod system;
pub mod version;

pub use runspec::{RunResult, RunSpec};
pub use system::{SystemError, SystemReport, TnpuSystem};
pub use version::VersionTable;

/// The protection scheme selector, re-exported under the paper's
/// terminology ([`Scheme::Treeless`] is TNPU, [`Scheme::TreeBased`] the
/// prior-work baseline).
pub use tnpu_memprot::SchemeKind as Scheme;
