//! The `TnpuSystem` facade: one object that ties the NPU simulator, the
//! protection engines, and the secure software stack together.

use crate::endtoend::{run_end_to_end, EndToEndReport};
use crate::secure_runner::{RunError, SecureRunner};
use tnpu_crypto::Key128;
use tnpu_memprot::SchemeKind;
use tnpu_models::Model;
use tnpu_npu::{NpuConfig, RunReport};
use tnpu_sim::Cycles;

/// Error returned by [`TnpuSystem`] entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// The model's data-flow graph is invalid.
    InvalidModel(String),
    /// A functional run detected an integrity violation.
    Run(RunError),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::InvalidModel(e) => write!(f, "invalid model: {e}"),
            SystemError::Run(e) => write!(f, "secure run failed: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<RunError> for SystemError {
    fn from(e: RunError) -> Self {
        SystemError::Run(e)
    }
}

/// Timing result of one inference on the system.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemReport {
    /// End-to-end NPU cycles.
    pub total_time: Cycles,
    /// Full simulator report (traffic, engine statistics, per layer).
    pub npu: RunReport,
}

/// A simulated TNPU platform: an NPU configuration plus a protection
/// scheme.
///
/// # Examples
///
/// ```
/// use tnpu_core::{TnpuSystem, Scheme};
/// use tnpu_npu::config::NpuConfig;
///
/// let model = tnpu_models::registry::model("df").expect("registered");
/// let mut sys = TnpuSystem::new(NpuConfig::small_npu(), Scheme::Treeless);
/// let report = sys.run_inference(&model).expect("valid model");
/// assert!(report.total_time.0 > 0);
/// ```
#[derive(Debug, Clone)]
pub struct TnpuSystem {
    npu: NpuConfig,
    scheme: SchemeKind,
}

impl TnpuSystem {
    /// A system with the given NPU and scheme.
    #[must_use]
    pub fn new(npu: NpuConfig, scheme: SchemeKind) -> Self {
        TnpuSystem { npu, scheme }
    }

    /// The NPU configuration.
    #[must_use]
    pub fn npu(&self) -> &NpuConfig {
        &self.npu
    }

    /// The protection scheme.
    #[must_use]
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// Simulate one inference (timing mode).
    ///
    /// # Errors
    ///
    /// [`SystemError::InvalidModel`] if the model graph fails validation.
    pub fn run_inference(&mut self, model: &Model) -> Result<SystemReport, SystemError> {
        model.validate().map_err(SystemError::InvalidModel)?;
        let npu = tnpu_npu::simulate(model, &self.npu, self.scheme);
        Ok(SystemReport {
            total_time: npu.total,
            npu,
        })
    }

    /// Simulate `count` NPUs sharing the memory system (scalability mode,
    /// §V-C). Returns one report per NPU.
    ///
    /// # Errors
    ///
    /// [`SystemError::InvalidModel`] if the model graph fails validation.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn run_inference_multi(
        &mut self,
        model: &Model,
        count: usize,
    ) -> Result<Vec<SystemReport>, SystemError> {
        model.validate().map_err(SystemError::InvalidModel)?;
        Ok(
            tnpu_npu::simulate_multi(model, &self.npu, self.scheme, count)
                .into_iter()
                .map(|npu| SystemReport {
                    total_time: npu.total,
                    npu,
                })
                .collect(),
        )
    }

    /// Simulate the full end-to-end request path (§V-D).
    ///
    /// # Errors
    ///
    /// [`SystemError::InvalidModel`] if the model graph fails validation.
    pub fn run_end_to_end(&mut self, model: &Model) -> Result<EndToEndReport, SystemError> {
        model.validate().map_err(SystemError::InvalidModel)?;
        Ok(run_end_to_end(model, &self.npu, self.scheme))
    }

    /// Execute the model *functionally* — real bytes through real crypto
    /// with version management — and return the verified output. Intended
    /// for small models; every byte is encrypted and MAC'd in software.
    ///
    /// # Errors
    ///
    /// [`SystemError::Run`] if any verification fails (it cannot on an
    /// untampered run), [`SystemError::InvalidModel`] on a bad graph.
    pub fn run_functional(
        &mut self,
        model: &Model,
        key: Key128,
        seed: u64,
    ) -> Result<Vec<u8>, SystemError> {
        model.validate().map_err(SystemError::InvalidModel)?;
        let mut runner = SecureRunner::new(model, key, seed);
        runner.run()?;
        Ok(runner.read_output()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnpu_models::registry;

    #[test]
    fn timing_and_functional_modes_work() {
        let model = registry::model("agz").expect("registered");
        let mut sys = TnpuSystem::new(NpuConfig::small_npu(), SchemeKind::Treeless);
        let timing = sys.run_inference(&model).expect("valid");
        assert!(timing.total_time.0 > 0);
        let output = sys
            .run_functional(&model, Key128::derive(b"sys"), 1)
            .expect("verifies");
        assert!(!output.is_empty());
    }

    #[test]
    fn invalid_model_rejected() {
        let mut model = registry::model("agz").expect("registered");
        model.layers[1].inputs = vec![]; // corrupt the graph
        let mut sys = TnpuSystem::new(NpuConfig::small_npu(), SchemeKind::Treeless);
        assert!(matches!(
            sys.run_inference(&model),
            Err(SystemError::InvalidModel(_))
        ));
    }

    #[test]
    fn multi_reports_one_per_npu() {
        let model = registry::model("df").expect("registered");
        let mut sys = TnpuSystem::new(NpuConfig::large_npu(), SchemeKind::TreeBased);
        let reports = sys.run_inference_multi(&model, 3).expect("valid");
        assert_eq!(reports.len(), 3);
    }

    #[test]
    fn end_to_end_exceeds_npu_only() {
        let model = registry::model("df").expect("registered");
        let mut sys = TnpuSystem::new(NpuConfig::small_npu(), SchemeKind::Treeless);
        let npu_only = sys.run_inference(&model).expect("valid").total_time;
        let e2e = sys.run_end_to_end(&model).expect("valid").total;
        assert!(e2e > npu_only);
    }
}
