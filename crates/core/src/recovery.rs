//! Fault recovery for the secure runner: bounded retry and epoch-sweep
//! cost accounting.
//!
//! The adversary model (persistent, targeted tampering) is not the only
//! thing that makes a MAC check fail. Environmental faults — a bit flip
//! on the bus that is gone on the next fetch, a stalled DMA transfer, a
//! glitch in the crypto engine — produce the *same* `MacMismatch` but are
//! recoverable by simply fetching and verifying again. This module gives
//! [`SecureRunner`](crate::secure_runner::SecureRunner) that second
//! chance, with two invariants the tests pin down:
//!
//! * **Retries are never free.** Every re-fetch is charged through the
//!   same [`ProtectionEngine`] cycle model the NPU controller uses
//!   (transfer time for data + metadata, DRAM latency, pipeline latency,
//!   exposed miss stalls), plus an exponential backoff between attempts.
//!   Recovery changes the *latency* picture, never the security one.
//! * **Retries never mask persistence.** The retry budget is bounded; a
//!   block that still fails after `max_retries` re-fetches escalates to
//!   the caller as the original integrity error — a persistent fault or
//!   a real attack, and indistinguishable from one on purpose.
//!
//! The second recovery mechanism is the *re-encryption epoch sweep*
//! consumed on [`VersionError::Exhausted`](crate::version::VersionError):
//! re-key the memory, reset every version to 0, and re-encrypt every live
//! tensor under the new epoch. Its DMA + crypto cost is charged here too,
//! so the (rare) sweep shows up honestly in the cycle report.
//!
//! This file is under the `unchecked-arith` lint: all cycle accounting
//! uses saturating arithmetic, so a hostile cost report cannot wrap the
//! totals.

use tnpu_memprot::{AccessCost, ProtectionEngine};
use tnpu_sim::dram::{BandwidthModel, DramTiming};
use tnpu_sim::{Addr, BLOCK_SIZE};

/// How hard the runner tries before declaring a fault persistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-fetch attempts after the first failing read (0 disables retry).
    pub max_retries: u32,
    /// Cycles of backoff before the first retry.
    pub backoff_base: u64,
    /// Multiplier applied to the backoff after each attempt.
    pub backoff_factor: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base: 32,
            backoff_factor: 2,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry number `attempt` (0-based):
    /// `base * factor^attempt`, saturating.
    #[must_use]
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        let mut cycles = self.backoff_base;
        for _ in 0..attempt {
            cycles = cycles.saturating_mul(self.backoff_factor);
        }
        cycles
    }
}

/// What recovery has cost so far, in events and cycles.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Re-fetch attempts issued (including ones that failed again).
    pub retries: u64,
    /// Reads that failed at least once and then verified on a retry.
    pub recovered_reads: u64,
    /// Reads escalated as persistent (budget exhausted or not retryable).
    pub escalated_reads: u64,
    /// Re-encryption epoch sweeps completed.
    pub sweeps: u64,
    /// Blocks re-encrypted by sweeps (each charged a read and a write).
    pub sweep_blocks: u64,
    /// Cycles charged to retries (re-fetch cost plus backoff).
    pub retry_cycles: u64,
    /// Cycles charged to epoch sweeps (full-tensor DMA + crypto).
    pub sweep_cycles: u64,
}

impl RecoveryStats {
    /// Everything recovery cost, in cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.retry_cycles.saturating_add(self.sweep_cycles)
    }
}

/// Retry/sweep state attached to a [`SecureRunner`] by
/// [`enable_recovery`](crate::secure_runner::SecureRunner::enable_recovery).
///
/// Owns the cycle-cost [`ProtectionEngine`] matching the runner's
/// functional scheme, so recovery traffic is priced by the same model the
/// NPU controller uses for regular traffic.
pub struct Recovery {
    pub(crate) policy: RetryPolicy,
    engine: Box<dyn ProtectionEngine>,
    bandwidth: BandwidthModel,
    dram: DramTiming,
    pub(crate) stats: RecoveryStats,
}

impl std::fmt::Debug for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recovery")
            .field("policy", &self.policy)
            .field("scheme", &self.engine.scheme())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Recovery {
    /// Recovery priced against the large-NPU memory system (22 B/cycle,
    /// paper DRAM timing) — the configuration the headline figures use.
    #[must_use]
    pub fn new(policy: RetryPolicy, engine: Box<dyn ProtectionEngine>) -> Self {
        Recovery {
            policy,
            engine,
            bandwidth: BandwidthModel::bytes_per_cycle(22, 1),
            dram: DramTiming::paper_default(),
            stats: RecoveryStats::default(),
        }
    }

    /// Costs accrued so far.
    #[must_use]
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Cycles one 64 B block access costs under `cost` — the shared DMA
    /// beat formula ([`AccessCost::beat_cycles`]) priced against this
    /// recovery's memory system and the engine's pipeline latency.
    fn access_cycles(&self, cost: AccessCost) -> u64 {
        cost.beat_cycles(
            BLOCK_SIZE as u64,
            &self.bandwidth,
            &self.dram,
            self.engine.pipeline_latency(),
        )
    }

    /// Charge one re-fetch of `(addr, version)`: the verified-read cost
    /// plus the exponential backoff for 0-based retry `attempt`.
    pub(crate) fn charge_retry(&mut self, addr: Addr, version: u64, attempt: u32) {
        let cost = self.engine.read_block(addr, version);
        let cycles = self
            .access_cycles(cost)
            .saturating_add(self.policy.backoff_cycles(attempt));
        self.stats.retries = self.stats.retries.saturating_add(1);
        self.stats.retry_cycles = self.stats.retry_cycles.saturating_add(cycles);
    }

    /// Charge one sweep-phase verified read of a block being re-encrypted.
    pub(crate) fn charge_sweep_read(&mut self, addr: Addr, version: u64) {
        let cost = self.engine.read_block(addr, version);
        let cycles = self.access_cycles(cost);
        self.stats.sweep_cycles = self.stats.sweep_cycles.saturating_add(cycles);
    }

    /// Charge one sweep-phase re-encrypting write under the new epoch.
    pub(crate) fn charge_sweep_write(&mut self, addr: Addr, version: u64) {
        let cost = self.engine.write_block(addr, version);
        let cycles = self.access_cycles(cost);
        self.stats.sweep_blocks = self.stats.sweep_blocks.saturating_add(1);
        self.stats.sweep_cycles = self.stats.sweep_cycles.saturating_add(cycles);
    }

    /// Mark one sweep complete.
    pub(crate) fn note_sweep(&mut self) {
        self.stats.sweeps = self.stats.sweeps.saturating_add(1);
    }

    /// Mark a read that recovered after at least one retry.
    pub(crate) fn note_recovered(&mut self) {
        self.stats.recovered_reads = self.stats.recovered_reads.saturating_add(1);
    }

    /// Mark a read escalated as persistent.
    pub(crate) fn note_escalated(&mut self) {
        self.stats.escalated_reads = self.stats.escalated_reads.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_cycles(0), 32);
        assert_eq!(p.backoff_cycles(1), 64);
        assert_eq!(p.backoff_cycles(3), 256);
        let huge = RetryPolicy {
            max_retries: 200,
            backoff_base: u64::MAX / 2,
            backoff_factor: u64::MAX,
        };
        assert_eq!(huge.backoff_cycles(64), u64::MAX, "saturates, no wrap");
    }

    #[test]
    fn retries_are_charged_real_cycles() {
        let engine = build_engine(SchemeKind::Treeless, &ProtectionConfig::paper_default());
        let mut r = Recovery::new(RetryPolicy::default(), engine);
        r.charge_retry(Addr(0), 1, 0);
        let s = r.stats();
        assert_eq!(s.retries, 1);
        // At minimum: 64 B transfer at 22 B/cyc (3 cycles) + 100 DRAM
        // latency + backoff 32.
        assert!(s.retry_cycles > 100, "got {}", s.retry_cycles);
        // Later attempts cost more (backoff doubles).
        let before = s.retry_cycles;
        r.charge_retry(Addr(0), 1, 3);
        assert!(r.stats().retry_cycles - before > before);
    }

    #[test]
    fn sweep_charges_reads_writes_and_counts_blocks() {
        let engine = build_engine(SchemeKind::Treeless, &ProtectionConfig::paper_default());
        let mut r = Recovery::new(RetryPolicy::default(), engine);
        r.charge_sweep_read(Addr(0), 3);
        r.charge_sweep_write(Addr(0), 1);
        r.note_sweep();
        let s = r.stats();
        assert_eq!(s.sweeps, 1);
        assert_eq!(s.sweep_blocks, 1);
        assert!(s.sweep_cycles > 200, "read + write both priced");
        assert_eq!(s.total_cycles(), s.sweep_cycles + s.retry_cycles);
    }

    #[test]
    fn epoch_sweep_preserves_expanded_tensors() {
        // Regression test for the sweep × dynamic-dataflow interaction:
        // a KV cache mid-sequence is tile-expanded at sweep time and must
        // survive the sweep with its expansion shape, per-tile
        // written/unwritten split, storage accounting, and plaintext all
        // intact — while pre-sweep snapshots turn stale. The old sweep
        // skipped expanded tensors entirely, silently dropping the cache.
        use crate::secure_runner::{epoch_sweep_tensors, TILE_BYTES};
        use crate::version::{VersionTable, ENTRY_BYTES};
        use tnpu_crypto::Key128;
        use tnpu_memprot::functional::TreelessMemory;
        use tnpu_npu::alloc::TensorInfo;

        let kv = TensorInfo {
            id: 0,
            addr: Addr(0),
            bytes: 4 * TILE_BYTES, // capacity: 4 tiles; 3 expanded so far
        };
        let weight = TensorInfo {
            id: 1,
            addr: Addr(4 * TILE_BYTES),
            bytes: 2 * BLOCK_SIZE as u64,
        };
        let mut table = VersionTable::new();
        table.register(kv.id);
        table.register(weight.id);
        let mut mem = TreelessMemory::new(Key128::derive(b"sweep-expanded"));

        // Mid-sequence state: 3 tiles expanded, tiles 0/1 at version 2,
        // tile 2 at 1 (the step in flight), tile 3 not yet appended.
        table.expand(kv.id, 2).expect("expand");
        table.expand(kv.id, 3).expect("grow");
        let write_tile = |mem: &mut TreelessMemory, tile: u32, version: u64| {
            for b in 0..TILE_BYTES / BLOCK_SIZE as u64 {
                let addr = kv
                    .addr
                    .offset(u64::from(tile) * TILE_BYTES + b * BLOCK_SIZE as u64);
                mem.write_block(addr, version, [tile as u8 + 1; BLOCK_SIZE]);
            }
        };
        for tile in 0..3u32 {
            table.bump_tile(kv.id, tile).expect("bump");
        }
        for tile in 0..2u32 {
            table.bump_tile(kv.id, tile).expect("bump");
            write_tile(&mut mem, tile, 2);
        }
        write_tile(&mut mem, 2, 1);
        let v = table.bump(weight.id).expect("bump");
        for b in 0..2u64 {
            mem.write_block(
                weight.addr.offset(b * BLOCK_SIZE as u64),
                v,
                [9; BLOCK_SIZE],
            );
        }

        let storage_before = table.storage_bytes();
        let peak_before = table.peak_storage_bytes();
        let stale = table.snapshot(0);
        let mut epoch = 0u64;
        epoch_sweep_tensors(&[kv, weight], &mut table, &mut mem, None, &mut epoch)
            .expect("sweep over intact state");

        assert_eq!(epoch, 1);
        // The expansion shape survives: still expanded, same tile count,
        // written tiles at 1 under the new epoch, storage bytes unmoved.
        assert_eq!(table.is_expanded(kv.id), Ok(true));
        assert_eq!(table.tile_count(kv.id), Ok(3));
        for tile in 0..3 {
            assert_eq!(table.version(kv.id, tile), Ok(1), "tile {tile}");
        }
        assert_eq!(table.version(weight.id, 0), Ok(1));
        assert_eq!(table.storage_bytes(), storage_before);
        assert_eq!(table.storage_bytes(), 3 * ENTRY_BYTES + ENTRY_BYTES);
        assert_eq!(table.peak_storage_bytes(), peak_before);
        // Plaintext round-trips under the new keys and versions.
        for tile in 0..3u32 {
            let addr = kv.addr.offset(u64::from(tile) * TILE_BYTES);
            let block = mem.read_block(addr, 1).expect("verifies in new epoch");
            assert_eq!(block, [tile as u8 + 1; BLOCK_SIZE], "tile {tile}");
        }
        // The growth path still works post-sweep: appending tile 3 seeds
        // it at the current max (1) and its first bump writes at 2.
        table.expand(kv.id, 4).expect("grow post-sweep");
        assert_eq!(table.bump_tile(kv.id, 3), Ok(2));
        // A pre-sweep snapshot is now a typed staleness refusal.
        assert_eq!(
            table.restore(&stale, epoch),
            Err(crate::version::VersionError::StaleSnapshot {
                snapshot: 0,
                current: 1
            })
        );
    }

    #[test]
    fn unsecure_recovery_still_pays_dram_costs() {
        // Even with a free protection engine the re-fetch moves 64 B over
        // the bus and pays DRAM latency — recovery is never zero-cost.
        let engine = build_engine(SchemeKind::Unsecure, &ProtectionConfig::paper_default());
        let mut r = Recovery::new(
            RetryPolicy {
                backoff_base: 0,
                ..RetryPolicy::default()
            },
            engine,
        );
        r.charge_retry(Addr(64), 1, 0);
        assert!(r.stats().retry_cycles >= 100);
    }
}
