//! End-to-end attack-injection harness over the functional schemes.
//!
//! For every scheme × attack pair this module drives a full functional
//! inference ([`SecureRunner`]) over the scheme's memory, lets a seeded
//! [`Adversary`] tamper with the untrusted store at a deterministic
//! injection point, and classifies what happened:
//!
//! * **Detected** — a verified read failed (what §III/§IV-C promise for
//!   the tree-less and tree-based schemes on every integrity/replay
//!   attack).
//! * **Corrupted** — the run completed but its output differs from an
//!   unattacked reference: the attack silently changed the computation
//!   (what encryption-only and unprotected memory admit).
//! * **Ineffective** — the run completed with the reference output: the
//!   injection did not land (a harness bug, not a scheme property — the
//!   expectations below never contain it).
//! * **NotApplicable** — the scheme has no surface for this attack (MAC
//!   substitution against a memory without MACs).
//!
//! Everything is seeded from *what is attacked* (model, scheme, attack
//! labels — [`SplitMix64::seed_from_labels`]), never from wall clock or
//! worker identity, so the full matrix is byte-identical across runs and
//! thread counts.
//!
//! [`Adversary`]: tnpu_memprot::adversary::Adversary

use crate::secure_runner::{RunError, SecureRunner};
use crate::Scheme;
use tnpu_crypto::Key128;
use tnpu_memprot::adversary::{adversary, AttackKind, AttackPoint};
use tnpu_memprot::functional::{build_functional, IntegrityError, MismatchCause, UnsecureMemory};
use tnpu_models::{LayerKind, Model, TensorSource};
use tnpu_npu::alloc::{ModelLayout, TensorInfo};
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// The lifecycle state of the victim context when the tamper lands.
///
/// The original matrix attacks a context that is *live* on the NPU. A
/// multi-tenant pool (see [`crate::serving`]) exposes two more surfaces,
/// and the paper's detection claims must hold on all of them:
///
/// * [`Surface::Preempted`] — the victim is suspended at a layer boundary
///   ([`SecureRunner::suspend`]) when the attack lands and resumed
///   afterwards. Suspension must not open a window: the version table
///   travels with the context, so the next verified read after resume
///   still sees the tamper.
/// * [`Surface::CoResident`] — an innocent second tenant (same model,
///   own keys, own memory) shares the pool while the victim is attacked.
///   The victim's cell must classify exactly as when alone, *and* the
///   neighbor's own inference must finish with the untampered reference
///   output — attacking one tenant never corrupts another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// Victim live on the NPU (the original matrix).
    Resident,
    /// Victim suspended when the tamper lands, resumed after.
    Preempted,
    /// Victim attacked while an innocent tenant shares the pool.
    CoResident,
}

impl Surface {
    /// Every surface, in presentation order.
    pub const ALL: [Surface; 3] = [Surface::Resident, Surface::Preempted, Surface::CoResident];

    /// Stable label used in tables and seed derivation.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Surface::Resident => "resident",
            Surface::Preempted => "preempted",
            Surface::CoResident => "co-resident",
        }
    }
}

impl std::fmt::Display for Surface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What one injected attack did to one protected inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A verified read rejected the tampered state.
    Detected,
    /// The run finished with an output that differs from the unattacked
    /// reference — silent corruption.
    Corrupted,
    /// The run finished with the reference output (the injection did not
    /// land — never expected).
    Ineffective,
    /// The scheme exposes no surface for this attack.
    NotApplicable,
}

impl Outcome {
    /// Fixed-width table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Detected => "detected",
            Outcome::Corrupted => "corrupted",
            Outcome::Ineffective => "ineffective",
            Outcome::NotApplicable => "n/a",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One cell of the scheme × attack matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// Scheme under attack.
    pub scheme: Scheme,
    /// Attack injected.
    pub attack: AttackKind,
    /// What actually happened.
    pub outcome: Outcome,
    /// What the paper's claims predict.
    pub expected: Outcome,
    /// When detection came from a per-block MAC mismatch, which of the
    /// MAC's bindings the scheme diagnosed as inconsistent (content,
    /// address, or version). `None` for undetected cells and for
    /// detections that fired elsewhere (the counter tree).
    pub cause: Option<MismatchCause>,
}

impl CellResult {
    /// Whether the observed outcome matches the paper's claim.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.outcome == self.expected
    }
}

/// The paper's claim for one cell (§III threat model, §IV-C detection,
/// §II-B encryption-only gap): versioned-MAC and tree schemes detect every
/// attack; encryption-only and unprotected memory silently corrupt, except
/// where the attack has no surface at all.
#[must_use]
pub fn expected_outcome(scheme: Scheme, attack: AttackKind) -> Outcome {
    match scheme {
        Scheme::Treeless | Scheme::TreeBased => Outcome::Detected,
        Scheme::EncryptOnly | Scheme::Unsecure => match attack {
            AttackKind::MacSubstitution => Outcome::NotApplicable,
            _ => Outcome::Corrupted,
        },
    }
}

/// Which MAC binding each detected cell is expected to report broken.
///
/// * The tree-less scheme diagnoses every detection at the MAC: replayed
///   state verifies under a *nearby version* (the replay window the
///   versions close), spliced ciphertext verifies at its *donor address*,
///   and everything else — flips, rolled-back metadata, substituted MACs,
///   foreign-context blocks — is indistinguishable from corrupted
///   *content*.
/// * The tree-based scheme catches replay, rollback, and foreign splices
///   in the counter tree before the MAC is ever consulted (`None`); only
///   data-side tampers reach MAC diagnosis.
/// * Unprotected and encryption-only memory have no MACs: always `None`.
#[must_use]
pub fn expected_cause(scheme: Scheme, attack: AttackKind) -> Option<MismatchCause> {
    match scheme {
        Scheme::Unsecure | Scheme::EncryptOnly => None,
        Scheme::Treeless => Some(match attack {
            AttackKind::Replay => MismatchCause::Version,
            AttackKind::BlockSplice => MismatchCause::Address,
            _ => MismatchCause::Content,
        }),
        Scheme::TreeBased => match attack {
            AttackKind::Replay | AttackKind::VersionRollback | AttackKind::CrossContextSplice => {
                None
            }
            AttackKind::BlockSplice => Some(MismatchCause::Address),
            _ => Some(MismatchCause::Content),
        },
    }
}

/// Where the attacked tensor gets consumed — the step whose verified read
/// must catch the tamper.
#[derive(Debug, Clone, Copy)]
enum Consumer {
    /// Verified on the `mvin` of this layer.
    Layer(usize),
    /// Verified when the CPU reads the final output back.
    Final,
}

/// Layers whose output actually reaches the final output. Embedding
/// layers read only gathered table rows, so their declared inputs carry no
/// data into the run — liveness does not propagate through them. A dead
/// layer's tensors are written but never read; attacking one could never
/// change the output, so victims come from live layers only.
fn live_layers(model: &Model) -> Vec<bool> {
    let mut live = vec![false; model.layers.len()];
    let mut stack = vec![model.layers.len() - 1];
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        if matches!(model.layers[i].kind, LayerKind::Embedding { .. }) {
            continue;
        }
        for src in &model.layers[i].inputs {
            if let TensorSource::Layer(j) = src {
                stack.push(*j);
            }
        }
    }
    live
}

/// Every (consumer, victim tensor) pair the attack may target. The replay
/// family needs the victim *rewritten* between capture and injection —
/// the rewrite is what opens the replay window — so it is restricted to
/// tensors the second pass rewrites (the input and layer outputs), while
/// tamper-style attacks may also hit the static weights. Embedding tables
/// are excluded: only gathered rows are read, so a tampered block might
/// legitimately never be touched.
fn candidates(
    model: &Model,
    layout: &ModelLayout,
    attack: AttackKind,
) -> Vec<(Consumer, TensorInfo)> {
    let live = live_layers(model);
    let mut out = Vec::new();
    for (j, layer) in model.layers.iter().enumerate() {
        if !live[j] || matches!(layer.kind, LayerKind::Embedding { .. }) {
            continue;
        }
        for src in &layer.inputs {
            out.push((Consumer::Layer(j), layout.source(*src)));
        }
        if !attack.needs_capture() {
            if let Some(w) = layout.weights[j] {
                out.push((Consumer::Layer(j), w));
            }
        }
    }
    out.push((
        Consumer::Final,
        *layout.outputs.last().expect("models have layers"),
    ));
    out
}

/// A written block other than the victim, to serve as splice/MAC donor.
/// The input and weight tensors are always resident, so scanning them from
/// a seeded offset always terminates.
fn pick_donor(model: &Model, layout: &ModelLayout, victim: Addr, rng: &mut SplitMix64) -> Addr {
    let mut tensors = vec![layout.input];
    for (li, w) in layout.weights.iter().enumerate() {
        if let Some(w) = w {
            if model.layers[li].weights_shared_with.is_none() {
                tensors.push(*w);
            }
        }
    }
    for t in tensors {
        let blocks = t.bytes.div_ceil(BLOCK_SIZE as u64).max(1);
        let start = rng.next_below(blocks);
        for k in 0..blocks {
            let b = (start + k) % blocks;
            let addr = t.addr.offset(b * BLOCK_SIZE as u64);
            if addr != victim {
                return addr;
            }
        }
    }
    panic!("no written block distinct from the victim exists");
}

/// The unattacked second-pass output — the differential oracle. Computed
/// on unprotected memory: the layer arithmetic digests *plaintext*, so the
/// clean output is scheme-independent (asserted by the tests below).
fn reference_output(model: &Model, s1: u64, s2: u64) -> Vec<u8> {
    let mut r = SecureRunner::with_memory(model, UnsecureMemory::new(), s1);
    r.run().expect("unprotected pass 1 cannot fail");
    r.next_inference(s2).expect("input version bumps");
    r.run().expect("unprotected pass 2 cannot fail");
    r.read_output().expect("unprotected read cannot fail")
}

/// Cause a detected integrity failure reports, if it was a MAC mismatch.
fn mismatch_cause(e: IntegrityError) -> Option<MismatchCause> {
    match e {
        IntegrityError::MacMismatch { cause, .. } => Some(cause),
        _ => None,
    }
}

/// Drive the remaining layers and the final read-back, classifying against
/// the reference. On detection, also report which MAC binding the scheme
/// diagnosed as broken (if detection came from a MAC at all).
fn finish<M: tnpu_memprot::functional::FunctionalMemory>(
    runner: &mut SecureRunner<M>,
    reference: &[u8],
) -> (Outcome, Option<MismatchCause>) {
    while !runner.is_finished() {
        match runner.step() {
            Ok(_) => {}
            Err(RunError::Integrity(e)) => return (Outcome::Detected, mismatch_cause(e)),
            Err(e) => panic!("attack produced a non-integrity failure: {e}"),
        }
    }
    match runner.read_output() {
        Ok(out) if out == reference => (Outcome::Ineffective, None),
        Ok(_) => (Outcome::Corrupted, None),
        Err(RunError::Integrity(e)) => (Outcome::Detected, mismatch_cause(e)),
        Err(e) => panic!("attack produced a non-integrity failure: {e}"),
    }
}

/// Run one scheme × attack cell against a resident context: a clean first
/// inference, an adversary observation, then a second inference with the
/// attack injected right before the victim's consumer runs.
#[must_use]
pub fn run_cell(model: &Model, scheme: Scheme, attack: AttackKind) -> CellResult {
    run_cell_on(model, scheme, attack, Surface::Resident)
}

/// Run one scheme × attack cell against the given context [`Surface`].
///
/// The [`Surface::Resident`] path is byte-identical to the original
/// [`run_cell`] (same seed labels, same victim picks); the other surfaces
/// derive their own injection points but share the expectation tables —
/// the paper's claims do not weaken off the happy path.
#[must_use]
pub fn run_cell_on(
    model: &Model,
    scheme: Scheme,
    attack: AttackKind,
    surface: Surface,
) -> CellResult {
    let expected = expected_outcome(scheme, attack);
    let s1 = SplitMix64::seed_from_labels(&["attacks", &model.name, "pass1"]);
    let s2 = SplitMix64::seed_from_labels(&["attacks", &model.name, "pass2"]);
    let reference = reference_output(model, s1, s2);

    let layout = ModelLayout::allocate(model, Addr(0));
    let data_blocks = layout.total_bytes.div_ceil(BLOCK_SIZE as u64).max(1);
    let mem = build_functional(scheme, Key128::derive(b"attacks-victim"), data_blocks);
    let mut runner = SecureRunner::with_memory(model, mem, s1);
    runner.run().expect("clean pass 1 must verify");

    // The innocent co-resident tenant: same model, its own keys and
    // memory. It finishes its first pass before the victim is attacked
    // and its second pass after — both must stay clean.
    let mut neighbor = (surface == Surface::CoResident).then(|| {
        let mem = build_functional(scheme, Key128::derive(b"attacks-neighbor"), data_blocks);
        let mut n = SecureRunner::with_memory(model, mem, s1);
        n.run().expect("neighbor pass 1 must verify");
        n
    });

    // Resident cells keep the original seed labels so the frozen matrix
    // stays byte-identical; the new surfaces draw their own points.
    let seed = match surface {
        Surface::Resident => {
            SplitMix64::seed_from_labels(&["attacks", &model.name, scheme.label(), attack.label()])
        }
        _ => SplitMix64::seed_from_labels(&[
            "attacks",
            &model.name,
            scheme.label(),
            attack.label(),
            surface.label(),
        ]),
    };
    let mut rng = SplitMix64::new(seed);
    let cands = candidates(model, &layout, attack);
    let (consumer, tensor) = cands[rng.next_below(cands.len() as u64) as usize];
    let blocks = tensor.bytes.div_ceil(BLOCK_SIZE as u64).max(1);
    let victim_block = rng.next_below(blocks);
    let victim = tensor.addr.offset(victim_block * BLOCK_SIZE as u64);
    // Layer ingestion digests whole blocks; only the final read-back
    // truncates to the tensor's real length, so bit-flips against the
    // last partially-used block must stay in the bytes the CPU reads.
    let live_bytes = match consumer {
        Consumer::Layer(_) => BLOCK_SIZE,
        Consumer::Final => usize::try_from(tensor.bytes - victim_block * BLOCK_SIZE as u64)
            .expect("block tail fits usize")
            .min(BLOCK_SIZE),
    };
    let donor = pick_donor(model, &layout, victim, &mut rng);

    let mut adv = adversary(attack);
    adv.observe(runner.memory(), victim);

    runner.next_inference(s2).expect("input version bumps");
    let inject_after = match consumer {
        Consumer::Layer(j) => j,
        Consumer::Final => model.layers.len(),
    };
    for _ in 0..inject_after {
        runner.step().expect("pre-injection layers are untampered");
    }

    let version = runner
        .version_table()
        .version(tensor.id, 0)
        .expect("victim tensor is registered");
    let mut foreign = (attack == AttackKind::CrossContextSplice)
        .then(|| build_functional(scheme, Key128::derive(b"attacks-foreign"), data_blocks));
    // On the preempted surface the tamper lands while the context is
    // suspended at this layer boundary: snapshot, inject, resume. Resume
    // itself must succeed — the snapshot is epoch-fresh and the version
    // table travels with the context — so detection is deferred to the
    // next verified read, exactly as for a resident context.
    let snapshot =
        (surface == Surface::Preempted).then(|| runner.suspend().expect("boundary suspend"));
    let changed = {
        let mut point = AttackPoint {
            victim,
            donor,
            version,
            live_bytes,
            foreign: foreign.as_deref_mut().map(|f| f as _),
            rng: &mut rng,
        };
        adv.inject(runner.memory_mut(), &mut point)
    };
    if let Some(snapshot) = &snapshot {
        runner
            .resume(snapshot)
            .expect("resuming over tampered memory succeeds; the next read detects");
    }
    let (outcome, cause) = if changed {
        finish(&mut runner, &reference)
    } else {
        (Outcome::NotApplicable, None)
    };
    if let Some(n) = neighbor.as_mut() {
        // Tenant isolation: whatever happened to the victim, the
        // co-resident tenant's own inference is untouched.
        n.next_inference(s2).expect("neighbor input bumps");
        n.run().expect("neighbor pass 2 must verify");
        let out = n.read_output().expect("neighbor output must verify");
        assert_eq!(
            out, reference,
            "attacking one tenant corrupted a co-resident tenant ({scheme} × {attack})"
        );
    }
    CellResult {
        scheme,
        attack,
        outcome,
        expected,
        cause,
    }
}

/// The full scheme × attack matrix for one model, in presentation order.
#[must_use]
pub fn run_matrix(model: &Model) -> Vec<CellResult> {
    run_matrix_on(model, Surface::Resident)
}

/// The full scheme × attack matrix for one model on one context surface.
#[must_use]
pub fn run_matrix_on(model: &Model, surface: Surface) -> Vec<CellResult> {
    let mut out = Vec::with_capacity(Scheme::ALL.len() * AttackKind::ALL.len());
    for scheme in Scheme::ALL {
        for attack in AttackKind::ALL {
            out.push(run_cell_on(model, scheme, attack, surface));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnpu_models::builder::ModelBuilder;

    fn tiny() -> Model {
        ModelBuilder::new("tiny", "TinyNet", (4, 8, 8))
            .conv("c1", 8, 3, 1, 1)
            .pool("p1", 2, 2)
            .fc("fc", 16)
            .build()
    }

    fn tiny_embed() -> Model {
        ModelBuilder::new("tiny-embed", "TinyEmbed", (1, 1, 8))
            .embedding("emb", 64, 16, 4)
            .fc("fc", 8)
            .build()
    }

    #[test]
    fn full_matrix_matches_paper_claims_both_directions() {
        // Every cell must land exactly where §III/§IV-C predict: detection
        // on the versioned schemes, silent corruption (not detection!) on
        // encryption-only and unprotected memory.
        for cell in run_matrix(&tiny()) {
            assert_eq!(
                cell.outcome, cell.expected,
                "{} × {}: got {}, paper claims {}",
                cell.scheme, cell.attack, cell.outcome, cell.expected
            );
        }
    }

    #[test]
    fn embedding_models_follow_the_same_matrix() {
        for cell in run_matrix(&tiny_embed()) {
            assert_eq!(
                cell.outcome, cell.expected,
                "{} × {} on embedding model",
                cell.scheme, cell.attack
            );
        }
    }

    #[test]
    fn matrix_is_deterministic() {
        assert_eq!(run_matrix(&tiny()), run_matrix(&tiny()));
    }

    #[test]
    fn preempted_and_co_resident_surfaces_match_the_same_claims() {
        // Suspending the victim when the tamper lands, or adding an
        // innocent co-resident tenant, must not weaken (or change) a
        // single cell of the matrix — and the co-resident run also
        // asserts the neighbor's output stays clean.
        let model = tiny();
        for surface in [Surface::Preempted, Surface::CoResident] {
            for cell in run_matrix_on(&model, surface) {
                assert_eq!(
                    cell.outcome, cell.expected,
                    "{} × {} on {surface}: got {}, paper claims {}",
                    cell.scheme, cell.attack, cell.outcome, cell.expected
                );
                assert_eq!(
                    cell.cause,
                    expected_cause(cell.scheme, cell.attack),
                    "{} × {} on {surface}: diagnosed {:?}",
                    cell.scheme,
                    cell.attack,
                    cell.cause
                );
            }
        }
    }

    #[test]
    fn resident_surface_is_the_original_cell() {
        // `run_cell` must stay byte-for-byte the resident path — the
        // frozen bench matrix depends on it.
        let model = tiny();
        for scheme in Scheme::ALL {
            for attack in AttackKind::ALL {
                assert_eq!(
                    run_cell(&model, scheme, attack),
                    run_cell_on(&model, scheme, attack, Surface::Resident),
                );
            }
        }
    }

    #[test]
    fn extended_surfaces_are_deterministic() {
        let model = tiny();
        for surface in Surface::ALL {
            assert_eq!(
                run_matrix_on(&model, surface),
                run_matrix_on(&model, surface),
                "{surface}"
            );
        }
    }

    #[test]
    fn detected_cells_diagnose_the_expected_cause() {
        // The cause discriminant is part of the detection contract: the
        // tree-less scheme must tell replay (version binding) apart from
        // relocation (address binding) apart from corruption (content),
        // and the tree must intercept counter-side attacks before MAC
        // diagnosis.
        for cell in run_matrix(&tiny()) {
            assert_eq!(
                cell.cause,
                expected_cause(cell.scheme, cell.attack),
                "{} × {}: diagnosed {:?}",
                cell.scheme,
                cell.attack,
                cell.cause
            );
        }
    }

    #[test]
    fn undetected_cells_never_carry_a_cause() {
        for scheme in [Scheme::Unsecure, Scheme::EncryptOnly] {
            for attack in AttackKind::ALL {
                assert_eq!(expected_cause(scheme, attack), None, "{scheme} × {attack}");
            }
        }
    }

    #[test]
    fn clean_output_is_scheme_independent() {
        // The differential oracle's premise: without an attack, every
        // scheme computes the same plaintext output.
        let model = tiny();
        let layout = ModelLayout::allocate(&model, Addr(0));
        let data_blocks = layout.total_bytes.div_ceil(BLOCK_SIZE as u64).max(1);
        let outputs: Vec<Vec<u8>> = Scheme::ALL
            .iter()
            .map(|&s| {
                let mem = build_functional(s, Key128::derive(b"clean"), data_blocks);
                let mut r = SecureRunner::with_memory(&model, mem, 5);
                r.run().expect("clean run verifies");
                r.read_output().expect("clean output verifies")
            })
            .collect();
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "schemes disagree on the clean output"
        );
    }

    #[test]
    fn expectations_cover_every_cell_without_ineffective() {
        for scheme in Scheme::ALL {
            for attack in AttackKind::ALL {
                let e = expected_outcome(scheme, attack);
                assert_ne!(e, Outcome::Ineffective, "{scheme} × {attack}");
            }
        }
    }

    #[test]
    fn dead_layers_are_never_victims() {
        // A model with a dead branch (nothing consumes `dead`): its output
        // must not appear among victim candidates.
        let model = ModelBuilder::new("deadend", "DeadEnd", (4, 8, 8))
            .conv("c1", 8, 3, 1, 1)
            .fc("dead", 8)
            .from_layer(0)
            .fc("out", 16)
            .build();
        let layout = ModelLayout::allocate(&model, Addr(0));
        let live = live_layers(&model);
        assert_eq!(live, vec![true, false, true]);
        for attack in AttackKind::ALL {
            let dead_out = layout.outputs[1];
            for (_, t) in candidates(&model, &layout, attack) {
                assert_ne!(t.id, dead_out.id, "dead output offered as victim");
            }
        }
    }
}
