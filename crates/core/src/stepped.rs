//! Stepped dynamic-dataflow sessions: autoregressive decode with a
//! growing KV cache, and training loops that rewrite every weight each
//! iteration.
//!
//! The static [`crate::secure_runner`] writes each tensor exactly once per
//! inference — the assumption the tree-less scheme's one-version-per-tensor
//! design rests on (§III-A). This module drives the two workloads that
//! break it:
//!
//! * **Decode** (`decode` in the model registry): every step ingests one
//!   token, verifies the entire written KV prefix under its per-tile
//!   versions, and appends the new token's K/V entry. The caches' version
//!   state is tile-expanded on the first append, *grown* in place when an
//!   append opens a new [`TILE_BYTES`] tile ([`VersionTable::expand`] on an
//!   already-expanded tensor), and never merged mid-sequence. Appends
//!   within a tile read-modify-write the frontier tile under a bumped tile
//!   version, so every block of a tile is always MAC-bound to one uniform
//!   version — the invariant the epoch sweep relies on.
//! * **Train** (`train` in the registry): every iteration streams the
//!   input batch and all weights in under verification, then rewrites
//!   every weight (the SGD update) under a bumped version. Weight versions
//!   advance at the iteration rate, so small version limits exhaust in a
//!   handful of iterations and the session leans on pre-flight and
//!   reactive re-encryption epoch sweeps through [`crate::recovery`].
//!
//! Per-layer intermediate activations never touch DRAM here: a
//! sequence-length-1 decode step and a small-MLP training step both fit
//! their activations in the scratchpad, so the protected-memory surface is
//! exactly token/batch in, caches/weights read + appended/rewritten,
//! logits/loss out. Cycle costs of the full per-layer tile traffic come
//! from the lowered trace (`tnpu_npu::trace::TileTrace::build_steps`),
//! not from this functional model.

use crate::cpu_access::CpuTensorAccess;
use crate::recovery::{Recovery, RecoveryStats, RetryPolicy};
use crate::secure_runner::{
    epoch_sweep_tensors, read_with_retry, seeded_from, synth_bytes, RunError, TILE_BYTES,
};
use crate::serving::Switcher;
use crate::version::{VersionError, VersionSnapshot, VersionTable};
use tnpu_crypto::sha256::Sha256;
use tnpu_crypto::Key128;
use tnpu_memprot::functional::{FunctionalMemory, TreelessMemory};
use tnpu_memprot::ProtectionEngine;
use tnpu_models::defs::dynamic::{CACHE_MARKER, DECODE_DIM};
use tnpu_models::{Model, ELEM_BYTES};
use tnpu_npu::alloc::{ModelLayout, TensorInfo};
use tnpu_npu::config::NpuConfig;
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Which dynamic-dataflow shape a session is driving, derived from the
/// model: any cache-marked weight tensor (see
/// [`CACHE_MARKER`]) makes it a decode session, otherwise every step is a
/// training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteppedKind {
    /// Autoregressive decode: KV caches append-grow, weights stay put.
    Decode,
    /// Training loop: every weight is rewritten each iteration.
    Train,
}

/// Per-step execution record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepTrace {
    /// The step index this trace describes (0-based).
    pub step: u64,
    /// Blocks verified on the way in (token/batch, KV prefix, weights).
    pub blocks_read: u64,
    /// Blocks MAC'd on the way out (appends, weight updates, output).
    pub blocks_written: u64,
    /// Whether a KV append expanded or grew a cache's tile versions.
    pub grew_cache: bool,
    /// Whether this step consumed a re-encryption epoch sweep.
    pub swept: bool,
}

/// The architectural state a preempted stepped context saves through the
/// fully-protected region: the epoch-tagged version-table snapshot — whose
/// size now *grows with the sequence* as caches expand — plus the step
/// cursor, session seed, and the weight digest the decode path folds into
/// every step. Produced by [`SteppedSession::suspend`], consumed by
/// [`SteppedSession::resume`].
#[derive(Debug, Clone)]
pub struct SteppedSnapshot {
    table: VersionSnapshot,
    step: u64,
    seed: u64,
    weight_state: [u8; 32],
}

impl SteppedSnapshot {
    /// The re-encryption epoch the snapshot was taken in.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.table.epoch()
    }

    /// Version-table bytes the snapshot carries — the DMA payload a
    /// context switch moves, which mid-sequence includes one entry per
    /// expanded cache tile (what [`Switcher::charge`] bills).
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        self.table.bytes()
    }
}

/// A functional stepped session for one NPU context.
///
/// Generic over the [`FunctionalMemory`] like [`crate::secure_runner`]:
/// the default is the paper's tree-less scheme, and the
/// observation-equivalence tests instantiate it over every scheme.
#[derive(Debug)]
pub struct SteppedSession<M: FunctionalMemory = TreelessMemory> {
    model: Model,
    layout: ModelLayout,
    table: VersionTable,
    mem: M,
    cpu: CpuTensorAccess,
    kind: SteppedKind,
    /// Cache tensors (decode): weight slots of cache-marked layers.
    caches: Vec<TensorInfo>,
    /// Trained weight tensors: non-shared, non-cache weight slots.
    weights: Vec<TensorInfo>,
    /// Bytes one decode step appends to each cache (one token's K or V).
    append_bytes: u64,
    /// Steps the smallest cache can absorb (decode); unbounded for train.
    capacity: u64,
    /// Digest of the weight plaintexts the enclave itself initialized;
    /// folded into each decode step's digest in place of re-reading the
    /// weight-stationary parameters from DRAM every token.
    weight_state: [u8; 32],
    step: u64,
    seed: u64,
    recovery: Option<Recovery>,
    epoch: u64,
    poisoned: bool,
}

impl SteppedSession<TreelessMemory> {
    /// Set up a tree-less stepped context with keys from `master_key`.
    #[must_use]
    pub fn new(model: &Model, master_key: Key128, seed: u64) -> Self {
        Self::with_memory(model, TreelessMemory::new(master_key), seed)
    }
}

impl<M: FunctionalMemory> SteppedSession<M> {
    /// Set up the context over an existing memory: allocate tensors,
    /// register them, initialize the trained weights through the CPU
    /// `ts_write` path, and leave the caches *unwritten* at version 0 —
    /// their state is built up append by append.
    #[must_use]
    pub fn with_memory(model: &Model, mut mem: M, seed: u64) -> Self {
        let layout = ModelLayout::allocate(model, Addr(0));
        let mut table = VersionTable::new();
        let mut cpu = CpuTensorAccess::new();

        table.register(layout.input.id);

        let mut caches = Vec::new();
        let mut weights = Vec::new();
        let mut digest = Sha256::new();
        digest.update(b"weight-state");
        // ModelLayout::allocate builds one weights/outputs slot per model
        // layer, so `li` always indexes both in the loop below.
        for li in 0..model.layers.len() {
            if let Some(w) = layout.weights[li] {
                let layer = &model.layers[li];
                // Shared slots reuse the owner's entry; everything else
                // registers here. The guard must not skip the *output*
                // registration below — a layer with tied weights still
                // owns its output tensor.
                if layer.weights_shared_with.is_none() {
                    table.register(w.id);
                    if layer.name.contains(CACHE_MARKER) {
                        caches.push(w); // stays at version 0 until appended
                    } else {
                        let v = table.bump(w.id).expect("registered");
                        let bytes = synth_bytes(seed, w.id, w.bytes);
                        digest.update(&bytes);
                        cpu.write_tensor(&mut mem, w.addr, v, &bytes);
                        weights.push(w);
                    }
                }
            }
            table.register(layout.outputs[li].id);
        }
        let kind = if caches.is_empty() {
            SteppedKind::Train
        } else {
            SteppedKind::Decode
        };
        let append_bytes = DECODE_DIM * ELEM_BYTES;
        let capacity = match kind {
            SteppedKind::Train => u64::MAX,
            SteppedKind::Decode => caches
                .iter()
                .map(|c| c.bytes / append_bytes)
                .min()
                .unwrap_or(0),
        };
        SteppedSession {
            model: model.clone(),
            layout,
            table,
            mem,
            cpu,
            kind,
            caches,
            weights,
            append_bytes,
            capacity,
            weight_state: digest.finalize(),
            step: 0,
            seed,
            recovery: None,
            epoch: 0,
            poisoned: false,
        }
    }

    /// Attach fault recovery (see
    /// [`SecureRunner::enable_recovery`](crate::secure_runner::SecureRunner::enable_recovery)):
    /// transient read failures get the retry budget, and version
    /// exhaustion is consumed by an epoch sweep instead of aborting —
    /// which for these workloads is the *normal* operating mode, since
    /// churn makes exhaustion a matter of when, not if.
    pub fn enable_recovery(&mut self, policy: RetryPolicy, engine: Box<dyn ProtectionEngine>) {
        self.recovery = Some(Recovery::new(policy, engine));
    }

    /// What recovery has cost so far (`None` until
    /// [`enable_recovery`](Self::enable_recovery)).
    #[must_use]
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.recovery.as_ref().map(Recovery::stats)
    }

    /// Lower the version-exhaustion threshold. Meaningful recovery needs
    /// a limit of at least 2 (the sweep itself rewrites at version 1),
    /// and a decode step bumps its frontier cache tile from a value that
    /// only grows over the sequence — the expand-grow rule seeds new
    /// tiles at the current maximum so stale versions are never reused.
    pub fn set_version_limit(&mut self, limit: u64) {
        self.table.set_limit(limit);
    }

    /// Which dynamic-dataflow shape this session drives.
    #[must_use]
    pub fn kind(&self) -> SteppedKind {
        self.kind
    }

    /// Steps taken so far.
    #[must_use]
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Steps the session can absorb: the KV capacity for decode
    /// (`u64::MAX` for train).
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current re-encryption epoch (0 until the first sweep).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether an earlier failure has quarantined this context.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The version table (inspection).
    #[must_use]
    pub fn version_table(&self) -> &VersionTable {
        &self.table
    }

    /// The model this session steps.
    #[must_use]
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The address map.
    #[must_use]
    pub fn layout(&self) -> &ModelLayout {
        &self.layout
    }

    /// The untrusted protected memory, read-only.
    #[must_use]
    pub fn memory(&self) -> &M {
        &self.mem
    }

    /// The untrusted protected memory — the attack hook for tests.
    pub fn memory_mut(&mut self) -> &mut M {
        &mut self.mem
    }

    /// Cycles a preemption of this context costs *right now* — one spill
    /// plus one restore of the live version table through the serving
    /// layer's context-switch cost model. Mid-sequence the table carries
    /// one entry per expanded cache tile, so the price of preempting a
    /// decode session grows with its position in the sequence (the
    /// under-billing the static per-model estimate used to hide).
    #[must_use]
    pub fn preemption_cycles(&self, config: &NpuConfig) -> u64 {
        let mut switcher = Switcher::new(self.mem.scheme(), config);
        let vt_bytes = self.table.storage_bytes();
        switcher.charge(vt_bytes, true) + switcher.charge(vt_bytes, false)
    }

    fn guard(&self) -> Result<(), RunError> {
        if self.poisoned {
            Err(RunError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// Record the outcome of a fallible call: any error except
    /// [`RunError::Finished`] quarantines the context.
    fn note<T>(&mut self, r: Result<T, RunError>) -> Result<T, RunError> {
        if let Err(e) = &r {
            if !matches!(e, RunError::Finished) {
                self.poisoned = true;
            }
        }
        r
    }

    /// Every tensor the epoch sweep must preserve: input, trained
    /// weights, caches (tile by tile), and every output slot.
    fn sweep_set(&self) -> Vec<TensorInfo> {
        let mut out = vec![self.layout.input];
        out.extend(self.weights.iter().copied());
        out.extend(self.caches.iter().copied());
        out.extend(self.layout.outputs.iter().copied());
        out
    }

    fn epoch_sweep(&mut self) -> Result<(), RunError> {
        let live = self.sweep_set();
        epoch_sweep_tensors(
            &live,
            &mut self.table,
            &mut self.mem,
            self.recovery.as_mut(),
            &mut self.epoch,
        )
    }

    /// Attempt to lift the quarantine after a failure (see
    /// [`SecureRunner::recover`](crate::secure_runner::SecureRunner::recover)).
    /// Unlike the static runner, the step cursor survives: every write
    /// in a step covers a whole tensor or tile under one version, so
    /// whatever the failure interrupted, the sweep re-captures a
    /// uniformly consistent state — mid-sequence KV expansion included —
    /// and the quarantined step is simply retried in the new epoch.
    ///
    /// # Errors
    ///
    /// Propagates the sweep's [`RunError::Integrity`] on persistent
    /// tampering (the context stays poisoned).
    pub fn recover(&mut self) -> Result<(), RunError> {
        self.epoch_sweep()?;
        self.poisoned = false;
        Ok(())
    }

    /// The version a decode step's append would bump each cache's
    /// frontier tile *to*: existing frontier tiles bump their own
    /// version; a tile the append will create is seeded at the cache's
    /// current maximum tile version (the expand-grow no-reuse rule).
    fn next_frontier_version(&self, cache: TensorInfo) -> Result<u64, RunError> {
        if !self.table.is_expanded(cache.id)? {
            return Ok(1);
        }
        let count = self.table.tile_count(cache.id)?;
        let frontier = ((self.step * self.append_bytes) / TILE_BYTES) as u32;
        if frontier < count {
            return Ok(self.table.version(cache.id, frontier)? + 1);
        }
        let mut max = 0;
        for tile in 0..count {
            max = max.max(self.table.version(cache.id, tile)?);
        }
        Ok(max + 1)
    }

    /// Pre-flight sweep: if any version this step is about to bump would
    /// cross the limit, sweep *now*, at the step boundary — a sweep in
    /// the middle of the append/update loop would strand half the state
    /// in each epoch.
    fn preflight(&mut self) -> Result<bool, RunError> {
        if self.recovery.is_none() {
            return Ok(false);
        }
        let limit = self.table.limit();
        let mut would_exhaust = self.table.version(self.layout.input.id, 0)? >= limit;
        // tnpu-lint: allow(panic-path) — models have at least one layer.
        let out = *self.layout.outputs.last().expect("models have layers");
        would_exhaust |=
            !self.table.is_expanded(out.id)? && self.table.version(out.id, 0)? >= limit;
        if self.kind == SteppedKind::Train {
            for w in self.weights.clone() {
                would_exhaust |= self.table.version(w.id, 0)? >= limit;
            }
        }
        for c in self.caches.clone() {
            would_exhaust |= self.next_frontier_version(c)? > limit;
        }
        if would_exhaust {
            self.epoch_sweep()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Bump a single-entry tensor, consuming exhaustion with a sweep when
    /// recovery is enabled (the reactive path behind the pre-flight).
    fn bump_or_sweep(&mut self, id: u32, swept: &mut bool) -> Result<u64, RunError> {
        match self.table.bump(id) {
            Err(VersionError::Exhausted(_)) if self.recovery.is_some() => {
                self.epoch_sweep()?;
                *swept = true;
                Ok(self.table.bump(id)?)
            }
            r => Ok(r?),
        }
    }

    /// Verify + read one whole tensor under its current version.
    fn ingest_tensor(&mut self, digest: &mut Sha256, info: TensorInfo) -> Result<u64, RunError> {
        let version = self.table.version(info.id, 0)?;
        let blocks = info.bytes.div_ceil(BLOCK_SIZE as u64);
        for b in 0..blocks {
            let data = read_with_retry(
                &self.mem,
                self.recovery.as_mut(),
                info.addr.offset(b * BLOCK_SIZE as u64),
                version,
            )?;
            digest.update(&data);
        }
        Ok(blocks)
    }

    /// Verify + read every written tile of a cache under its tile
    /// version, feeding the digest; returns the frontier tile's bytes if
    /// it has been written (the read half of the append's RMW).
    fn ingest_cache(
        &mut self,
        digest: &mut Sha256,
        cache: TensorInfo,
        frontier: u32,
        blocks_read: &mut u64,
    ) -> Result<Option<Vec<u8>>, RunError> {
        if !self.table.is_expanded(cache.id)? {
            return Ok(None);
        }
        let count = self.table.tile_count(cache.id)?;
        let mut frontier_bytes = None;
        for tile in 0..count {
            let tile_base = u64::from(tile) * TILE_BYTES;
            if tile_base >= cache.bytes {
                break;
            }
            let version = self.table.version(cache.id, tile)?;
            if version == 0 {
                continue; // never-appended tile
            }
            let tile_len = TILE_BYTES.min(cache.bytes - tile_base);
            let blocks = tile_len.div_ceil(BLOCK_SIZE as u64);
            let mut data = Vec::with_capacity((blocks as usize) * BLOCK_SIZE);
            for b in 0..blocks {
                let addr = cache.addr.offset(tile_base + b * BLOCK_SIZE as u64);
                let block = read_with_retry(&self.mem, self.recovery.as_mut(), addr, version)?;
                digest.update(&block);
                data.extend_from_slice(&block);
                *blocks_read += 1;
            }
            if tile == frontier {
                data.truncate(tile_len as usize);
                frontier_bytes = Some(data);
            }
        }
        Ok(frontier_bytes)
    }

    /// Append one token's entry to a cache: expand or grow the tile
    /// versions to cover the frontier, bump the frontier tile, and
    /// rewrite it whole (prior contents plus the spliced entry) under the
    /// new version. Returns whether the expansion shape changed.
    fn append_cache(
        &mut self,
        cache: TensorInfo,
        state: &[u8; 32],
        prior: Option<Vec<u8>>,
        blocks_written: &mut u64,
    ) -> Result<bool, RunError> {
        let off = self.step * self.append_bytes;
        let frontier = (off / TILE_BYTES) as u32;
        let needed = frontier + 1;
        let grew = if !self.table.is_expanded(cache.id)? {
            self.table.expand(cache.id, needed)?;
            true
        } else if self.table.tile_count(cache.id)? < needed {
            // The mid-sequence grow: an append crossed into a new tile of
            // an already-expanded cache.
            self.table.expand(cache.id, needed)?;
            true
        } else {
            false
        };
        let version = self.table.bump_tile(cache.id, frontier)?;
        let tile_base = u64::from(frontier) * TILE_BYTES;
        let tile_len = TILE_BYTES.min(cache.bytes - tile_base);
        let mut bytes = prior.unwrap_or_else(|| vec![0u8; tile_len as usize]);
        bytes.resize(tile_len as usize, 0);
        let local = (off - tile_base) as usize;
        let mut rng = SplitMix64::new(state_seed(state) ^ (u64::from(cache.id) << 32) ^ off);
        let end = (local + self.append_bytes as usize).min(bytes.len());
        // tnpu-lint: allow(panic-path) — local < end <= bytes.len(): the
        // frontier offset lies inside the tile buffer sized just above.
        for chunk in bytes[local..end].chunks_mut(8) {
            let w = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            // tnpu-lint: allow(panic-path) — chunks_mut(8) caps n at 8.
            chunk.copy_from_slice(&w[..n]);
        }
        let mut b = 0;
        while b < tile_len {
            let mut block = [0u8; BLOCK_SIZE];
            let n = (tile_len - b).min(BLOCK_SIZE as u64) as usize;
            // tnpu-lint: allow(panic-path) — b + n <= tile_len == bytes.len().
            block[..n].copy_from_slice(&bytes[b as usize..b as usize + n]);
            self.mem
                .write_block(cache.addr.offset(tile_base + b), version, block);
            *blocks_written += 1;
            b += BLOCK_SIZE as u64;
        }
        Ok(grew)
    }

    /// Produce the session's output tensor (the last layer's slot) from
    /// the step digest — expand, per-tile bump, write, merge, exactly the
    /// static runner's mvout discipline.
    fn produce_output(&mut self, state: &[u8; 32]) -> Result<u64, RunError> {
        // tnpu-lint: allow(panic-path) — models have at least one layer.
        let out = *self.layout.outputs.last().expect("models have layers");
        let tiles = out.bytes.div_ceil(TILE_BYTES).max(1) as u32;
        self.table.expand(out.id, tiles)?;
        let mut blocks_written = 0;
        for tile in 0..tiles {
            let version = self.table.bump_tile(out.id, tile)?;
            let tile_base = u64::from(tile) * TILE_BYTES;
            let tile_len = TILE_BYTES.min(out.bytes - tile_base);
            let mut rng = seeded_from(state, tile);
            let mut off = 0;
            while off < tile_len {
                let mut block = [0u8; BLOCK_SIZE];
                for chunk in block.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
                }
                self.mem
                    .write_block(out.addr.offset(tile_base + off), version, block);
                blocks_written += 1;
                off += BLOCK_SIZE as u64;
            }
        }
        self.table.merge(out.id)?;
        Ok(blocks_written)
    }

    /// Execute one step (a decoded token or a training iteration).
    ///
    /// # Errors
    ///
    /// [`RunError::Integrity`] when a verified read fails;
    /// [`RunError::Version`] on exhaustion without recovery;
    /// [`RunError::Finished`] when a decode session's KV capacity is
    /// spent; [`RunError::Poisoned`] if the context is quarantined.
    pub fn step(&mut self) -> Result<StepTrace, RunError> {
        self.guard()?;
        if self.step >= self.capacity {
            return Err(RunError::Finished);
        }
        let r = self.step_inner();
        self.note(r)
    }

    fn step_inner(&mut self) -> Result<StepTrace, RunError> {
        let s = self.step;
        let mut swept = self.preflight()?;
        let mut blocks_read = 0;
        let mut blocks_written = 0;

        // Ingest phase: the new token/batch under a bumped input version.
        let input = self.layout.input;
        let in_version = self.bump_or_sweep(input.id, &mut swept)?;
        let in_bytes = synth_bytes(self.seed.wrapping_add(s), input.id, input.bytes);
        self.cpu
            .write_tensor(&mut self.mem, input.addr, in_version, &in_bytes);

        let mut digest = Sha256::new();
        digest.update(b"stepped");
        digest.update(&s.to_le_bytes());
        blocks_read += self.ingest_tensor(&mut digest, input)?;

        let mut grew_cache = false;
        match self.kind {
            SteppedKind::Decode => {
                // Weight-stationary: parameters were initialized by this
                // enclave and never leave DRAM unmodified reads behind —
                // their digest was taken at init, for free.
                digest.update(&self.weight_state);
                // Attention reads the whole written KV prefix, verified
                // tile by tile under the per-tile versions.
                let frontier = ((s * self.append_bytes) / TILE_BYTES) as u32;
                let mut priors = Vec::with_capacity(self.caches.len());
                for cache in self.caches.clone() {
                    priors.push(self.ingest_cache(
                        &mut digest,
                        cache,
                        frontier,
                        &mut blocks_read,
                    )?);
                }
                let state = digest.finalize();
                for (cache, prior) in self.caches.clone().into_iter().zip(priors) {
                    grew_cache |= self.append_cache(cache, &state, prior, &mut blocks_written)?;
                }
                blocks_written += self.produce_output(&state)?;
            }
            SteppedKind::Train => {
                // The churn path: every weight is streamed in verified...
                for w in self.weights.clone() {
                    blocks_read += self.ingest_tensor(&mut digest, w)?;
                }
                let state = digest.finalize();
                blocks_written += self.produce_output(&state)?;
                // ...and rewritten by the SGD update under a bumped
                // version. The pre-flight swept if any would exhaust.
                for w in self.weights.clone() {
                    let v = self.bump_or_sweep(w.id, &mut swept)?;
                    let mut rng = SplitMix64::new(state_seed(&state) ^ (u64::from(w.id) << 32) ^ s);
                    let mut bytes = Vec::with_capacity(w.bytes as usize);
                    while (bytes.len() as u64) < w.bytes {
                        bytes.extend_from_slice(&rng.next_u64().to_le_bytes());
                    }
                    bytes.truncate(w.bytes as usize);
                    self.cpu.write_tensor(&mut self.mem, w.addr, v, &bytes);
                    blocks_written += w.bytes.div_ceil(BLOCK_SIZE as u64);
                }
            }
        }
        self.step += 1;
        Ok(StepTrace {
            step: s,
            blocks_read,
            blocks_written,
            grew_cache,
            swept,
        })
    }

    /// Read the session output (logits / loss surrogate) back on the CPU
    /// side, verifying it.
    ///
    /// # Errors
    ///
    /// [`RunError::Integrity`] if verification fails;
    /// [`RunError::Poisoned`] if the context is quarantined.
    pub fn read_output(&mut self) -> Result<Vec<u8>, RunError> {
        self.guard()?;
        let r = self.read_output_inner();
        self.note(r)
    }

    fn read_output_inner(&mut self) -> Result<Vec<u8>, RunError> {
        // tnpu-lint: allow(panic-path) — models have at least one layer.
        let last = *self.layout.outputs.last().expect("models have layers");
        let version = self.table.version(last.id, 0)?;
        let blocks = last.bytes.div_ceil(BLOCK_SIZE as u64);
        let mut out = Vec::with_capacity(last.bytes as usize);
        for b in 0..blocks {
            let addr = last.addr.offset(b * BLOCK_SIZE as u64);
            let data = read_with_retry(&self.mem, self.recovery.as_mut(), addr, version)?;
            out.extend_from_slice(&data);
        }
        out.truncate(last.bytes as usize);
        Ok(out)
    }

    /// Suspend at a step boundary for a context switch (see
    /// [`SteppedSnapshot`]).
    ///
    /// # Errors
    ///
    /// [`RunError::Poisoned`] if the context is quarantined.
    pub fn suspend(&self) -> Result<SteppedSnapshot, RunError> {
        self.guard()?;
        Ok(SteppedSnapshot {
            table: self.table.snapshot(self.epoch),
            step: self.step,
            seed: self.seed,
            weight_state: self.weight_state,
        })
    }

    /// Resume from a [`suspend`](Self::suspend) snapshot, re-validating
    /// its epoch tag against the context's current epoch.
    ///
    /// # Errors
    ///
    /// [`RunError::Version`] with
    /// [`VersionError::StaleSnapshot`] if an epoch sweep ran while the
    /// context was suspended (the attempt quarantines the context);
    /// [`RunError::Poisoned`] if already quarantined.
    pub fn resume(&mut self, snapshot: &SteppedSnapshot) -> Result<(), RunError> {
        self.guard()?;
        let r = self.resume_inner(snapshot);
        self.note(r)
    }

    fn resume_inner(&mut self, snapshot: &SteppedSnapshot) -> Result<(), RunError> {
        self.table.restore(&snapshot.table, self.epoch)?;
        self.step = snapshot.step;
        self.seed = snapshot.seed;
        self.weight_state = snapshot.weight_state;
        Ok(())
    }
}

/// The first eight digest bytes as a little-endian RNG seed.
fn state_seed(state: &[u8; 32]) -> u64 {
    let mut seed = [0u8; 8];
    // tnpu-lint: allow(panic-path) — `[..8]` of a `[u8; 32]` parameter.
    seed.copy_from_slice(&state[..8]);
    u64::from_le_bytes(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::ENTRY_BYTES;
    use proptest::prelude::*;
    use tnpu_memprot::functional::build_functional;
    use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
    use tnpu_models::registry;

    fn decode_session() -> SteppedSession {
        let model = registry::model("decode").expect("registered");
        SteppedSession::new(&model, Key128::derive(b"stepped-decode"), 11)
    }

    fn train_session() -> SteppedSession {
        let model = registry::model("train").expect("registered");
        SteppedSession::new(&model, Key128::derive(b"stepped-train"), 13)
    }

    fn treeless_engine() -> Box<dyn ProtectionEngine> {
        build_engine(SchemeKind::Treeless, &ProtectionConfig::paper_default())
    }

    #[test]
    fn decode_detects_kind_and_capacity() {
        let s = decode_session();
        assert_eq!(s.kind(), SteppedKind::Decode);
        assert_eq!(
            s.capacity(),
            tnpu_models::defs::dynamic::DECODE_CTX,
            "every cache holds exactly the context length"
        );
        assert_eq!(train_session().kind(), SteppedKind::Train);
        assert_eq!(train_session().capacity(), u64::MAX);
    }

    #[test]
    fn decode_appends_grow_version_state_without_merging() {
        let mut s = decode_session();
        let cache = s.caches[0];
        let before = s.version_table().storage_bytes();
        let appends_per_tile = TILE_BYTES / s.append_bytes;
        let steps = appends_per_tile + 1; // one past the tile boundary
        let mut grew = 0;
        for i in 0..steps {
            let t = s.step().expect("clean step");
            assert_eq!(t.step, i);
            grew += u64::from(t.grew_cache);
            assert!(
                s.version_table().is_expanded(cache.id).expect("known"),
                "caches stay expanded mid-sequence"
            );
        }
        // Grew at the first append and again crossing into tile 1.
        assert_eq!(grew, 2);
        assert_eq!(s.version_table().tile_count(cache.id).expect("known"), 2);
        // The new tile is seeded at the frontier's accumulated version —
        // never below it — so stale (version, address) pairs cannot recur.
        let v0 = s.version_table().version(cache.id, 0).expect("tile 0");
        let v1 = s.version_table().version(cache.id, 1).expect("tile 1");
        assert_eq!(v0, appends_per_tile);
        assert_eq!(v1, appends_per_tile + 1);
        let after = s.version_table().storage_bytes();
        assert!(
            after >= before + 4 * ENTRY_BYTES,
            "four caches each grew a tile entry: {before} -> {after}"
        );
        s.read_output().expect("logits verify");
    }

    #[test]
    fn decode_sweep_mid_sequence_preserves_the_caches() {
        let mut s = decode_session();
        s.enable_recovery(RetryPolicy::default(), treeless_engine());
        s.set_version_limit(8);
        let mut swept = 0;
        for _ in 0..12 {
            let t = s.step().expect("recovery absorbs exhaustion");
            swept += u64::from(t.swept);
        }
        assert!(swept > 0, "12 frontier bumps must cross a limit of 8");
        assert!(s.epoch() > 0);
        let stats = s.recovery_stats().expect("recovery enabled");
        assert_eq!(stats.sweeps, swept);
        assert!(stats.sweep_cycles > 0, "sweeps are charged");
        for cache in s.caches.clone() {
            assert!(
                s.version_table().is_expanded(cache.id).expect("known"),
                "sweep preserved the mid-sequence expansion"
            );
        }
        // The sequence keeps decoding — and verifying — in the new epoch.
        s.step().expect("post-sweep step verifies");
        s.read_output().expect("post-sweep logits verify");
    }

    #[test]
    fn train_churn_exhausts_and_sweeps() {
        let mut s = train_session();
        s.enable_recovery(RetryPolicy::default(), treeless_engine());
        s.set_version_limit(3);
        let mut swept = 0;
        for _ in 0..5 {
            let t = s.step().expect("recovery absorbs weight churn");
            swept += u64::from(t.swept);
            assert!(
                t.blocks_written > t.blocks_read / 2,
                "updates rewrite weights"
            );
        }
        assert!(swept >= 1, "five weight rewrites under limit 3 must sweep");
        assert!(s.epoch() > 0);
        // Weights remain verifiable after sweeping: another iteration
        // streams them all back in.
        s.step().expect("post-sweep iteration verifies");
    }

    #[test]
    fn train_without_recovery_exhausts_hard() {
        let mut s = train_session();
        s.set_version_limit(2);
        s.step().expect("first iteration fits");
        let err = s.step().expect_err("second bump crosses the limit");
        assert!(matches!(err, RunError::Version(VersionError::Exhausted(_))));
        assert!(s.is_poisoned());
        assert!(matches!(s.step(), Err(RunError::Poisoned)));
    }

    #[test]
    fn recover_retries_the_quarantined_step() {
        let mut s = train_session();
        s.set_version_limit(2);
        s.enable_recovery(RetryPolicy::default(), treeless_engine());
        s.step().expect("first iteration");
        // Disable the limit check path by poisoning via a tamper instead:
        // flip a weight bit so the next ingest fails persistently... a
        // plain exhaustion is already covered above, so poison via resume
        // staleness: suspend, sweep, resume.
        let snap = s.suspend().expect("clean suspend");
        s.recover().expect("sweep re-establishes the epoch");
        let err = s.resume(&snap).expect_err("stale snapshot refused");
        assert!(matches!(
            err,
            RunError::Version(VersionError::StaleSnapshot { .. })
        ));
        assert!(s.is_poisoned());
        s.recover().expect("recover lifts the quarantine");
        let steps_before = s.steps_taken();
        let t = s.step().expect("the quarantined step retries");
        assert_eq!(t.step, steps_before);
    }

    #[test]
    fn preemption_cycles_grow_with_the_sequence() {
        let config = NpuConfig::small_npu();
        let mut s = decode_session();
        s.step().expect("step 0");
        let early = s.preemption_cycles(&config);
        let appends_per_tile = TILE_BYTES / s.append_bytes;
        for _ in 0..appends_per_tile {
            s.step().expect("clean step");
        }
        let late = s.preemption_cycles(&config);
        assert!(
            late > early,
            "spilling a longer sequence's table must cost more: {early} vs {late}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Satellite of the PR-7 observation-equivalence property, on the
        /// stepped workload: a decode session preempted (suspend +
        /// resume) at step `k` emits, for every scheme, exactly the
        /// per-step outputs of an unpreempted reference session.
        #[test]
        fn preempted_decode_matches_unpreempted_reference(
            preempt_at in 0u64..4,
            seed in 0u64..1_000,
        ) {
            let model = registry::model("decode").expect("registered");
            let layout = ModelLayout::allocate(&model, Addr(0));
            let data_blocks = layout.total_bytes.div_ceil(BLOCK_SIZE as u64).max(1);
            for scheme in SchemeKind::ALL {
                let mem = build_functional(scheme, Key128::derive(b"step-ref"), data_blocks);
                let mut reference = SteppedSession::with_memory(&model, mem, seed);
                let mem = build_functional(scheme, Key128::derive(b"step-pre"), data_blocks);
                let mut preempted = SteppedSession::with_memory(&model, mem, seed);
                for s in 0..4u64 {
                    if s == preempt_at {
                        let snap = preempted.suspend().expect("boundary suspend");
                        preempted.resume(&snap).expect("fresh snapshot resumes");
                    }
                    let rt = reference.step().expect("reference step");
                    let pt = preempted.step().expect("preempted step");
                    prop_assert_eq!(&rt, &pt, "step traces diverge at {} ({:?})", s, scheme);
                    let r_out = reference.read_output().expect("reference output");
                    let p_out = preempted.read_output().expect("preempted output");
                    prop_assert_eq!(r_out, p_out, "outputs diverge at {} ({:?})", s, scheme);
                }
                prop_assert_eq!(
                    reference.version_table().storage_bytes(),
                    preempted.version_table().storage_bytes()
                );
            }
        }
    }
}
