//! Functional secure execution of a model (real bytes, real crypto).
//!
//! Drives a whole inference through the tree-less protection exactly as
//! the paper's software would: the CPU enclave initializes tensors through
//! the `ts_*` path, every `mvin` verifies blocks against the expected
//! version, every layer expands its output tensor into tile versions,
//! bumps them per `mvout`, and merges them when the layer completes
//! (Figs. 9/13). Tests tamper with the untrusted DRAM between layers and
//! watch the next layer's `mvin` fail.
//!
//! Layer arithmetic is a deterministic byte-mixing function (a digest of
//! the verified inputs seeds the output bytes) — enough to carry data-flow
//! dependencies end-to-end without simulating FP math. Use small models
//! for functional runs: every byte really is encrypted and MAC'd.

use crate::cpu_access::CpuTensorAccess;
use crate::version::{VersionError, VersionTable};
use tnpu_crypto::sha256::Sha256;
use tnpu_crypto::Key128;
use tnpu_memprot::functional::{FunctionalMemory, IntegrityError, TreelessMemory};
use tnpu_models::{LayerKind, Model, ELEM_BYTES};
use tnpu_npu::alloc::ModelLayout;
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Tile granularity (bytes) for output production (per-tile version bump).
pub const TILE_BYTES: u64 = 16 << 10;

/// Why a secure run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// A block failed MAC verification on `mvin`.
    Integrity(IntegrityError),
    /// Version management was misused (indicates a runner bug).
    Version(VersionError),
    /// The run already completed.
    Finished,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Integrity(e) => write!(f, "integrity violation: {e}"),
            RunError::Version(e) => write!(f, "version management error: {e}"),
            RunError::Finished => write!(f, "inference already finished"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<IntegrityError> for RunError {
    fn from(e: IntegrityError) -> Self {
        RunError::Integrity(e)
    }
}

impl From<VersionError> for RunError {
    fn from(e: VersionError) -> Self {
        RunError::Version(e)
    }
}

/// Per-layer execution record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTrace {
    /// Layer name.
    pub name: String,
    /// Blocks verified on the way in.
    pub blocks_read: u64,
    /// Blocks MAC'd on the way out.
    pub blocks_written: u64,
    /// Output tiles (version-bump granularity).
    pub tiles: u32,
}

/// The functional secure runner for one NPU context.
///
/// Generic over the [`FunctionalMemory`] the context computes on: the
/// default is the paper's tree-less scheme, and the adversary harness
/// instantiates it over every scheme to compare what each one detects.
#[derive(Debug)]
pub struct SecureRunner<M: FunctionalMemory = TreelessMemory> {
    model: Model,
    layout: ModelLayout,
    table: VersionTable,
    mem: M,
    cpu: CpuTensorAccess,
    next_layer: usize,
    seed: u64,
}

impl SecureRunner<TreelessMemory> {
    /// Set up a tree-less context with keys derived from `master_key`.
    #[must_use]
    pub fn new(model: &Model, master_key: Key128, seed: u64) -> Self {
        Self::with_memory(model, TreelessMemory::new(master_key), seed)
    }
}

impl<M: FunctionalMemory> SecureRunner<M> {
    /// Set up the context over an existing memory: allocate tensors,
    /// register them in the version table, and initialize the input and
    /// every weight tensor through the CPU `ts_write` path with
    /// deterministic synthetic contents.
    #[must_use]
    pub fn with_memory(model: &Model, mut mem: M, seed: u64) -> Self {
        let layout = ModelLayout::allocate(model, Addr(0));
        let mut table = VersionTable::new();
        let mut cpu = CpuTensorAccess::new();

        table.register(layout.input.id);
        let input_version = table.bump(layout.input.id).expect("registered");
        let input_bytes = synth_bytes(seed, layout.input.id, layout.input.bytes);
        cpu.write_tensor(&mut mem, layout.input.addr, input_version, &input_bytes);

        for li in 0..model.layers.len() {
            if let Some(w) = layout.weights[li] {
                if model.layers[li].weights_shared_with.is_some() {
                    continue; // the owner already initialized it
                }
                table.register(w.id);
                let v = table.bump(w.id).expect("registered");
                let bytes = synth_bytes(seed, w.id, w.bytes);
                cpu.write_tensor(&mut mem, w.addr, v, &bytes);
            }
            table.register(layout.outputs[li].id);
        }
        SecureRunner {
            model: model.clone(),
            layout,
            table,
            mem,
            cpu,
            next_layer: 0,
            seed,
        }
    }

    /// Start the next inference in the same context: rewrite the input
    /// tensor with fresh synthetic contents under a bumped version and
    /// rewind the layer cursor. Weights stay as initialized; output
    /// tensors keep their version history and are bumped again as the new
    /// pass produces them — the steady-state reuse pattern whose replay
    /// window the version numbers close.
    ///
    /// # Errors
    ///
    /// [`RunError::Version`] if the input version counter is exhausted.
    pub fn next_inference(&mut self, input_seed: u64) -> Result<(), RunError> {
        self.seed = input_seed;
        self.next_layer = 0;
        let version = self.table.bump(self.layout.input.id)?;
        let bytes = synth_bytes(input_seed, self.layout.input.id, self.layout.input.bytes);
        self.cpu
            .write_tensor(&mut self.mem, self.layout.input.addr, version, &bytes);
        Ok(())
    }

    /// The version table (inspection).
    #[must_use]
    pub fn version_table(&self) -> &VersionTable {
        &self.table
    }

    /// The address map.
    #[must_use]
    pub fn layout(&self) -> &ModelLayout {
        &self.layout
    }

    /// The untrusted protected memory, read-only (the adversary's
    /// observe hook).
    #[must_use]
    pub fn memory(&self) -> &M {
        &self.mem
    }

    /// The untrusted protected memory — the attack hook for tests.
    pub fn memory_mut(&mut self) -> &mut M {
        &mut self.mem
    }

    /// Whether every layer has executed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.next_layer >= self.model.layers.len()
    }

    /// Verify + read one whole tensor (every block, under its current
    /// version), feeding the digest.
    fn ingest_tensor(
        &self,
        digest: &mut Sha256,
        info: tnpu_npu::alloc::TensorInfo,
    ) -> Result<u64, RunError> {
        let version = self.table.version(info.id, 0)?;
        let blocks = info.bytes.div_ceil(BLOCK_SIZE as u64);
        for b in 0..blocks {
            let data = self
                .mem
                .read_block(info.addr.offset(b * BLOCK_SIZE as u64), version)?;
            digest.update(&data);
        }
        Ok(blocks)
    }

    /// Gather `seq` rows from an embedding table (only the touched blocks
    /// are verified — the fine-grained access of §III-B).
    fn ingest_gathers(
        &self,
        digest: &mut Sha256,
        table_info: tnpu_npu::alloc::TensorInfo,
        vocab: u64,
        dim: u64,
        seq: u64,
    ) -> Result<u64, RunError> {
        let version = self.table.version(table_info.id, 0)?;
        let row_bytes = dim * ELEM_BYTES;
        let mut rng = SplitMix64::new(self.seed ^ table_info.id as u64);
        let mut blocks = 0;
        for _ in 0..seq {
            let row = rng.next_below(vocab);
            let start = table_info.addr.offset(row * row_bytes);
            for b in tnpu_sim::blocks_covering(start, row_bytes) {
                let data = self.mem.read_block(b.base(), version)?;
                digest.update(&data);
                blocks += 1;
            }
        }
        Ok(blocks)
    }

    /// Execute the next layer; returns its trace.
    ///
    /// # Errors
    ///
    /// [`RunError::Integrity`] when a verified read fails (tampering /
    /// replay detected); [`RunError::Finished`] when no layers remain.
    pub fn step(&mut self) -> Result<LayerTrace, RunError> {
        let li = self.next_layer;
        let layer = self.model.layers.get(li).ok_or(RunError::Finished)?.clone();
        let mut digest = Sha256::new();
        digest.update(layer.name.as_bytes());
        let mut blocks_read = 0;

        // mvin phase: verify every input under its expected version.
        match layer.kind {
            LayerKind::Embedding { vocab, dim, seq } => {
                let table = self.layout.weights[li].expect("embedding table");
                blocks_read += self.ingest_gathers(&mut digest, table, vocab, dim, seq)?;
            }
            _ => {
                for src in &layer.inputs {
                    blocks_read += self.ingest_tensor(&mut digest, self.layout.source(*src))?;
                }
                if let Some(w) = self.layout.weights[li] {
                    blocks_read += self.ingest_tensor(&mut digest, w)?;
                }
            }
        }

        // Compute + mvout phase: produce the output tile by tile, with
        // per-tile version bumps, then merge.
        let out = self.layout.outputs[li];
        let state = digest.finalize();
        let tiles = out.bytes.div_ceil(TILE_BYTES).max(1) as u32;
        self.table.expand(out.id, tiles)?;
        let mut blocks_written = 0;
        for tile in 0..tiles {
            let version = self.table.bump_tile(out.id, tile)?;
            let tile_base = u64::from(tile) * TILE_BYTES;
            let tile_len = TILE_BYTES.min(out.bytes - tile_base);
            let mut rng = seeded_from(&state, tile);
            let mut off = 0;
            while off < tile_len {
                let mut block = [0u8; BLOCK_SIZE];
                for chunk in block.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
                }
                self.mem
                    .write_block(out.addr.offset(tile_base + off), version, block);
                blocks_written += 1;
                off += BLOCK_SIZE as u64;
            }
        }
        self.table.merge(out.id)?;
        self.next_layer += 1;
        Ok(LayerTrace {
            name: layer.name.clone(),
            blocks_read,
            blocks_written,
            tiles,
        })
    }

    /// Run all remaining layers.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RunError`].
    pub fn run(&mut self) -> Result<Vec<LayerTrace>, RunError> {
        let mut traces = Vec::new();
        while !self.is_finished() {
            traces.push(self.step()?);
        }
        Ok(traces)
    }

    /// Read the final output back on the CPU side (post-processing,
    /// Fig. 3), verifying it.
    ///
    /// # Errors
    ///
    /// [`RunError::Integrity`] if the output fails verification.
    pub fn read_output(&mut self) -> Result<Vec<u8>, RunError> {
        let last = self.layout.outputs.last().expect("models have layers");
        let version = self.table.version(last.id, 0)?;
        self.cpu
            .read_tensor(&self.mem, last.addr, version, last.bytes as usize)
            .map_err(|e| match e {
                crate::cpu_access::TsError::Integrity(err) => RunError::Integrity(err),
                other => panic!("unexpected ts error: {other}"),
            })
    }
}

/// Deterministic synthetic tensor contents.
fn synth_bytes(seed: u64, tensor: u32, len: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed.wrapping_add(u64::from(tensor) << 32));
    let mut out = Vec::with_capacity(len as usize);
    while (out.len() as u64) < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len as usize);
    out
}

fn seeded_from(state: &[u8; 32], tile: u32) -> SplitMix64 {
    let mut seed = [0u8; 8];
    seed.copy_from_slice(&state[..8]);
    SplitMix64::new(u64::from_le_bytes(seed) ^ u64::from(tile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnpu_models::registry;

    fn runner(name: &str) -> SecureRunner {
        let model = registry::model(name).expect("registered");
        SecureRunner::new(&model, Key128::derive(b"runner"), 7)
    }

    #[test]
    fn deepface_runs_end_to_end() {
        let mut r = runner("df");
        let traces = r.run().expect("clean run verifies");
        assert_eq!(traces.len(), 6);
        assert!(traces.iter().all(|t| t.blocks_read > 0));
        let out = r.read_output().expect("output verifies");
        assert!(!out.is_empty());
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = runner("agz");
        let mut b = runner("agz");
        a.run().expect("ok");
        b.run().expect("ok");
        assert_eq!(a.read_output().expect("ok"), b.read_output().expect("ok"));
    }

    #[test]
    fn different_inputs_change_output() {
        let model = registry::model("agz").expect("registered");
        let mut a = SecureRunner::new(&model, Key128::derive(b"k"), 1);
        let mut b = SecureRunner::new(&model, Key128::derive(b"k"), 2);
        a.run().expect("ok");
        b.run().expect("ok");
        assert_ne!(a.read_output().expect("ok"), b.read_output().expect("ok"));
    }

    #[test]
    fn tampering_between_layers_detected() {
        let mut r = runner("df");
        r.step().expect("layer 0 clean");
        // Physical attacker flips a bit in layer 0's output ciphertext.
        let victim = r.layout().outputs[0].addr;
        r.memory_mut()
            .dram_mut()
            .block_mut(victim)
            .expect("written")[3] ^= 0x40;
        match r.step() {
            Err(RunError::Integrity(_)) => {}
            other => panic!("tampering must be detected, got {other:?}"),
        }
    }

    #[test]
    fn replay_between_layers_detected() {
        // Snapshot a weight tensor block at its current (valid) state,
        // let the victim overwrite it, then restore the stale state.
        let model = registry::model("df").expect("registered");
        let mut r = SecureRunner::new(&model, Key128::derive(b"k"), 1);
        let weight = r.layout().weights[0].expect("conv has weights");
        let snap = r.memory_mut().snapshot(weight.addr).expect("written");
        // The enclave re-initializes the weights (version bumps to 2)...
        // simulated by writing under a bumped version through the table.
        {
            let mem = r.memory_mut();
            mem.write_block(weight.addr, 2, [9u8; 64]);
        }
        r.table.bump(weight.id).expect("bump to 2");
        // ...attacker replays the old (valid-at-version-1) snapshot.
        r.memory_mut().restore(weight.addr, snap);
        match r.step() {
            Err(RunError::Integrity(_)) => {}
            other => panic!("replay must be detected, got {other:?}"),
        }
    }

    #[test]
    fn version_table_peaks_match_paper_scale() {
        // §IV-D: version storage is KB-scale (avg 1.3 KB, max 7.5 KB).
        let mut r = runner("df");
        r.run().expect("ok");
        let peak = r.version_table().peak_storage_bytes();
        assert!(peak > 0);
        assert!(peak < 64 << 10, "peak {peak} B should be KB-scale");
    }

    #[test]
    fn embedding_model_verifies_gathers() {
        let mut r = runner("ncf");
        let traces = r.run().expect("clean run");
        // The two embedding layers must read gathered blocks.
        assert!(traces[0].blocks_read >= 512);
        r.read_output().expect("output verifies");
    }
}
