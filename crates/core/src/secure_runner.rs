//! Functional secure execution of a model (real bytes, real crypto).
//!
//! Drives a whole inference through the tree-less protection exactly as
//! the paper's software would: the CPU enclave initializes tensors through
//! the `ts_*` path, every `mvin` verifies blocks against the expected
//! version, every layer expands its output tensor into tile versions,
//! bumps them per `mvout`, and merges them when the layer completes
//! (Figs. 9/13). Tests tamper with the untrusted DRAM between layers and
//! watch the next layer's `mvin` fail.
//!
//! Layer arithmetic is a deterministic byte-mixing function (a digest of
//! the verified inputs seeds the output bytes) — enough to carry data-flow
//! dependencies end-to-end without simulating FP math. Use small models
//! for functional runs: every byte really is encrypted and MAC'd.

use crate::cpu_access::{CpuTensorAccess, TsError};
use crate::recovery::{Recovery, RecoveryStats, RetryPolicy};
use crate::version::{VersionError, VersionSnapshot, VersionTable};
use tnpu_crypto::sha256::Sha256;
use tnpu_crypto::Key128;
use tnpu_memprot::functional::{FunctionalMemory, IntegrityError, MismatchCause, TreelessMemory};
use tnpu_memprot::ProtectionEngine;
use tnpu_models::{LayerKind, Model, ELEM_BYTES};
use tnpu_npu::alloc::{ModelLayout, TensorInfo};
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Tile granularity (bytes) for output production (per-tile version bump).
pub const TILE_BYTES: u64 = 16 << 10;

/// Why a secure run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// A block failed MAC verification on `mvin`.
    Integrity(IntegrityError),
    /// Version management was misused (indicates a runner bug).
    Version(VersionError),
    /// The run already completed.
    Finished,
    /// A CPU `ts_*` access failed for a non-integrity reason.
    Cpu(TsError),
    /// An earlier call on this context failed with an integrity, version,
    /// or CPU error, quarantining it: the in-flight inference may have
    /// consumed corrupted state, so every further call is refused until
    /// [`SecureRunner::recover`] re-establishes a consistent epoch.
    Poisoned,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Integrity(e) => write!(f, "integrity violation: {e}"),
            RunError::Version(e) => write!(f, "version management error: {e}"),
            RunError::Finished => write!(f, "inference already finished"),
            RunError::Cpu(e) => write!(f, "cpu tensor access failed: {e}"),
            RunError::Poisoned => {
                write!(
                    f,
                    "context is quarantined by an earlier failure (recover first)"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<IntegrityError> for RunError {
    fn from(e: IntegrityError) -> Self {
        RunError::Integrity(e)
    }
}

impl From<VersionError> for RunError {
    fn from(e: VersionError) -> Self {
        RunError::Version(e)
    }
}

/// The architectural state a preempted context saves through the
/// fully-protected region: the epoch-tagged version-table snapshot, the
/// layer cursor, and the inference's input seed. Produced by
/// [`SecureRunner::suspend`], consumed by [`SecureRunner::resume`].
///
/// The tensor data itself stays in protected DRAM — versioned MACs make it
/// self-authenticating, so a context switch moves only this (KB-scale)
/// state, which is exactly what the serving layer charges as
/// protected-region DMA.
#[derive(Debug, Clone)]
pub struct RunnerSnapshot {
    table: VersionSnapshot,
    next_layer: usize,
    seed: u64,
}

impl RunnerSnapshot {
    /// The re-encryption epoch the snapshot was taken in.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.table.epoch()
    }

    /// Version-table bytes the snapshot carries (the DMA payload of the
    /// save/restore).
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        self.table.bytes()
    }
}

/// Per-layer execution record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTrace {
    /// Layer name.
    pub name: String,
    /// Blocks verified on the way in.
    pub blocks_read: u64,
    /// Blocks MAC'd on the way out.
    pub blocks_written: u64,
    /// Output tiles (version-bump granularity).
    pub tiles: u32,
}

/// The functional secure runner for one NPU context.
///
/// Generic over the [`FunctionalMemory`] the context computes on: the
/// default is the paper's tree-less scheme, and the adversary harness
/// instantiates it over every scheme to compare what each one detects.
#[derive(Debug)]
pub struct SecureRunner<M: FunctionalMemory = TreelessMemory> {
    model: Model,
    layout: ModelLayout,
    table: VersionTable,
    mem: M,
    cpu: CpuTensorAccess,
    next_layer: usize,
    seed: u64,
    /// Retry/sweep machinery; `None` (the default) reproduces the
    /// pre-recovery behavior exactly — fail on the first bad read.
    recovery: Option<Recovery>,
    /// Re-encryption epoch (bumped by each sweep; 0 = initial keys).
    epoch: u64,
    /// Set when a call fails with anything but [`RunError::Finished`].
    poisoned: bool,
}

impl SecureRunner<TreelessMemory> {
    /// Set up a tree-less context with keys derived from `master_key`.
    #[must_use]
    pub fn new(model: &Model, master_key: Key128, seed: u64) -> Self {
        Self::with_memory(model, TreelessMemory::new(master_key), seed)
    }
}

impl<M: FunctionalMemory> SecureRunner<M> {
    /// Set up the context over an existing memory: allocate tensors,
    /// register them in the version table, and initialize the input and
    /// every weight tensor through the CPU `ts_write` path with
    /// deterministic synthetic contents.
    #[must_use]
    pub fn with_memory(model: &Model, mut mem: M, seed: u64) -> Self {
        let layout = ModelLayout::allocate(model, Addr(0));
        let mut table = VersionTable::new();
        let mut cpu = CpuTensorAccess::new();

        table.register(layout.input.id);
        // tnpu-lint: allow(panic-path) — bump directly follows register.
        let input_version = table.bump(layout.input.id).expect("registered");
        let input_bytes = synth_bytes(seed, layout.input.id, layout.input.bytes);
        cpu.write_tensor(&mut mem, layout.input.addr, input_version, &input_bytes);

        // ModelLayout::allocate builds one weights/outputs slot per model
        // layer, so `li` always indexes both in the loop below.
        for li in 0..model.layers.len() {
            // tnpu-lint: allow(panic-path) — layout slots are per-layer.
            if let Some(w) = layout.weights[li] {
                // A shared slot reuses the owner's already-initialized
                // entry, but the layer still owns its *output* tensor —
                // the guard must not skip the registration below (it once
                // did, via a `continue`, which no static-suite model
                // noticed because none of them tie weights; the dynamic
                // decode/train models do and hit `UnknownTensor`).
                // tnpu-lint: allow(panic-path) — layout slots are per-layer.
                if model.layers[li].weights_shared_with.is_none() {
                    table.register(w.id);
                    // tnpu-lint: allow(panic-path) — bump directly follows register.
                    let v = table.bump(w.id).expect("registered");
                    let bytes = synth_bytes(seed, w.id, w.bytes);
                    cpu.write_tensor(&mut mem, w.addr, v, &bytes);
                }
            }
            // tnpu-lint: allow(panic-path) — layout slots are per-layer.
            table.register(layout.outputs[li].id);
        }
        SecureRunner {
            model: model.clone(),
            layout,
            table,
            mem,
            cpu,
            next_layer: 0,
            seed,
            recovery: None,
            epoch: 0,
            poisoned: false,
        }
    }

    /// Attach fault recovery: verified reads that fail with a *transient*
    /// signature (stalled transfer, content-cause MAC mismatch, tree
    /// mismatch) are re-fetched up to the policy's budget, each attempt
    /// charged real cycles through `engine`, and version exhaustion is
    /// consumed by a re-encryption epoch sweep instead of aborting.
    /// `engine` should be the cycle-cost engine matching this runner's
    /// functional scheme so recovery traffic is priced consistently.
    pub fn enable_recovery(&mut self, policy: RetryPolicy, engine: Box<dyn ProtectionEngine>) {
        self.recovery = Some(Recovery::new(policy, engine));
    }

    /// What recovery has cost so far (`None` until
    /// [`enable_recovery`](Self::enable_recovery)).
    #[must_use]
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.recovery.as_ref().map(Recovery::stats)
    }

    /// Lower the version-exhaustion threshold (tests and the fault
    /// harness use this to reach the epoch sweep without 2^64 bumps).
    /// Note a limit of 1 leaves the sweep no headroom — the sweep itself
    /// rewrites every live tensor at version 1, so the next bump is
    /// exhausted again and the run aborts; meaningful recovery needs a
    /// limit of at least 2.
    pub fn set_version_limit(&mut self, limit: u64) {
        self.table.set_limit(limit);
    }

    /// Current re-encryption epoch (0 until the first sweep).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether an earlier failure has quarantined this context.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn guard(&self) -> Result<(), RunError> {
        if self.poisoned {
            Err(RunError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// Record the outcome of a fallible call: any error except
    /// [`RunError::Finished`] quarantines the context.
    fn note<T>(&mut self, r: Result<T, RunError>) -> Result<T, RunError> {
        if let Err(e) = &r {
            if !matches!(e, RunError::Finished) {
                self.poisoned = true;
            }
        }
        r
    }

    /// Start the next inference in the same context: rewrite the input
    /// tensor with fresh synthetic contents under a bumped version and
    /// rewind the layer cursor. Weights stay as initialized; output
    /// tensors keep their version history and are bumped again as the new
    /// pass produces them — the steady-state reuse pattern whose replay
    /// window the version numbers close.
    ///
    /// # Errors
    ///
    /// [`RunError::Version`] if the input version counter is exhausted
    /// (with recovery enabled, exhaustion is consumed by an epoch sweep
    /// instead); [`RunError::Poisoned`] if the context is quarantined.
    pub fn next_inference(&mut self, input_seed: u64) -> Result<(), RunError> {
        self.guard()?;
        let r = self.next_inference_inner(input_seed);
        self.note(r)
    }

    fn next_inference_inner(&mut self, input_seed: u64) -> Result<(), RunError> {
        self.seed = input_seed;
        self.next_layer = 0;
        let version = match self.table.bump(self.layout.input.id) {
            Ok(v) => v,
            Err(VersionError::Exhausted(_)) if self.recovery.is_some() => {
                self.epoch_sweep()?;
                self.table.bump(self.layout.input.id)?
            }
            Err(e) => return Err(e.into()),
        };
        let bytes = synth_bytes(input_seed, self.layout.input.id, self.layout.input.bytes);
        self.cpu
            .write_tensor(&mut self.mem, self.layout.input.addr, version, &bytes);
        Ok(())
    }

    /// The version table (inspection).
    #[must_use]
    pub fn version_table(&self) -> &VersionTable {
        &self.table
    }

    /// The address map.
    #[must_use]
    pub fn layout(&self) -> &ModelLayout {
        &self.layout
    }

    /// The untrusted protected memory, read-only (the adversary's
    /// observe hook).
    #[must_use]
    pub fn memory(&self) -> &M {
        &self.mem
    }

    /// The untrusted protected memory — the attack hook for tests.
    pub fn memory_mut(&mut self) -> &mut M {
        &mut self.mem
    }

    /// Whether every layer has executed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.next_layer >= self.model.layers.len()
    }

    /// Verify + read one whole tensor (every block, under its current
    /// version), feeding the digest.
    fn ingest_tensor(&mut self, digest: &mut Sha256, info: TensorInfo) -> Result<u64, RunError> {
        let version = self.table.version(info.id, 0)?;
        let blocks = info.bytes.div_ceil(BLOCK_SIZE as u64);
        for b in 0..blocks {
            let data = read_with_retry(
                &self.mem,
                self.recovery.as_mut(),
                info.addr.offset(b * BLOCK_SIZE as u64),
                version,
            )?;
            digest.update(&data);
        }
        Ok(blocks)
    }

    /// Gather `seq` rows from an embedding table (only the touched blocks
    /// are verified — the fine-grained access of §III-B).
    fn ingest_gathers(
        &mut self,
        digest: &mut Sha256,
        table_info: TensorInfo,
        vocab: u64,
        dim: u64,
        seq: u64,
    ) -> Result<u64, RunError> {
        let version = self.table.version(table_info.id, 0)?;
        let row_bytes = dim * ELEM_BYTES;
        let mut rng = SplitMix64::new(self.seed ^ table_info.id as u64);
        let mut blocks = 0;
        for _ in 0..seq {
            let row = rng.next_below(vocab);
            let start = table_info.addr.offset(row * row_bytes);
            for b in tnpu_sim::blocks_covering(start, row_bytes) {
                let data = read_with_retry(&self.mem, self.recovery.as_mut(), b.base(), version)?;
                digest.update(&data);
                blocks += 1;
            }
        }
        Ok(blocks)
    }

    /// Execute the next layer; returns its trace.
    ///
    /// # Errors
    ///
    /// [`RunError::Integrity`] when a verified read fails (tampering /
    /// replay detected); [`RunError::Finished`] when no layers remain;
    /// [`RunError::Poisoned`] if the context is quarantined.
    pub fn step(&mut self) -> Result<LayerTrace, RunError> {
        self.guard()?;
        let r = self.step_inner();
        self.note(r)
    }

    fn step_inner(&mut self) -> Result<LayerTrace, RunError> {
        let li = self.next_layer;
        let layer = self.model.layers.get(li).ok_or(RunError::Finished)?.clone();

        // Pre-flight with recovery enabled: if this layer's output tiles
        // would exhaust their versions mid-layer, sweep *now*. A sweep in
        // the middle of the tile loop would be unsound — half the tensor
        // written under each epoch.
        if self.recovery.is_some() {
            // tnpu-lint: allow(panic-path) — `li` came from layers.get above.
            let out = self.layout.outputs[li];
            if !self.table.is_expanded(out.id)?
                && self.table.version(out.id, 0)? >= self.table.limit()
            {
                self.epoch_sweep()?;
            }
        }
        let mut digest = Sha256::new();
        digest.update(layer.name.as_bytes());
        let mut blocks_read = 0;

        // mvin phase: verify every input under its expected version.
        match layer.kind {
            LayerKind::Embedding { vocab, dim, seq } => {
                // tnpu-lint: allow(panic-path) — layout allocation gives
                // every embedding layer a weight slot; `li` is in range.
                let table = self.layout.weights[li].expect("embedding table");
                blocks_read += self.ingest_gathers(&mut digest, table, vocab, dim, seq)?;
            }
            _ => {
                for src in &layer.inputs {
                    blocks_read += self.ingest_tensor(&mut digest, self.layout.source(*src))?;
                }
                // tnpu-lint: allow(panic-path) — `li` came from layers.get.
                if let Some(w) = self.layout.weights[li] {
                    blocks_read += self.ingest_tensor(&mut digest, w)?;
                }
            }
        }

        // Compute + mvout phase: produce the output tile by tile, with
        // per-tile version bumps, then merge.
        // tnpu-lint: allow(panic-path) — `li` came from layers.get above.
        let out = self.layout.outputs[li];
        let state = digest.finalize();
        let tiles = out.bytes.div_ceil(TILE_BYTES).max(1) as u32;
        self.table.expand(out.id, tiles)?;
        let mut blocks_written = 0;
        for tile in 0..tiles {
            let version = self.table.bump_tile(out.id, tile)?;
            let tile_base = u64::from(tile) * TILE_BYTES;
            let tile_len = TILE_BYTES.min(out.bytes - tile_base);
            let mut rng = seeded_from(&state, tile);
            let mut off = 0;
            while off < tile_len {
                let mut block = [0u8; BLOCK_SIZE];
                for chunk in block.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
                }
                self.mem
                    .write_block(out.addr.offset(tile_base + off), version, block);
                blocks_written += 1;
                off += BLOCK_SIZE as u64;
            }
        }
        self.table.merge(out.id)?;
        self.next_layer += 1;
        Ok(LayerTrace {
            name: layer.name.clone(),
            blocks_read,
            blocks_written,
            tiles,
        })
    }

    /// Run all remaining layers.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RunError`].
    pub fn run(&mut self) -> Result<Vec<LayerTrace>, RunError> {
        let mut traces = Vec::new();
        while !self.is_finished() {
            traces.push(self.step()?);
        }
        Ok(traces)
    }

    /// Read the final output back on the CPU side (post-processing,
    /// Fig. 3), verifying it.
    ///
    /// # Errors
    ///
    /// [`RunError::Integrity`] if the output fails verification;
    /// [`RunError::Poisoned`] if the context is quarantined.
    pub fn read_output(&mut self) -> Result<Vec<u8>, RunError> {
        self.guard()?;
        let r = self.read_output_inner();
        self.note(r)
    }

    fn read_output_inner(&mut self) -> Result<Vec<u8>, RunError> {
        // tnpu-lint: allow(panic-path) — Model construction rejects empty
        // layer lists, so `outputs` is never empty.
        let last = *self.layout.outputs.last().expect("models have layers");
        let version = self.table.version(last.id, 0)?;
        if self.recovery.is_some() {
            // Recovery-aware read-back: same bytes as the `ts_*` path
            // (sequential blocks truncated to the tensor length), but each
            // block fetch gets the retry budget.
            let blocks = last.bytes.div_ceil(BLOCK_SIZE as u64);
            let mut out = Vec::with_capacity(last.bytes as usize);
            for b in 0..blocks {
                let addr = last.addr.offset(b * BLOCK_SIZE as u64);
                let data = read_with_retry(&self.mem, self.recovery.as_mut(), addr, version)?;
                out.extend_from_slice(&data);
            }
            out.truncate(last.bytes as usize);
            return Ok(out);
        }
        self.cpu
            .read_tensor(&self.mem, last.addr, version, last.bytes as usize)
            .map_err(|e| match e {
                TsError::Integrity(err) => RunError::Integrity(err),
                other => RunError::Cpu(other),
            })
    }

    /// Every tensor the epoch sweep must preserve: the input, each
    /// non-shared weight tensor, and every layer output.
    fn live_tensors(&self) -> Vec<TensorInfo> {
        let mut out = vec![self.layout.input];
        for (li, w) in self.layout.weights.iter().enumerate() {
            if let Some(w) = w {
                // tnpu-lint: allow(panic-path) — one weight slot per layer.
                if self.model.layers[li].weights_shared_with.is_none() {
                    out.push(*w);
                }
            }
        }
        out.extend(self.layout.outputs.iter().copied());
        out
    }

    /// Re-encryption epoch sweep, consumed on version exhaustion
    /// (`VersionError::Exhausted`): verify and capture every live tensor,
    /// rotate the memory's keys to a fresh epoch, reset every version to
    /// 0, and rewrite the captured contents under version 1 of the new
    /// epoch. Reusing the low version numbers is sound *only* because the
    /// re-key kills every MAC bound under the old epoch. Never-written
    /// tensors (version 0) are skipped. Mid-production (tile-expanded)
    /// tensors — a KV cache mid-sequence stays expanded for the whole
    /// decode — are preserved tile by tile: each written tile is captured
    /// under its own version, and after the re-key the entry is
    /// re-expanded to the same tile count with written tiles rewritten at
    /// version 1 and never-written tiles left at 0, so the producer sees
    /// the same expansion shape in the new epoch. With recovery enabled,
    /// the full DMA + crypto cost of the sweep is charged to
    /// `sweep_cycles`.
    ///
    /// # Errors
    ///
    /// [`RunError::Integrity`] if a live block fails verification even
    /// after retries (persistent tampering). The failure is reported from
    /// the capture phase, *before* any key or version mutates.
    fn epoch_sweep(&mut self) -> Result<(), RunError> {
        let live = self.live_tensors();
        epoch_sweep_tensors(
            &live,
            &mut self.table,
            &mut self.mem,
            self.recovery.as_mut(),
            &mut self.epoch,
        )
    }

    /// Attempt to lift the quarantine after a failure: run an epoch sweep
    /// to re-establish a consistent state (fresh keys, versions reset,
    /// all intact tensors re-encrypted; the abandoned inference's partial
    /// outputs are dropped). On success the context is clean and a new
    /// inference may start. If the memory still holds state that fails
    /// verification even after retries — a persistent fault or a real
    /// attack — the sweep reports it and the context *stays* poisoned.
    ///
    /// # Errors
    ///
    /// Propagates the sweep's [`RunError::Integrity`] on persistent
    /// tampering.
    pub fn recover(&mut self) -> Result<(), RunError> {
        self.epoch_sweep()?;
        self.poisoned = false;
        // The quarantined inference is abandoned, not resumed.
        self.next_layer = self.model.layers.len();
        Ok(())
    }

    /// Suspend the context at a layer boundary for a context switch:
    /// capture the epoch-tagged version-table snapshot plus the layer
    /// cursor and input seed. The tensor data stays in protected DRAM
    /// (self-authenticating under the versioned MACs); only this snapshot
    /// leaves the NPU.
    ///
    /// # Errors
    ///
    /// [`RunError::Poisoned`] if the context is quarantined — a poisoned
    /// context must not smuggle its state past the quarantine via a
    /// suspend/resume cycle.
    pub fn suspend(&self) -> Result<RunnerSnapshot, RunError> {
        self.guard()?;
        Ok(RunnerSnapshot {
            table: self.table.snapshot(self.epoch),
            next_layer: self.next_layer,
            seed: self.seed,
        })
    }

    /// Resume from a [`suspend`](Self::suspend) snapshot, re-validating
    /// its epoch tag against the context's current epoch.
    ///
    /// # Errors
    ///
    /// [`RunError::Version`] with [`VersionError::StaleSnapshot`] if an
    /// epoch sweep ran while the context was suspended — restoring
    /// pre-sweep versions under post-sweep keys is the replay hazard the
    /// epoch tag closes. The attempt quarantines the context (an attempted
    /// rollback, whether bug or attack, leaves its scheduling state
    /// untrustworthy). [`RunError::Poisoned`] if already quarantined.
    pub fn resume(&mut self, snapshot: &RunnerSnapshot) -> Result<(), RunError> {
        self.guard()?;
        let r = self.resume_inner(snapshot);
        self.note(r)
    }

    fn resume_inner(&mut self, snapshot: &RunnerSnapshot) -> Result<(), RunError> {
        self.table.restore(&snapshot.table, self.epoch)?;
        self.next_layer = snapshot.next_layer;
        self.seed = snapshot.seed;
        Ok(())
    }
}

/// The shared body of the re-encryption epoch sweep, over an explicit
/// tensor set — used by [`SecureRunner`] for whole-model sweeps and by the
/// stepped dynamic-dataflow sessions (`crate::stepped`), whose KV caches
/// stay tile-expanded across the whole decode.
///
/// Capture-verify every live tensor under the current epoch, rotate the
/// memory keys, reset every version, and rewrite the captured contents at
/// version 1 of the new epoch. Single-entry tensors at version 0 are
/// skipped (never written). Tile-expanded tensors keep their expansion
/// shape: written tiles (version > 0) are captured under their own
/// versions and rewritten at 1; never-written tiles stay at 0; the tile
/// count survives, so a mid-sequence producer sees the identical shape in
/// the new epoch. Tile geometry is [`TILE_BYTES`], matching both the
/// layer producer and the stepped KV-append path.
pub(crate) fn epoch_sweep_tensors<M: FunctionalMemory>(
    tensors: &[TensorInfo],
    table: &mut VersionTable,
    mem: &mut M,
    mut recovery: Option<&mut Recovery>,
    epoch: &mut u64,
) -> Result<(), RunError> {
    let mut saved: Vec<(TensorInfo, Vec<[u8; BLOCK_SIZE]>)> = Vec::new();
    // (tensor, expansion tile count, written tiles with their blocks)
    type SavedTile = (u32, Vec<[u8; BLOCK_SIZE]>);
    let mut saved_expanded: Vec<(TensorInfo, u32, Vec<SavedTile>)> = Vec::new();
    for &t in tensors {
        if table.is_expanded(t.id)? {
            let count = table.tile_count(t.id)?;
            let mut tiles: Vec<SavedTile> = Vec::new();
            for tile in 0..count {
                let tile_base = u64::from(tile) * TILE_BYTES;
                if tile_base >= t.bytes {
                    break; // expansion past the allocation holds no data
                }
                let version = table.version(t.id, tile)?;
                if version == 0 {
                    continue; // never-written tile: nothing to capture
                }
                let tile_len = TILE_BYTES.min(t.bytes - tile_base);
                let blocks = tile_len.div_ceil(BLOCK_SIZE as u64);
                let mut data = Vec::with_capacity(blocks as usize);
                for b in 0..blocks {
                    let addr = t.addr.offset(tile_base + b * BLOCK_SIZE as u64);
                    let block = read_with_retry(mem, recovery.as_deref_mut(), addr, version)?;
                    if let Some(rec) = recovery.as_deref_mut() {
                        rec.charge_sweep_read(addr, version);
                    }
                    data.push(block);
                }
                tiles.push((tile, data));
            }
            saved_expanded.push((t, count, tiles));
            continue;
        }
        let version = table.version(t.id, 0)?;
        if version == 0 {
            continue;
        }
        let blocks = t.bytes.div_ceil(BLOCK_SIZE as u64);
        let mut data = Vec::with_capacity(blocks as usize);
        for b in 0..blocks {
            let addr = t.addr.offset(b * BLOCK_SIZE as u64);
            let block = read_with_retry(mem, recovery.as_deref_mut(), addr, version)?;
            if let Some(rec) = recovery.as_deref_mut() {
                rec.charge_sweep_read(addr, version);
            }
            data.push(block);
        }
        saved.push((t, data));
    }
    *epoch = epoch.wrapping_add(1);
    mem.rekey(*epoch);
    table.reset_epoch();
    for (t, data) in saved {
        let version = table.bump(t.id)?; // 0 -> 1 under the new epoch
        for (b, block) in data.into_iter().enumerate() {
            let addr = t.addr.offset(b as u64 * BLOCK_SIZE as u64);
            mem.write_block(addr, version, block);
            if let Some(rec) = recovery.as_deref_mut() {
                rec.charge_sweep_write(addr, version);
            }
        }
    }
    for (t, count, tiles) in saved_expanded {
        // reset_epoch collapsed the entry to Single(0); restore the
        // expansion shape, then rewrite each written tile at 1.
        table.expand(t.id, count)?;
        for (tile, data) in tiles {
            let version = table.bump_tile(t.id, tile)?; // 0 -> 1
            let tile_base = u64::from(tile) * TILE_BYTES;
            for (b, block) in data.into_iter().enumerate() {
                let addr = t.addr.offset(tile_base + b as u64 * BLOCK_SIZE as u64);
                mem.write_block(addr, version, block);
                if let Some(rec) = recovery.as_deref_mut() {
                    rec.charge_sweep_write(addr, version);
                }
            }
        }
    }
    if let Some(rec) = recovery {
        rec.note_sweep();
    }
    Ok(())
}

/// One verified read with the recovery retry budget. Without recovery
/// this is exactly `mem.read_block` — the first result, pass or fail.
/// With recovery, errors whose cause a re-fetch can plausibly clear (a
/// stalled transfer, a content-cause MAC mismatch from transient bus
/// corruption, a glitched counter fetch) are retried up to the budget,
/// each attempt charged real cycles. Version- and address-cause
/// mismatches are *semantic* — replayed or relocated ciphertext that
/// re-reading the same state cannot fix — and escalate immediately, so
/// retries never launder a replay into a recovery.
pub(crate) fn read_with_retry<M: FunctionalMemory>(
    mem: &M,
    recovery: Option<&mut Recovery>,
    addr: Addr,
    version: u64,
) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
    let first = mem.read_block(addr, version);
    let Some(rec) = recovery else {
        return first;
    };
    let mut last = match first {
        Ok(data) => return Ok(data),
        Err(e) => e,
    };
    for attempt in 0..rec.policy.max_retries {
        if !retryable(&last) {
            break;
        }
        rec.charge_retry(addr, version, attempt);
        match mem.read_block(addr, version) {
            Ok(data) => {
                rec.note_recovered();
                return Ok(data);
            }
            Err(e) => last = e,
        }
    }
    rec.note_escalated();
    Err(last)
}

/// Whether a re-fetch has any chance of clearing this error.
fn retryable(e: &IntegrityError) -> bool {
    match e {
        // Transient signatures: a dropped/stalled transfer or flipped bits
        // may read back clean on the next attempt.
        IntegrityError::Stalled { .. } | IntegrityError::TreeMismatch { .. } => true,
        IntegrityError::MacMismatch { cause, .. } => matches!(cause, MismatchCause::Content),
        // Reading a never-written block is an addressing bug in the
        // runner, not a fault: every retry re-reads the same hole.
        IntegrityError::NotWritten { .. } => false,
    }
}

/// Whether [`SecureRunner::recover`]'s re-encryption epoch sweep can lift
/// the failure that quarantined a context.
///
/// Integrity failures are sweep-clearable (re-verify, re-key, drop the
/// abandoned inference), as are the version states a sweep resets —
/// exhaustion and a raced stale snapshot. Version-management *misuse* and
/// CPU access errors indicate runner bugs: sweeping would mask the defect,
/// so callers should leave the quarantine in place and surface the error.
#[must_use]
pub fn sweep_clearable(e: &RunError) -> bool {
    match e {
        RunError::Integrity(_) => true,
        RunError::Version(v) => match v {
            // The sweep resets every version and re-snapshots: these two
            // states are exactly what it exists to clear.
            VersionError::Exhausted(_) | VersionError::StaleSnapshot { .. } => true,
            // Misuse of the version table: a sweep cannot fix the runner.
            VersionError::UnknownTensor(_)
            | VersionError::NoSuchTile { .. }
            | VersionError::TilesNotUniform(_)
            | VersionError::AlreadyExpanded(_)
            | VersionError::NotExpanded(_) => false,
        },
        RunError::Finished | RunError::Cpu(_) | RunError::Poisoned => false,
    }
}

/// Deterministic synthetic tensor contents.
pub(crate) fn synth_bytes(seed: u64, tensor: u32, len: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed.wrapping_add(u64::from(tensor) << 32));
    let mut out = Vec::with_capacity(len as usize);
    while (out.len() as u64) < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len as usize);
    out
}

pub(crate) fn seeded_from(state: &[u8; 32], tile: u32) -> SplitMix64 {
    let mut seed = [0u8; 8];
    // tnpu-lint: allow(panic-path) — `[..8]` of a `[u8; 32]` parameter.
    seed.copy_from_slice(&state[..8]);
    SplitMix64::new(u64::from_le_bytes(seed) ^ u64::from(tile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnpu_models::registry;

    fn runner(name: &str) -> SecureRunner {
        let model = registry::model(name).expect("registered");
        SecureRunner::new(&model, Key128::derive(b"runner"), 7)
    }

    #[test]
    fn deepface_runs_end_to_end() {
        let mut r = runner("df");
        let traces = r.run().expect("clean run verifies");
        assert_eq!(traces.len(), 6);
        assert!(traces.iter().all(|t| t.blocks_read > 0));
        let out = r.read_output().expect("output verifies");
        assert!(!out.is_empty());
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = runner("agz");
        let mut b = runner("agz");
        a.run().expect("ok");
        b.run().expect("ok");
        assert_eq!(a.read_output().expect("ok"), b.read_output().expect("ok"));
    }

    #[test]
    fn different_inputs_change_output() {
        let model = registry::model("agz").expect("registered");
        let mut a = SecureRunner::new(&model, Key128::derive(b"k"), 1);
        let mut b = SecureRunner::new(&model, Key128::derive(b"k"), 2);
        a.run().expect("ok");
        b.run().expect("ok");
        assert_ne!(a.read_output().expect("ok"), b.read_output().expect("ok"));
    }

    #[test]
    fn tampering_between_layers_detected() {
        let mut r = runner("df");
        r.step().expect("layer 0 clean");
        // Physical attacker flips a bit in layer 0's output ciphertext.
        let victim = r.layout().outputs[0].addr;
        r.memory_mut()
            .dram_mut()
            .block_mut(victim)
            .expect("written")[3] ^= 0x40;
        match r.step() {
            Err(RunError::Integrity(_)) => {}
            other => panic!("tampering must be detected, got {other:?}"),
        }
    }

    #[test]
    fn replay_between_layers_detected() {
        // Snapshot a weight tensor block at its current (valid) state,
        // let the victim overwrite it, then restore the stale state.
        let model = registry::model("df").expect("registered");
        let mut r = SecureRunner::new(&model, Key128::derive(b"k"), 1);
        let weight = r.layout().weights[0].expect("conv has weights");
        let snap = r.memory_mut().snapshot(weight.addr).expect("written");
        // The enclave re-initializes the weights (version bumps to 2)...
        // simulated by writing under a bumped version through the table.
        {
            let mem = r.memory_mut();
            mem.write_block(weight.addr, 2, [9u8; 64]);
        }
        r.table.bump(weight.id).expect("bump to 2");
        // ...attacker replays the old (valid-at-version-1) snapshot.
        r.memory_mut().restore(weight.addr, snap);
        match r.step() {
            Err(RunError::Integrity(_)) => {}
            other => panic!("replay must be detected, got {other:?}"),
        }
    }

    #[test]
    fn version_table_peaks_match_paper_scale() {
        // §IV-D: version storage is KB-scale (avg 1.3 KB, max 7.5 KB).
        let mut r = runner("df");
        r.run().expect("ok");
        let peak = r.version_table().peak_storage_bytes();
        assert!(peak > 0);
        assert!(peak < 64 << 10, "peak {peak} B should be KB-scale");
    }

    #[test]
    fn embedding_model_verifies_gathers() {
        let mut r = runner("ncf");
        let traces = r.run().expect("clean run");
        // The two embedding layers must read gathered blocks.
        assert!(traces[0].blocks_read >= 512);
        r.read_output().expect("output verifies");
    }

    // ---- poisoning / quarantine semantics ----

    #[test]
    fn failed_step_poisons_the_context() {
        let mut r = runner("df");
        r.step().expect("layer 0 clean");
        let victim = r.layout().outputs[0].addr;
        r.memory_mut()
            .dram_mut()
            .block_mut(victim)
            .expect("written")[0] ^= 1;
        assert!(matches!(r.step(), Err(RunError::Integrity(_))));
        assert!(r.is_poisoned());
        // Every further call is refused until the context recovers.
        assert!(matches!(r.step(), Err(RunError::Poisoned)));
        assert!(matches!(r.next_inference(9), Err(RunError::Poisoned)));
        assert!(matches!(r.read_output(), Err(RunError::Poisoned)));
        assert!(matches!(r.run(), Err(RunError::Poisoned)));
    }

    #[test]
    fn finished_is_not_poisonous() {
        let mut r = runner("df");
        r.run().expect("clean run");
        assert!(matches!(r.step(), Err(RunError::Finished)));
        assert!(!r.is_poisoned(), "Finished is a state, not a failure");
        r.read_output().expect("context still usable");
        r.next_inference(9).expect("next pass starts");
    }

    #[test]
    fn poisoned_error_displays() {
        assert!(RunError::Poisoned.to_string().contains("quarantined"));
        let cpu = RunError::Cpu(crate::cpu_access::TsError::ReadBufferEmpty);
        assert!(cpu.to_string().contains("cpu"));
    }

    // ---- suspend / resume (context switches) ----

    #[test]
    fn suspend_resume_at_a_layer_boundary_is_transparent() {
        let mut straight = runner("df");
        straight.run().expect("ok");
        let want = straight.read_output().expect("ok");

        let mut r = runner("df");
        r.step().expect("layer 0");
        r.step().expect("layer 1");
        let snap = r.suspend().expect("suspend at boundary");
        assert!(snap.table_bytes() > 0, "snapshot carries the table");
        assert_eq!(snap.epoch(), 0);
        // The scheduler parks the context; later it restores the state.
        r.resume(&snap).expect("resume");
        r.run().expect("finishes");
        assert_eq!(r.read_output().expect("ok"), want);
    }

    #[test]
    fn stale_snapshot_resume_is_refused_and_quarantines() {
        // Regression test for the sweep/preemption hazard: a context
        // suspended before an epoch sweep must not restore pre-sweep
        // versions. Pre-fix (snapshots without epoch tags) the restore
        // silently rewound the table into the new epoch.
        let mut r = runner("df");
        r.enable_recovery(RetryPolicy::default(), treeless_engine());
        r.step().expect("layer 0");
        let snap = r.suspend().expect("suspend");
        // An epoch sweep runs while the context is parked (recover() is
        // the public path that always sweeps).
        r.recover().expect("sweep over clean state");
        assert_eq!(r.epoch(), 1);
        assert!(matches!(
            r.resume(&snap),
            Err(RunError::Version(VersionError::StaleSnapshot {
                snapshot: 0,
                current: 1
            }))
        ));
        assert!(r.is_poisoned(), "attempted rollback quarantines");
        // A fresh same-epoch snapshot round-trips after recovery.
        r.recover().expect("recover again");
        let fresh = r.suspend().expect("suspend");
        r.resume(&fresh).expect("same-epoch resume");
    }

    #[test]
    fn poisoned_context_cannot_suspend() {
        let mut r = runner("df");
        r.step().expect("layer 0");
        let victim = r.layout().outputs[0].addr;
        r.memory_mut()
            .dram_mut()
            .block_mut(victim)
            .expect("written")[0] ^= 1;
        assert!(matches!(r.step(), Err(RunError::Integrity(_))));
        assert!(matches!(r.suspend(), Err(RunError::Poisoned)));
    }

    // ---- recovery: retry + epoch sweep ----

    use crate::recovery::{RecoveryStats, RetryPolicy};
    use tnpu_memprot::faults::{FaultKind, FaultyMemory};
    use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};

    fn treeless_engine() -> Box<dyn tnpu_memprot::ProtectionEngine> {
        build_engine(SchemeKind::Treeless, &ProtectionConfig::paper_default())
    }

    #[test]
    fn clean_run_with_recovery_costs_nothing_and_matches() {
        let mut plain = runner("df");
        plain.run().expect("ok");
        let want = plain.read_output().expect("ok");

        let mut r = runner("df");
        r.enable_recovery(RetryPolicy::default(), treeless_engine());
        r.run().expect("ok");
        assert_eq!(r.read_output().expect("ok"), want, "recovery is inert");
        assert_eq!(
            r.recovery_stats().expect("enabled"),
            RecoveryStats::default(),
            "no faults, no cost"
        );
        assert_eq!(r.epoch(), 0);
    }

    #[test]
    fn transient_stalls_recover_with_charged_retries() {
        let mut plain = runner("df");
        plain.run().expect("ok");
        let want = plain.read_output().expect("ok");

        let model = registry::model("df").expect("registered");
        let mem = FaultyMemory::new(
            TreelessMemory::new(Key128::derive(b"runner")),
            FaultKind::StalledTransfer,
            29,
            42,
        );
        let mut r = SecureRunner::with_memory(&model, mem, 7);
        r.enable_recovery(RetryPolicy::default(), treeless_engine());
        r.run().expect("stalls are re-issued, not fatal");
        assert_eq!(r.read_output().expect("ok"), want);
        let stats = r.recovery_stats().expect("enabled");
        assert!(r.memory().injected() > 0, "faults actually fired");
        assert!(stats.retries > 0 && stats.recovered_reads > 0);
        assert!(stats.retry_cycles > 0, "retries are never free");
        assert_eq!(stats.escalated_reads, 0);
    }

    #[test]
    fn exhaustion_is_consumed_by_an_epoch_sweep() {
        let model = registry::model("df").expect("registered");
        let mut free = SecureRunner::new(&model, Key128::derive(b"runner"), 7);
        let mut limited = SecureRunner::new(&model, Key128::derive(b"runner"), 7);
        limited.set_version_limit(2);
        limited.enable_recovery(RetryPolicy::default(), treeless_engine());
        for pass in 0..4u64 {
            if pass > 0 {
                free.next_inference(pass).expect("unbounded versions");
                limited
                    .next_inference(pass)
                    .expect("sweep absorbs exhaustion");
            }
            free.run().expect("ok");
            limited.run().expect("ok");
            assert_eq!(
                limited.read_output().expect("ok"),
                free.read_output().expect("ok"),
                "pass {pass}: sweeps must not change the computation"
            );
        }
        let stats = limited.recovery_stats().expect("enabled");
        assert!(stats.sweeps >= 1, "limit 2 over 4 passes must sweep");
        assert!(stats.sweep_blocks > 0);
        assert!(
            stats.sweep_cycles > 0,
            "sweep cost is visible in the report"
        );
        assert!(limited.epoch() >= 1);

        // Without recovery the same pressure aborts with Exhausted.
        let mut aborted = SecureRunner::new(&model, Key128::derive(b"runner"), 7);
        aborted.set_version_limit(2);
        aborted.run().expect("pass 1 fits");
        aborted.next_inference(1).expect("version 2 fits");
        aborted.run().expect("pass 2 fits");
        assert!(matches!(
            aborted.next_inference(2),
            Err(RunError::Version(VersionError::Exhausted(_)))
        ));
        assert!(aborted.is_poisoned());
    }

    #[test]
    fn persistent_tamper_escalates_and_recover_heals_only_clean_state() {
        let mut r = runner("df");
        r.enable_recovery(
            RetryPolicy {
                max_retries: 9,
                ..RetryPolicy::default()
            },
            treeless_engine(),
        );
        r.step().expect("layer 0 clean");
        let victim = r.layout().outputs[0].addr;
        r.memory_mut()
            .dram_mut()
            .block_mut(victim)
            .expect("written")[3] ^= 0x40;
        // Persistent tampering survives every retry and escalates.
        assert!(matches!(r.step(), Err(RunError::Integrity(_))));
        let stats = r.recovery_stats().expect("enabled");
        assert!(stats.retries > 0, "content-cause mismatch was retried");
        assert_eq!(stats.recovered_reads, 0, "never misclassified as transient");
        assert!(stats.escalated_reads >= 1);
        // recover() re-verifies everything: the tampered block is still
        // there, so the sweep reports it and the quarantine holds.
        assert!(matches!(r.recover(), Err(RunError::Integrity(_))));
        assert!(r.is_poisoned());
        // Undo the tamper (the fault clears): now the sweep succeeds and
        // the context is clean again.
        r.memory_mut()
            .dram_mut()
            .block_mut(victim)
            .expect("written")[3] ^= 0x40;
        r.recover().expect("sweep over intact state succeeds");
        assert!(!r.is_poisoned());
        assert!(r.epoch() >= 1, "recovery rotated to a fresh epoch");
        r.next_inference(11).expect("fresh inference starts");
        r.run().expect("runs clean after recovery");
        let healed = r.read_output().expect("verifies");

        // The post-recovery pass computes exactly what a fresh context
        // would: the sweep round-tripped every tensor byte-identically.
        let model = registry::model("df").expect("registered");
        let mut fresh = SecureRunner::new(&model, Key128::derive(b"runner"), 7);
        fresh.run().expect("ok");
        fresh.next_inference(11).expect("ok");
        fresh.run().expect("ok");
        assert_eq!(healed, fresh.read_output().expect("ok"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::recovery::RetryPolicy;
    use proptest::prelude::*;
    use tnpu_memprot::faults::{FaultKind, FaultyMemory};
    use tnpu_memprot::functional::UnsecureMemory;
    use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
    use tnpu_models::builder::ModelBuilder;
    use tnpu_models::Model;

    fn tiny() -> Model {
        ModelBuilder::new("tiny", "TinyNet", (4, 8, 8))
            .conv("c1", 8, 3, 1, 1)
            .pool("p1", 2, 2)
            .fc("fc", 16)
            .build()
    }

    fn treeless_engine() -> Box<dyn tnpu_memprot::ProtectionEngine> {
        build_engine(SchemeKind::Treeless, &ProtectionConfig::paper_default())
    }

    fn reference_output(model: &Model, seed: u64) -> Vec<u8> {
        let mut clean = SecureRunner::with_memory(model, UnsecureMemory::new(), seed);
        clean.run().expect("unprotected run cannot fail");
        clean.read_output().expect("unprotected read cannot fail")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any transient fault process, at any rate down to 1-in-16 reads,
        /// converges to the unattacked reference output under the retry
        /// budget: transient faults cost cycles, never correctness.
        #[test]
        fn transient_faults_with_retry_converge_to_reference(
            kind_idx in 0usize..5,
            period in 16u64..64,
            fault_seed in any::<u64>(),
        ) {
            let transients: Vec<FaultKind> = FaultKind::ALL
                .into_iter()
                .filter(|k| k.is_transient())
                .collect();
            let kind = transients[kind_idx % transients.len()];
            let model = tiny();
            let want = reference_output(&model, 7);
            let mem = FaultyMemory::new(
                TreelessMemory::new(Key128::derive(b"pt-transient")),
                kind,
                period,
                fault_seed,
            );
            let mut r = SecureRunner::with_memory(&model, mem, 7);
            r.enable_recovery(
                RetryPolicy { max_retries: 8, ..RetryPolicy::default() },
                treeless_engine(),
            );
            r.run().expect("transient faults recover under retry");
            prop_assert_eq!(r.read_output().expect("verifies"), want);
            let stats = r.recovery_stats().expect("enabled");
            prop_assert_eq!(stats.recovered_reads, stats.retries.min(stats.recovered_reads));
            prop_assert_eq!(stats.escalated_reads, 0, "nothing persisted");
        }

        /// Persistent tampering is never misclassified as transient: under
        /// *any* retry budget the run fails with an integrity error, zero
        /// reads are reported recovered, and the context is quarantined.
        #[test]
        fn persistent_tamper_never_recovers_under_any_budget(
            retries in 0u32..10,
            bit in 0u16..512,
            block_pick in any::<u64>(),
        ) {
            let model = tiny();
            let mut r = SecureRunner::with_memory(
                &model,
                TreelessMemory::new(Key128::derive(b"pt-persistent")),
                7,
            );
            r.enable_recovery(
                RetryPolicy { max_retries: retries, ..RetryPolicy::default() },
                treeless_engine(),
            );
            let input = r.layout().input;
            let blocks = input.bytes.div_ceil(BLOCK_SIZE as u64).max(1);
            let addr = input.addr.offset((block_pick % blocks) * BLOCK_SIZE as u64);
            prop_assert!(r.memory_mut().tamper_bits(addr, &[bit]));
            match r.run() {
                Err(RunError::Integrity(_)) => {}
                other => prop_assert!(false, "stuck tamper must be detected, got {other:?}"),
            }
            prop_assert!(r.is_poisoned());
            let stats = r.recovery_stats().expect("enabled");
            prop_assert_eq!(stats.recovered_reads, 0, "never laundered into a recovery");
        }

        /// The re-encryption epoch sweep is invisible to the computation:
        /// under any version limit, a limited context with recovery
        /// produces byte-identical outputs to an unlimited one, pass after
        /// pass, while actually sweeping.
        #[test]
        fn epoch_sweeps_round_trip_every_pass(
            limit in 2u64..5,
            passes in 2u64..7,
            seed in any::<u64>(),
        ) {
            let model = tiny();
            let mut free = SecureRunner::with_memory(
                &model,
                TreelessMemory::new(Key128::derive(b"pt-sweep")),
                seed,
            );
            let mut limited = SecureRunner::with_memory(
                &model,
                TreelessMemory::new(Key128::derive(b"pt-sweep")),
                seed,
            );
            limited.set_version_limit(limit);
            limited.enable_recovery(RetryPolicy::default(), treeless_engine());
            for pass in 1..=passes {
                if pass > 1 {
                    free.next_inference(pass).expect("unbounded");
                    limited.next_inference(pass).expect("sweep absorbs exhaustion");
                }
                free.run().expect("ok");
                limited.run().expect("ok");
                prop_assert_eq!(
                    limited.read_output().expect("ok"),
                    free.read_output().expect("ok"),
                    "pass {} diverged", pass
                );
            }
            if passes > limit {
                let stats = limited.recovery_stats().expect("enabled");
                prop_assert!(stats.sweeps >= 1, "limit {} < passes {} must sweep", limit, passes);
                prop_assert!(stats.sweep_cycles > 0);
            }
        }

        /// Suspend→resume at any subset of layer boundaries is
        /// observation-equivalent to an unpreempted run: identical output
        /// bytes, identical version-table contents and peaks, identical
        /// epoch, and (with recovery enabled) identical recovery stats —
        /// preemption is free at the functional level; its cycle cost
        /// lives entirely in the serving layer's switch accounting.
        #[test]
        fn suspend_resume_is_observation_equivalent(
            seed in any::<u64>(),
            boundary_mask in any::<u8>(),
            double_suspend in any::<bool>(),
            with_recovery in any::<bool>(),
        ) {
            let model = tiny();
            let build = || {
                let mut r = SecureRunner::with_memory(
                    &model,
                    TreelessMemory::new(Key128::derive(b"pt-preempt")),
                    seed,
                );
                if with_recovery {
                    r.enable_recovery(RetryPolicy::default(), treeless_engine());
                }
                r
            };
            let mut straight = build();
            straight.run().expect("unpreempted run");
            let want = straight.read_output().expect("verifies");

            let mut r = build();
            let mut boundary = 0u8;
            while !r.is_finished() {
                if boundary_mask & (1 << (boundary % 8)) != 0 {
                    let snap = r.suspend().expect("boundary suspend");
                    if double_suspend {
                        // Suspends are read-only: taking two is harmless.
                        let again = r.suspend().expect("second suspend");
                        prop_assert_eq!(again.table_bytes(), snap.table_bytes());
                    }
                    r.resume(&snap).expect("same-epoch resume");
                }
                r.step().expect("clean step");
                boundary += 1;
            }
            prop_assert_eq!(r.read_output().expect("verifies"), want);
            prop_assert_eq!(r.epoch(), straight.epoch());
            prop_assert_eq!(
                r.version_table().storage_bytes(),
                straight.version_table().storage_bytes()
            );
            prop_assert_eq!(
                r.version_table().peak_storage_bytes(),
                straight.version_table().peak_storage_bytes()
            );
            prop_assert_eq!(r.recovery_stats(), straight.recovery_stats());
            for t in r.live_tensors() {
                prop_assert_eq!(
                    r.version_table().version(t.id, 0),
                    straight.version_table().version(t.id, 0)
                );
            }
        }

        /// The sweep itself round-trips every live tensor's plaintext
        /// byte-identically, even though every ciphertext changes key.
        #[test]
        fn epoch_sweep_preserves_all_tensor_plaintext(seed in any::<u64>()) {
            let model = tiny();
            let mut r = SecureRunner::with_memory(
                &model,
                TreelessMemory::new(Key128::derive(b"pt-roundtrip")),
                seed,
            );
            r.run().expect("clean");
            let capture = |r: &SecureRunner<TreelessMemory>| -> Vec<Vec<u8>> {
                r.live_tensors()
                    .into_iter()
                    .map(|t| {
                        let v = r.version_table().version(t.id, 0).expect("registered");
                        let blocks = t.bytes.div_ceil(BLOCK_SIZE as u64);
                        let mut bytes = Vec::new();
                        for b in 0..blocks {
                            let block = r
                                .memory()
                                .read_block(t.addr.offset(b * BLOCK_SIZE as u64), v)
                                .expect("verifies");
                            bytes.extend_from_slice(&block);
                        }
                        bytes
                    })
                    .collect()
            };
            let before = capture(&r);
            // recover() without an attached engine still sweeps (it just
            // charges nothing) — the mechanism is available to any context.
            r.recover().expect("sweep over clean state");
            prop_assert!(r.epoch() >= 1);
            let after = capture(&r);
            prop_assert_eq!(before, after, "plaintext must survive the re-key");
        }
    }
}
