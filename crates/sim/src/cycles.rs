//! Strongly-typed cycle counts.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A number of clock cycles.
///
/// The whole simulation runs in the NPU clock domain (the paper uses a single
/// frequency for processor and memory in both configurations, Table II), so a
/// single cycle type suffices.
///
/// # Examples
///
/// ```
/// use tnpu_sim::Cycles;
/// let a = Cycles(100) + Cycles(20) * 3;
/// assert_eq!(a, Cycles(160));
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Saturating subtraction; clamps at zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two cycle counts (useful for overlap models).
    #[must_use]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// The smaller of two cycle counts.
    #[must_use]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }

    /// This count as an `f64`, for ratio reporting.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

// Cycle accounting saturates rather than wraps: a saturated count is still
// "astronomically slow" in every report, while a wrapped one silently reads
// as fast (and `u64` overflow is unchecked in release builds).
impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0.saturating_mul(rhs))
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).fold(0, u64::saturating_add))
    }
}

impl std::fmt::Display for Cycles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut c = Cycles(10);
        c += Cycles(5);
        assert_eq!(c, Cycles(15));
        c -= Cycles(5);
        assert_eq!(c, Cycles(10));
        assert_eq!(c * 3, Cycles(30));
        assert_eq!(Cycles(3).saturating_sub(Cycles(10)), Cycles::ZERO);
        assert_eq!(Cycles(3).max(Cycles(10)), Cycles(10));
        assert_eq!(Cycles(3).min(Cycles(10)), Cycles(3));
    }

    #[test]
    fn sum_iterator() {
        let total: Cycles = (1..=4).map(Cycles).sum();
        assert_eq!(total, Cycles(10));
    }

    #[test]
    fn display() {
        assert_eq!(Cycles(42).to_string(), "42 cyc");
    }
}
