#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! Simulation substrate for the TNPU reproduction.
//!
//! This crate provides the low-level building blocks that every other crate
//! in the workspace builds on:
//!
//! * [`Cycles`] — a strongly-typed cycle count used throughout the timing
//!   models.
//! * [`Addr`] / [`BlockAddr`] — physical addresses and 64-byte block
//!   addresses (the granularity of the memory-protection engines).
//! * [`cache::Cache`] — a generic set-associative, write-back, LRU cache
//!   model used for the counter cache, hash cache, MAC cache and TLBs.
//! * [`dram::BandwidthModel`] / [`dram::DramTiming`] — the simple
//!   bandwidth-limited memory model the paper uses ("we use a simple memory
//!   bandwidth model, which limits the maximum bandwidth" §V-A).
//! * [`stats`] — traffic and event counters shared by the engines.
//! * [`rng::SplitMix64`] — a tiny deterministic RNG for workload index
//!   streams (embedding gathers), so experiments are reproducible.
//!
//! # Examples
//!
//! ```
//! use tnpu_sim::{Addr, BLOCK_SIZE, cache::{Cache, CacheConfig, AccessKind}};
//!
//! let mut cache = Cache::new(CacheConfig::new("ctr", 4096, 8, BLOCK_SIZE));
//! let outcome = cache.access(Addr(0x1000), AccessKind::Read);
//! assert!(outcome.is_miss());
//! let outcome = cache.access(Addr(0x1000), AccessKind::Read);
//! assert!(outcome.is_hit());
//! ```

pub mod cache;
pub mod cycles;
pub mod dram;
pub mod rng;
pub mod stats;

pub use cycles::Cycles;

/// Size of a memory block — the granularity of encryption, MACs and
/// counters, matching a cache line (64 B in the paper).
pub const BLOCK_SIZE: usize = 64;

/// A physical byte address in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The 64-byte block this address falls into.
    #[must_use]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 / BLOCK_SIZE as u64)
    }

    /// Align the address down to its block base.
    #[must_use]
    pub fn block_base(self) -> Addr {
        Addr(self.0 & !(BLOCK_SIZE as u64 - 1))
    }

    /// Offset of this address within its block.
    #[must_use]
    pub fn block_offset(self) -> usize {
        usize::try_from(self.0 % BLOCK_SIZE as u64).expect("offset is below BLOCK_SIZE")
    }

    /// The address `bytes` past this one.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// Index of a 64-byte block (address divided by [`BLOCK_SIZE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The byte address of the first byte of the block.
    #[must_use]
    pub fn base(self) -> Addr {
        Addr(self.0 * BLOCK_SIZE as u64)
    }

    /// The block `n` blocks past this one.
    #[must_use]
    pub fn offset(self, n: u64) -> BlockAddr {
        BlockAddr(self.0 + n)
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

/// A run of consecutive 64-byte blocks: `len` blocks starting at `first`.
///
/// Runs are the batched currency between the DMA layer and the protection
/// engines: a `DmaPattern` decomposes into maximal runs, and an engine
/// charges each run's metadata once per covered metadata block instead of
/// once per data block. A run is never empty (`len >= 1`) when produced by
/// `DmaPattern::for_each_run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRun {
    /// First block of the run.
    pub first: BlockAddr,
    /// Number of consecutive blocks (>= 1 for emitted runs).
    pub len: u64,
}

impl BlockRun {
    /// The last block of the run.
    ///
    /// # Panics
    ///
    /// Panics if the run is empty.
    #[must_use]
    pub fn last(self) -> BlockAddr {
        assert!(self.len > 0, "empty run has no last block");
        BlockAddr(self.first.0 + (self.len - 1))
    }

    /// Iterate the run's blocks in ascending order.
    pub fn blocks(self) -> impl Iterator<Item = BlockAddr> {
        (0..self.len).map(move |i| self.first.offset(i))
    }
}

/// Iterate over the block addresses covering `[start, start + len)`.
///
/// # Examples
///
/// ```
/// use tnpu_sim::{Addr, blocks_covering};
/// let blocks: Vec<_> = blocks_covering(Addr(0x10), 0x80).collect();
/// assert_eq!(blocks.len(), 3); // 0x10..0x90 touches blocks 0, 1, 2
/// ```
pub fn blocks_covering(start: Addr, len: u64) -> impl Iterator<Item = BlockAddr> {
    let first = start.0 / BLOCK_SIZE as u64;
    let last = if len == 0 {
        first
    } else {
        (start.0 + len - 1) / BLOCK_SIZE as u64 + 1
    };
    (first..last).map(BlockAddr)
}

/// Number of 64-byte blocks covering `[start, start + len)`.
#[must_use]
pub fn block_count(start: Addr, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = start.0 / BLOCK_SIZE as u64;
    let last = (start.0 + len - 1) / BLOCK_SIZE as u64;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_block_roundtrip() {
        let a = Addr(0x1234);
        assert_eq!(a.block().0, 0x1234 / 64);
        assert_eq!(a.block_base().0, 0x1200 & !63);
        assert_eq!(a.block_offset(), 0x1234 % 64);
        assert_eq!(a.block().base().block(), a.block());
    }

    #[test]
    fn blocks_covering_exact() {
        let v: Vec<_> = blocks_covering(Addr(0), 128).collect();
        assert_eq!(v, vec![BlockAddr(0), BlockAddr(1)]);
    }

    #[test]
    fn blocks_covering_unaligned() {
        let v: Vec<_> = blocks_covering(Addr(63), 2).collect();
        assert_eq!(v, vec![BlockAddr(0), BlockAddr(1)]);
    }

    #[test]
    fn blocks_covering_empty() {
        assert_eq!(blocks_covering(Addr(100), 0).count(), 0);
        assert_eq!(block_count(Addr(100), 0), 0);
    }

    #[test]
    fn block_count_matches_iterator() {
        for start in [0u64, 1, 63, 64, 65, 4095] {
            for len in [0u64, 1, 63, 64, 65, 200, 4096] {
                assert_eq!(
                    block_count(Addr(start), len),
                    blocks_covering(Addr(start), len).count() as u64,
                    "start={start} len={len}"
                );
            }
        }
    }

    #[test]
    fn block_run_accessors() {
        let r = BlockRun {
            first: BlockAddr(10),
            len: 3,
        };
        assert_eq!(r.last(), BlockAddr(12));
        let blocks: Vec<_> = r.blocks().collect();
        assert_eq!(blocks, vec![BlockAddr(10), BlockAddr(11), BlockAddr(12)]);
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn empty_run_has_no_last() {
        let _ = BlockRun {
            first: BlockAddr(0),
            len: 0,
        }
        .last();
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr(0xff).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr(0xff)), "ff");
    }
}
