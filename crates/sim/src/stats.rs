//! Traffic and event statistics shared by the memory-protection engines and
//! the NPU simulator.

use std::collections::BTreeMap;

/// Byte counters for DRAM traffic, split by purpose.
///
/// `data` is the traffic an unprotected NPU would generate; the `meta`
/// categories are the security-metadata overhead the paper's Figure 15
/// reports (counters, tree nodes, MACs, version-table accesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TrafficStats {
    /// Payload bytes read from DRAM.
    pub data_read: u64,
    /// Payload bytes written to DRAM.
    pub data_write: u64,
    /// Counter-block bytes transferred (tree-based engine).
    pub counter: u64,
    /// Integrity-tree node bytes transferred (tree-based engine).
    pub tree: u64,
    /// MAC bytes transferred (both engines).
    pub mac: u64,
    /// Version-table bytes transferred to/from the fully-protected region
    /// (tree-less engine).
    pub version: u64,
}

impl TrafficStats {
    /// All payload traffic.
    #[must_use]
    pub fn data(&self) -> u64 {
        self.data_read.saturating_add(self.data_write)
    }

    /// All security-metadata traffic.
    #[must_use]
    pub fn metadata(&self) -> u64 {
        self.counter
            .saturating_add(self.tree)
            .saturating_add(self.mac)
            .saturating_add(self.version)
    }

    /// Total DRAM traffic.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.data().saturating_add(self.metadata())
    }

    /// Accumulate another record into this one. Byte counters saturate
    /// rather than wrap: a pinned counter is obviously wrong in a report,
    /// a wrapped one silently reads as low traffic.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.data_read = self.data_read.saturating_add(other.data_read);
        self.data_write = self.data_write.saturating_add(other.data_write);
        self.counter = self.counter.saturating_add(other.counter);
        self.tree = self.tree.saturating_add(other.tree);
        self.mac = self.mac.saturating_add(other.mac);
        self.version = self.version.saturating_add(other.version);
    }
}

impl std::fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data {} B (r {} / w {}), ctr {} B, tree {} B, mac {} B, ver {} B",
            self.data(),
            self.data_read,
            self.data_write,
            self.counter,
            self.tree,
            self.mac,
            self.version
        )
    }
}

/// A named bag of monotonically increasing event counters.
///
/// # Examples
///
/// ```
/// use tnpu_sim::stats::EventCounters;
/// let mut ev = EventCounters::default();
/// ev.add("tree_walk", 2);
/// ev.add("tree_walk", 1);
/// assert_eq!(ev.get("tree_walk"), 3);
/// assert_eq!(ev.get("unknown"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EventCounters {
    counters: BTreeMap<String, u64>,
}

impl EventCounters {
    /// Increment `name` by `n` (saturating).
    pub fn add(&mut self, name: &str, n: u64) {
        let slot = self.counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(n);
    }

    /// Current value of `name` (zero if never incremented).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Accumulate another record into this one (saturating).
    pub fn merge(&mut self, other: &EventCounters) {
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals() {
        let t = TrafficStats {
            data_read: 100,
            data_write: 50,
            counter: 10,
            tree: 5,
            mac: 20,
            version: 1,
        };
        assert_eq!(t.data(), 150);
        assert_eq!(t.metadata(), 36);
        assert_eq!(t.total(), 186);
    }

    #[test]
    fn traffic_merge() {
        let mut a = TrafficStats::default();
        let b = TrafficStats {
            data_read: 1,
            data_write: 2,
            counter: 3,
            tree: 4,
            mac: 5,
            version: 6,
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.total(), 2 * b.total());
    }

    #[test]
    fn event_counters_merge() {
        let mut a = EventCounters::default();
        a.add("x", 1);
        let mut b = EventCounters::default();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn traffic_display_mentions_all_categories() {
        let t = TrafficStats::default();
        let s = t.to_string();
        for key in ["data", "ctr", "tree", "mac", "ver"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
