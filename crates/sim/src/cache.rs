//! Generic set-associative, write-back, LRU cache model.
//!
//! Used for the security-metadata caches (counter cache, hash cache, MAC
//! cache) and for TLBs. The model tracks tags only — data contents live in
//! the functional layer of the memory-protection crate.

use crate::Addr;

/// What kind of access is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read; a miss allocates a clean line.
    Read,
    /// A write; a miss allocates (write-allocate) and marks the line dirty.
    Write,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been allocated. If a dirty victim was
    /// evicted, its base address is reported so the caller can account for
    /// the write-back traffic.
    Miss {
        /// Base address of the evicted dirty line, if any.
        writeback: Option<Addr>,
    },
}

impl CacheOutcome {
    /// `true` if the access hit.
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }

    /// `true` if the access missed.
    #[must_use]
    pub fn is_miss(self) -> bool {
        !self.is_hit()
    }

    /// The dirty victim evicted by this access, if any.
    #[must_use]
    pub fn writeback(self) -> Option<Addr> {
        match self {
            CacheOutcome::Hit => None,
            CacheOutcome::Miss { writeback } => writeback,
        }
    }
}

/// Static geometry of a [`Cache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in statistics dumps.
    pub name: String,
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes; must be a power of two.
    pub line_size: usize,
}

impl CacheConfig {
    /// Create a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate: zero capacity/ways, line size
    /// not a power of two, or capacity not divisible by `ways * line_size`.
    #[must_use]
    pub fn new(name: &str, capacity: usize, ways: usize, line_size: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        assert!(ways > 0, "cache ways must be non-zero");
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            capacity.is_multiple_of(ways * line_size),
            "capacity {capacity} not divisible by ways*line {}",
            ways * line_size
        );
        CacheConfig {
            name: name.to_owned(),
            capacity,
            ways,
            line_size,
        }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.capacity / (self.ways * self.line_size)
    }
}

/// Hit/miss statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; zero when no accesses were made.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Accumulate another stats record into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Monotone recency stamp; larger = more recently used.
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use tnpu_sim::cache::{Cache, CacheConfig, AccessKind};
/// use tnpu_sim::Addr;
///
/// let mut c = Cache::new(CacheConfig::new("mac", 8192, 8, 64));
/// assert!(c.access(Addr(0), AccessKind::Write).is_miss());
/// assert!(c.access(Addr(32), AccessKind::Read).is_hit()); // same line
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        // `vec![v; n]` clones `v`, and `Vec: Clone` clones only contents —
        // not capacity — so each set must be allocated individually or every
        // set re-allocates (up to log2(ways) times) during warm-up.
        let sets = (0..config.sets())
            .map(|_| Vec::with_capacity(config.ways))
            .collect();
        Cache {
            config,
            sets,
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drop all contents, returning the base addresses of dirty lines in
    /// address order — each is a write-back the caller must account as DRAM
    /// traffic (as with [`invalidate`]); dropping them silently undercounts
    /// traffic for any flow that flushes metadata caches mid-run. Each
    /// reported victim also counts toward [`CacheStats::writebacks`].
    /// Statistics are preserved; use [`reset_stats`] to clear them.
    ///
    /// The LRU tick restarts from zero: with every line dropped, stamps
    /// only matter relatively among lines inserted *after* the flush, so
    /// rebasing cannot change any future eviction decision — and a flushed,
    /// stat-reset cache is indistinguishable from a fresh one (which the
    /// engine round-trip tests rely on).
    ///
    /// [`invalidate`]: Cache::invalidate
    /// [`reset_stats`]: Cache::reset_stats
    pub fn flush(&mut self) -> Vec<Addr> {
        let line_size = self.config.line_size as u64;
        let sets = self.sets.len() as u64;
        let mut victims = Vec::new();
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for line in set.drain(..) {
                if line.dirty {
                    let line_no = line.tag * sets + set_idx as u64;
                    victims.push(Addr(line_no * line_size));
                }
            }
        }
        self.tick = 0;
        victims.sort_unstable();
        self.stats.writebacks += victims.len() as u64;
        victims
    }

    fn index(&self, addr: Addr) -> (usize, u64) {
        let line = addr.0 / self.config.line_size as u64;
        let sets = self.sets.len() as u64;
        let set = usize::try_from(line % sets).expect("set index is below the set count");
        (set, line / sets)
    }

    /// Access the line containing `addr`.
    ///
    /// On a miss the line is allocated (write-allocate for both kinds); if a
    /// dirty victim is evicted, its base address is returned in the outcome
    /// so the caller can account for write-back traffic.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> CacheOutcome {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.config.ways;
        let line_size = self.config.line_size as u64;
        let sets = self.sets.len() as u64;
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.lru = tick;
            if kind == AccessKind::Write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }

        self.stats.misses += 1;
        let mut writeback = None;
        if set.len() >= ways {
            // Evict LRU.
            let (victim_idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("non-empty set");
            let victim = set.swap_remove(victim_idx);
            if victim.dirty {
                self.stats.writebacks += 1;
                let line_no = victim.tag * sets + set_idx as u64;
                writeback = Some(Addr(line_no * line_size));
            }
        }
        set.push(Line {
            tag,
            dirty: kind == AccessKind::Write,
            lru: tick,
        });
        CacheOutcome::Miss { writeback }
    }

    /// Access the line containing `addr` `repeats` times back to back.
    ///
    /// State-equivalent to calling [`access`] `repeats` times in a row with
    /// no interleaved accesses: only the first access can miss or evict (the
    /// line is resident afterwards), so the remaining `repeats - 1` are hits
    /// that advance the LRU tick and the hit counter. The final LRU stamp of
    /// the line equals the tick after the last repeat — exactly what the
    /// sequential loop would leave behind. This is the run-batched engines'
    /// workhorse: a run of data blocks sharing one metadata block becomes a
    /// single tag lookup instead of one per data block.
    ///
    /// Returns the outcome of the *first* access (the only one that can
    /// move data).
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    ///
    /// [`access`]: Cache::access
    pub fn access_repeated(&mut self, addr: Addr, kind: AccessKind, repeats: u64) -> CacheOutcome {
        assert!(repeats > 0, "access_repeated wants at least one access");
        let outcome = self.access(addr, kind);
        let extra = repeats - 1;
        if extra > 0 {
            self.tick += extra;
            self.stats.hits += extra;
            let tick = self.tick;
            let (set_idx, tag) = self.index(addr);
            let line = self.sets[set_idx]
                .iter_mut()
                .find(|l| l.tag == tag)
                .expect("line was just accessed");
            line.lru = tick;
        }
        outcome
    }

    /// Access `n_lines` consecutive lines starting at the line containing
    /// `base`, once each, reporting each line's outcome to `f` in order.
    ///
    /// State-equivalent to `n_lines` sequential [`access`] calls at
    /// `base`, `base + line_size`, ... — same hits, misses and write-backs
    /// in the same order. Used by the run-batched engine paths when a run
    /// touches each covered metadata line exactly once (fine-grained
    /// gathers).
    ///
    /// [`access`]: Cache::access
    pub fn access_many(
        &mut self,
        base: Addr,
        n_lines: u64,
        kind: AccessKind,
        mut f: impl FnMut(CacheOutcome),
    ) {
        let line_size = self.config.line_size as u64;
        let start = base.0 / line_size * line_size;
        for i in 0..n_lines {
            f(self.access(Addr(start + i * line_size), kind));
        }
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change, no statistics update).
    #[must_use]
    pub fn probe(&self, addr: Addr) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }

    /// Invalidate the line containing `addr` if resident. Returns the base
    /// address of the line if it was dirty (caller accounts the write-back).
    pub fn invalidate(&mut self, addr: Addr) -> Option<Addr> {
        let line_size = self.config.line_size as u64;
        let sets = self.sets.len() as u64;
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            let victim = set.swap_remove(pos);
            if victim.dirty {
                self.stats.writebacks += 1;
                let line_no = victim.tag * sets + set_idx as u64;
                return Some(Addr(line_no * line_size));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways x 64 B = 256 B
        Cache::new(CacheConfig::new("t", 256, 2, 64))
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().sets(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = CacheConfig::new("t", 256, 2, 48);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = small();
        assert!(c.access(Addr(0), AccessKind::Read).is_miss());
        assert!(c.access(Addr(63), AccessKind::Read).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines with even line numbers: 0, 2, 4 (addresses 0, 128, 256).
        c.access(Addr(0), AccessKind::Read);
        c.access(Addr(128), AccessKind::Read);
        // Touch line 0 so line 128's line becomes LRU.
        c.access(Addr(0), AccessKind::Read);
        // Allocate third line in set 0 -> evicts 128.
        c.access(Addr(256), AccessKind::Read);
        assert!(c.probe(Addr(0)));
        assert!(!c.probe(Addr(128)));
        assert!(c.probe(Addr(256)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(Addr(0), AccessKind::Write);
        c.access(Addr(128), AccessKind::Read);
        let out = c.access(Addr(256), AccessKind::Read);
        // LRU victim is line at 0, which is dirty.
        assert_eq!(out.writeback(), Some(Addr(0)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small();
        c.access(Addr(0), AccessKind::Read);
        c.access(Addr(128), AccessKind::Read);
        let out = c.access(Addr(256), AccessKind::Read);
        assert_eq!(out.writeback(), None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(Addr(0), AccessKind::Read);
        c.access(Addr(0), AccessKind::Write);
        c.access(Addr(128), AccessKind::Read);
        let out = c.access(Addr(256), AccessKind::Read);
        assert_eq!(out.writeback(), Some(Addr(0)));
    }

    #[test]
    fn invalidate_dirty_reports_address() {
        let mut c = small();
        c.access(Addr(192), AccessKind::Write); // line 3, set 1
        assert_eq!(c.invalidate(Addr(192)), Some(Addr(192)));
        assert!(!c.probe(Addr(192)));
        assert_eq!(c.invalidate(Addr(192)), None);
    }

    #[test]
    fn flush_clears_contents_keeps_stats() {
        let mut c = small();
        c.access(Addr(0), AccessKind::Write);
        c.flush();
        assert!(!c.probe(Addr(0)));
        assert_eq!(c.stats().accesses(), 1, "flush preserves statistics");
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn flush_reports_dirty_victims() {
        // Regression test: flush used to drop dirty lines silently, losing
        // the write-back traffic they represent.
        let mut c = small();
        c.access(Addr(0), AccessKind::Write); // line 0, set 0 — dirty
        c.access(Addr(64), AccessKind::Read); // line 1, set 1 — clean
        c.access(Addr(192), AccessKind::Write); // line 3, set 1 — dirty
        let victims = c.flush();
        assert_eq!(
            victims,
            vec![Addr(0), Addr(192)],
            "dirty lines only, in order"
        );
        assert_eq!(c.stats().writebacks, 2);
        // A second flush finds nothing.
        assert!(c.flush().is_empty());
        assert_eq!(c.stats().writebacks, 2);
    }

    #[test]
    fn flush_matches_invalidate_accounting() {
        let mut a = small();
        let mut b = small();
        for cache in [&mut a, &mut b] {
            cache.access(Addr(0), AccessKind::Write);
            cache.access(Addr(192), AccessKind::Write);
        }
        let flushed = a.flush();
        let mut invalidated: Vec<Addr> = [Addr(0), Addr(192)]
            .iter()
            .filter_map(|&x| b.invalidate(x))
            .collect();
        invalidated.sort_unstable();
        assert_eq!(flushed, invalidated);
        assert_eq!(a.stats().writebacks, b.stats().writebacks);
    }

    #[test]
    fn access_repeated_is_state_equivalent_to_sequential_accesses() {
        // Exercise hit-first, miss-first, and dirty-eviction-first starts,
        // with interleaved single accesses before/after, and require the
        // *entire* cache state (tags, dirty bits, exact LRU stamps, tick,
        // stats) to match the sequential reference.
        for warmup in [&[][..], &[Addr(0)][..], &[Addr(0), Addr(128)][..]] {
            for kind in [AccessKind::Read, AccessKind::Write] {
                for repeats in [1u64, 2, 7] {
                    let mut batched = small();
                    let mut reference = small();
                    for &w in warmup {
                        batched.access(w, AccessKind::Write);
                        reference.access(w, AccessKind::Write);
                    }
                    let got = batched.access_repeated(Addr(256), kind, repeats);
                    let want = reference.access(Addr(256), kind);
                    for _ in 1..repeats {
                        assert!(reference.access(Addr(256), kind).is_hit());
                    }
                    assert_eq!(got, want, "first outcome (repeats={repeats})");
                    // Follow-up accesses must behave identically too.
                    assert_eq!(
                        batched.access(Addr(384), AccessKind::Read),
                        reference.access(Addr(384), AccessKind::Read)
                    );
                    assert_eq!(
                        format!("{batched:?}"),
                        format!("{reference:?}"),
                        "kind={kind:?} repeats={repeats} warmup={warmup:?}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn access_repeated_rejects_zero() {
        let _ = small().access_repeated(Addr(0), AccessKind::Read, 0);
    }

    #[test]
    fn access_many_is_state_equivalent_to_sequential_accesses() {
        // Same hits/misses/writebacks in the same order, and identical final
        // cache state, versus n separate access() calls.
        for kind in [AccessKind::Read, AccessKind::Write] {
            let mut batched = small();
            let mut reference = small();
            for cache in [&mut batched, &mut reference] {
                cache.access(Addr(0), AccessKind::Write);
                cache.access(Addr(128), AccessKind::Write);
            }
            let mut got = Vec::new();
            batched.access_many(Addr(70), 5, kind, |o| got.push(o));
            let want: Vec<CacheOutcome> = (0..5)
                .map(|i| reference.access(Addr(64 + i * 64), kind))
                .collect();
            assert_eq!(got, want, "kind={kind:?}");
            assert_eq!(format!("{batched:?}"), format!("{reference:?}"));
        }
    }

    #[test]
    fn access_many_of_zero_lines_is_a_noop() {
        let mut c = small();
        c.access_many(Addr(0), 0, AccessKind::Read, |_| panic!("no outcomes"));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn miss_rate() {
        let mut c = small();
        c.access(Addr(0), AccessKind::Read);
        c.access(Addr(0), AccessKind::Read);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small();
        // Fill set 0 beyond capacity; set 1 must be untouched.
        for i in 0..4u64 {
            c.access(Addr(i * 128), AccessKind::Read);
        }
        c.access(Addr(64), AccessKind::Read); // set 1
        assert!(c.probe(Addr(64)));
    }
}
