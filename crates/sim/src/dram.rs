//! The bandwidth-limited memory model.
//!
//! The paper (§V-A): *"To reflect data transfer overheads between NPU and
//! off-chip memory, we use a simple memory bandwidth model, which limits the
//! maximum bandwidth. We assume 100 cycles for DRAM latency."*
//!
//! Bandwidth is expressed as an exact rational (bytes per cycle) so the two
//! NPU configurations are represented without rounding: the Small NPU moves
//! 11 GB/s at 2.75 GHz = 4 B/cycle, the Large NPU 22 GB/s at 1 GHz =
//! 22 B/cycle.

use crate::Cycles;

/// Exact bytes-per-cycle bandwidth as a rational `num/den`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BandwidthModel {
    num: u64,
    den: u64,
}

impl BandwidthModel {
    /// `num/den` bytes per cycle.
    ///
    /// # Panics
    ///
    /// Panics if either component is zero.
    #[must_use]
    pub fn bytes_per_cycle(num: u64, den: u64) -> Self {
        assert!(num > 0 && den > 0, "bandwidth must be positive");
        BandwidthModel { num, den }
    }

    /// Derive bytes-per-cycle from GB/s and GHz (both in integer *tenths*, so
    /// `from_gbps_ghz_tenths(110, 27_5)` is 11 GB/s at 2.75 GHz).
    ///
    /// Prefer [`BandwidthModel::bytes_per_cycle`] when the ratio is already
    /// known exactly.
    #[must_use]
    pub fn from_gbps_ghz_tenths(gbps_tenths: u64, ghz_hundredths: u64) -> Self {
        // (gbps/10) GB/s / (ghz/100) GHz = gbps*10/ghz bytes/cycle
        Self::bytes_per_cycle(gbps_tenths * 10, ghz_hundredths)
    }

    /// Cycles to transfer `bytes` at full bandwidth (rounded up).
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> Cycles {
        // ceil(bytes * den / num)
        let t = (bytes as u128 * self.den as u128).div_ceil(self.num as u128);
        Cycles(t as u64)
    }

    /// Bandwidth as a float, for reporting.
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl std::fmt::Display for BandwidthModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} B/cyc", self.as_f64())
    }
}

/// Fixed-latency DRAM timing plus the memory-level-parallelism factor used to
/// overlap independent metadata misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DramTiming {
    /// Latency of one DRAM access in cycles (paper: 100).
    pub latency: Cycles,
    /// How many independent misses the memory system overlaps. Dependent
    /// fetches (integrity-tree walks) are always serialized; independent
    /// misses from different blocks are divided by this factor.
    pub mlp: u64,
}

impl DramTiming {
    /// The paper's timing: 100-cycle DRAM latency, 4 outstanding misses.
    #[must_use]
    pub fn paper_default() -> Self {
        DramTiming {
            latency: Cycles(100),
            mlp: 4,
        }
    }

    /// Exposed stall time for `pipelined_misses` dependent-per-block but
    /// cross-block-overlappable DRAM accesses (e.g. tree-walk fetches from
    /// different data blocks of a stream) plus `serial_chain` strictly
    /// serialized accesses.
    ///
    /// Pipelined misses overlap up to [`DramTiming::mlp`] deep; each link
    /// of a strictly serial chain pays full latency.
    #[must_use]
    pub fn stall(&self, pipelined_misses: u64, serial_chain: u64) -> Cycles {
        let overlapped = pipelined_misses.div_ceil(self.mlp.max(1));
        self.latency * (overlapped + serial_chain)
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_npu_bandwidth_is_4_bytes_per_cycle() {
        // 11 GB/s at 2.75 GHz.
        let bw = BandwidthModel::from_gbps_ghz_tenths(110, 275);
        assert!((bw.as_f64() - 4.0).abs() < 1e-12);
        assert_eq!(bw.transfer_time(64), Cycles(16));
    }

    #[test]
    fn large_npu_bandwidth_is_22_bytes_per_cycle() {
        // 22 GB/s at 1 GHz.
        let bw = BandwidthModel::from_gbps_ghz_tenths(220, 100);
        assert!((bw.as_f64() - 22.0).abs() < 1e-12);
        assert_eq!(bw.transfer_time(22), Cycles(1));
        assert_eq!(bw.transfer_time(23), Cycles(2));
    }

    #[test]
    fn transfer_time_rounds_up() {
        let bw = BandwidthModel::bytes_per_cycle(4, 1);
        assert_eq!(bw.transfer_time(0), Cycles(0));
        assert_eq!(bw.transfer_time(1), Cycles(1));
        assert_eq!(bw.transfer_time(4), Cycles(1));
        assert_eq!(bw.transfer_time(5), Cycles(2));
    }

    #[test]
    fn fractional_bandwidth() {
        let bw = BandwidthModel::bytes_per_cycle(3, 2); // 1.5 B/cyc
        assert_eq!(bw.transfer_time(3), Cycles(2));
        assert_eq!(bw.transfer_time(4), Cycles(3));
    }

    #[test]
    fn stall_overlaps_independent_misses() {
        let t = DramTiming::paper_default();
        assert_eq!(t.stall(0, 0), Cycles(0));
        assert_eq!(t.stall(4, 0), Cycles(100)); // fully overlapped
        assert_eq!(t.stall(5, 0), Cycles(200));
        assert_eq!(t.stall(0, 3), Cycles(300)); // serial chain never overlaps
        assert_eq!(t.stall(4, 1), Cycles(200));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = BandwidthModel::bytes_per_cycle(0, 1);
    }
}
