//! A tiny deterministic RNG for workload generation.
//!
//! Embedding layers gather pseudo-random rows (token indices); using a fixed,
//! dependency-free generator keeps every experiment bit-reproducible across
//! runs and platforms.

/// SplitMix64 — a small, fast, well-distributed 64-bit generator.
///
/// Not cryptographically secure; used only to synthesize workload index
/// streams.
///
/// # Examples
///
/// ```
/// use tnpu_sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded constructor.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift reduction; bias is negligible for simulation use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(37) < 37);
        }
    }

    #[test]
    fn bounded_values_cover_range() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
