//! A tiny deterministic RNG for workload generation.
//!
//! Embedding layers gather pseudo-random rows (token indices); using a fixed,
//! dependency-free generator keeps every experiment bit-reproducible across
//! runs and platforms.

/// SplitMix64 — a small, fast, well-distributed 64-bit generator.
///
/// Not cryptographically secure; used only to synthesize workload index
/// streams.
///
/// # Examples
///
/// ```
/// use tnpu_sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The SplitMix64 output mix — also used on its own to scramble seed
/// material (labels, stream indices) into well-distributed states.
#[must_use]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Seeded constructor.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive a seed from string labels — the deterministic way experiment
    /// harnesses key RNG streams to *what* is being simulated (experiment,
    /// model, configuration), never to worker identity, so results are
    /// independent of scheduling and thread count.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnpu_sim::rng::SplitMix64;
    /// let a = SplitMix64::seed_from_labels(&["fig14", "alex", "small"]);
    /// let b = SplitMix64::seed_from_labels(&["fig14", "alex", "large"]);
    /// assert_eq!(a, SplitMix64::seed_from_labels(&["fig14", "alex", "small"]));
    /// assert_ne!(a, b);
    /// ```
    #[must_use]
    pub fn seed_from_labels(labels: &[&str]) -> u64 {
        // FNV-1a over the labels (with a separator so ["ab","c"] and
        // ["a","bc"] differ), finished by the SplitMix64 output mix.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for label in labels {
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= 0x1F;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        mix(h)
    }

    /// Independent stream `index` derived from `base`: splits one logical
    /// seed into per-consumer streams (one per NPU of a multi-NPU cell, one
    /// per repetition, ...). Nearby indices map to well-separated states, so
    /// `stream(s, 0)` and `stream(s, 1)` behave as unrelated generators.
    #[must_use]
    pub fn stream(base: u64, index: u64) -> Self {
        let salted = index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        SplitMix64::new(mix(base ^ mix(salted)))
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift reduction; bias is negligible for simulation use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Approximately exponentially distributed value with the given `mean` —
    /// the interarrival draw behind Poisson request processes.
    ///
    /// Integer-only on purpose: floating-point `ln` is allowed to differ
    /// across platforms/toolchains, which would break the byte-identical
    /// stdout contract. Instead `-log2(u)` is evaluated exactly on the
    /// exponent (leading zeros of the raw draw) and piecewise-linearly on a
    /// 16-bit mantissa, then scaled by `ln 2` in fixed point. The linear
    /// segment stays within ~6% of `log2` pointwise and preserves the mean
    /// to well under 1%, which is more than enough for a workload generator.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnpu_sim::rng::SplitMix64;
    /// let mut r = SplitMix64::new(3);
    /// let draws: u64 = (0..4096).map(|_| r.next_exponential(1000)).sum();
    /// let avg = draws / 4096;
    /// assert!((900..1100).contains(&avg), "mean ~1000, got {avg}");
    /// ```
    pub fn next_exponential(&mut self, mean: u64) -> u64 {
        let r = self.next_u64() | 1; // never zero: -log2(0) is infinite
        let lz = u64::from(r.leading_zeros());
        // Top 16 fractional mantissa bits below the leading one.
        let mant = if lz >= 63 { 0 } else { (r << (lz + 1)) >> 48 };
        // -log2(r / 2^64) ≈ lz + (1 - mant/2^16), in Q16.
        let log2_q16 = (lz << 16) + ((1u64 << 16) - mant);
        const LN2_Q16: u64 = 45_426; // round(ln 2 * 2^16)
                                     // mean * log2_q16 * ln2_q16 >> 32; intermediate fits u128.
        ((u128::from(mean) * u128::from(log2_q16) * u128::from(LN2_Q16)) >> 32)
            .min(u128::from(u64::MAX)) as u64
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(37) < 37);
        }
    }

    #[test]
    fn bounded_values_cover_range() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn label_seeds_are_stable_and_order_sensitive() {
        let a = SplitMix64::seed_from_labels(&["exp", "model", "cfg"]);
        assert_eq!(a, SplitMix64::seed_from_labels(&["exp", "model", "cfg"]));
        assert_ne!(a, SplitMix64::seed_from_labels(&["model", "exp", "cfg"]));
        // Separator keeps label boundaries significant.
        assert_ne!(
            SplitMix64::seed_from_labels(&["ab", "c"]),
            SplitMix64::seed_from_labels(&["a", "bc"]),
        );
    }

    #[test]
    fn exponential_draws_are_deterministic_and_spread() {
        let mut a = SplitMix64::new(17);
        let mut b = SplitMix64::new(17);
        let draws: Vec<u64> = (0..64).map(|_| a.next_exponential(500)).collect();
        assert_eq!(
            draws,
            (0..64).map(|_| b.next_exponential(500)).collect::<Vec<_>>()
        );
        // An exponential with mean 500 should produce both short and long
        // gaps; a degenerate sampler would cluster at one value.
        assert!(draws.iter().any(|&d| d < 250));
        assert!(draws.iter().any(|&d| d > 750));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SplitMix64::new(23);
        let n = 1u64 << 14;
        let sum: u64 = (0..n).map(|_| r.next_exponential(10_000)).sum();
        let avg = sum / n;
        assert!(
            (9_500..10_500).contains(&avg),
            "sample mean should be within 5% of 10_000, got {avg}"
        );
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut r = SplitMix64::new(5);
        assert_eq!(r.next_exponential(0), 0);
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let base = SplitMix64::seed_from_labels(&["fig14", "alex", "small"]);
        let mut s0 = SplitMix64::stream(base, 0);
        let mut s0_again = SplitMix64::stream(base, 0);
        let mut s1 = SplitMix64::stream(base, 1);
        for _ in 0..100 {
            assert_eq!(s0.next_u64(), s0_again.next_u64());
        }
        let draws0: Vec<u64> = (0..8)
            .map(|_| SplitMix64::stream(base, 0).next_u64())
            .collect();
        let draws1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_ne!(draws0[0], draws1[0], "streams must differ");
        assert!(draws1.windows(2).all(|w| w[0] != w[1]));
    }
}
