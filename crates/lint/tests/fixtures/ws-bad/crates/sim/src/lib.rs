//! Deliberately bad mini-workspace: the binary exit-code tests point
//! `--root` here and expect `--deny-all` to fail.

use std::collections::HashMap;
use std::time::Instant;

pub fn simulate(events: &[u32]) -> u64 {
    let start = Instant::now();
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for e in events {
        *counts.entry(*e).or_insert(0) += 1;
    }
    let _ = start.elapsed();
    counts.len() as u64
}
