use std::collections::HashMap;

pub fn mean_speedup(by_model: &HashMap<String, f64>) -> f64 {
    let total: f64 = by_model.values().sum();
    total / by_model.len() as f64
}
