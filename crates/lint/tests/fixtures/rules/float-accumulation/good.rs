use std::collections::BTreeMap;

pub fn mean_speedup(by_model: &BTreeMap<String, f64>) -> f64 {
    let mut speedups: Vec<f64> = by_model.iter().map(|(_, v)| *v).collect();
    speedups.sort_by(f64::total_cmp);
    let total: f64 = speedups.iter().sum();
    total / speedups.len() as f64
}

pub fn total_bytes(by_tensor: &BTreeMap<u32, u64>) -> u64 {
    // tnpu-lint: allow(float-accumulation) — u64 sum over a BTreeMap: integral
    // and iterated in key order, so reduction order cannot matter.
    by_tensor.values().sum()
}
