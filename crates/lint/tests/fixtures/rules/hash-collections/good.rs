use std::collections::BTreeMap;

pub fn tally(events: &[u32]) -> BTreeMap<u32, u64> {
    let mut counts = BTreeMap::new();
    for e in events {
        *counts.entry(*e).or_insert(0u64) += 1;
    }
    counts
}

// tnpu-lint: allow(hash-collections) — membership probe only; the set is
// never iterated, so hash order cannot reach any output.
pub fn seen(ids: &std::collections::HashSet<u64>, id: u64) -> bool {
    ids.contains(&id)
}

#[cfg(test)]
mod tests {
    // Test-only code is exempt: nothing here feeds results.
    use std::collections::HashMap;

    #[test]
    fn scratch_map_is_fine() {
        let _ = HashMap::<u32, u32>::new();
    }
}
