use std::collections::HashMap;

pub fn tally(events: &[u32]) -> HashMap<u32, u64> {
    let mut counts = HashMap::new();
    for e in events {
        *counts.entry(*e).or_insert(0u64) += 1;
    }
    counts
}
