pub fn tile_id(index: u64) -> u32 {
    index as u32
}

pub fn set_index(line: u64, sets: u64) -> usize {
    (line % sets) as usize
}
