pub fn tile_id(index: u64) -> u32 {
    u32::try_from(index).expect("tile index fits the 32-bit tile-id space")
}

pub fn widen(x: u32) -> u64 {
    u64::from(x)
}

pub fn widen_cast_is_fine(x: u32) -> u64 {
    x as u64
}
