//! Support file for the semantic fixtures: the raw-DRAM sink, linted
//! under the pretend path `crates/memprot/src/functional/dram.rs`.

pub struct RawDram;

impl RawDram {
    pub fn new() -> Self {
        RawDram
    }

    pub fn read_block(&self, _addr: u64) {}

    pub fn write_block(&mut self, _addr: u64) {}
}
