//! BAD: reaches raw DRAM through two intermediate helpers. The entry
//! function contains no `RawDram` token, so the lexical `dram-bypass`
//! rule cannot tie the access to the entry point — the reachability rule
//! follows the chain and reports the crossing call site.

use tnpu_memprot::functional::dram::RawDram;

pub fn attack_entry() {
    helper_one();
}

fn helper_one() {
    helper_two();
}

fn helper_two() {
    let mut dram = RawDram::new();
    dram.write_block(0);
}
