//! Support file for the semantic fixtures: a protection engine sanctioned
//! to reach the raw-DRAM sink, linted under the pretend path
//! `crates/memprot/src/functional/mod.rs`.

use crate::functional::dram::RawDram;

pub struct TreelessMemory {
    dram: RawDram,
}

impl FunctionalMemory for TreelessMemory {
    fn read_block(&mut self, addr: u64) {
        self.dram.read_block(addr);
        self.verify(addr);
    }
}

impl TreelessMemory {
    pub fn new() -> Self {
        TreelessMemory {
            dram: RawDram::new(),
        }
    }

    fn verify(&self, _addr: u64) {}
}
