//! GOOD: the same access routed through a protection engine. The engine's
//! `.read_block()` shares its name with `RawDram`'s, and the name-matched
//! method edge must not taint the caller — engines are the sanctioned
//! barrier between tenant code and raw DRAM.

use tnpu_memprot::functional::TreelessMemory;

pub fn run() {
    let mut mem = TreelessMemory::new();
    mem.read_block(0);
}
