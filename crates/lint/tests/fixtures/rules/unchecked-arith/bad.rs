pub struct Traffic {
    pub read_bytes: u64,
    pub write_bytes: u64,
}

impl Traffic {
    pub fn total(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    pub fn merge(&mut self, other: &Traffic) {
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
    }

    pub fn scaled(&self, factor: u64) -> u64 {
        self.total() * factor
    }
}
