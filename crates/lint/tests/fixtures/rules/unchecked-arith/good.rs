pub struct Traffic {
    pub read_bytes: u64,
    pub write_bytes: u64,
}

impl Traffic {
    pub fn total(&self) -> u64 {
        self.read_bytes.saturating_add(self.write_bytes)
    }

    pub fn merge(&mut self, other: &Traffic) {
        self.read_bytes = self.read_bytes.saturating_add(other.read_bytes);
        self.write_bytes = self.write_bytes.saturating_add(other.write_bytes);
    }

    pub fn scaled(&self, factor: u64) -> u64 {
        self.total().saturating_mul(factor)
    }

    pub fn slack(&self, budget: u64) -> u64 {
        // Subtraction is outside this rule; saturating_sub is still nicer.
        budget.saturating_sub(self.total())
    }
}
