//! GOOD: every variant is both constructed and consumed by a real handler
//! outside the enum's own impl blocks — an exhaustive match, so adding a
//! variant forces the consumer to decide what it means.

pub enum VersionError {
    Exhausted(u32),
    Stale(u64),
}

impl std::fmt::Display for VersionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VersionError::Exhausted(tensor) => write!(f, "versions exhausted on {tensor}"),
            VersionError::Stale(at) => write!(f, "stale snapshot at {at}"),
        }
    }
}

pub fn bump() -> Result<(), VersionError> {
    Err(VersionError::Exhausted(3))
}

pub fn snapshot() -> VersionError {
    VersionError::Stale(0)
}

pub fn recover(e: &VersionError) -> bool {
    match e {
        VersionError::Exhausted(_) => true,
        VersionError::Stale(_) => false,
    }
}
