//! BAD: `VersionError::Exhausted` is constructed but its only "match" is
//! the enum's own `Display` impl, which matches every variant by
//! construction and therefore does not count as handling — the
//! Exhausted-had-no-consumer bug class.

pub enum VersionError {
    Exhausted(u32),
    Stale(u64),
}

impl std::fmt::Display for VersionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VersionError::Exhausted(tensor) => write!(f, "versions exhausted on {tensor}"),
            VersionError::Stale(at) => write!(f, "stale snapshot at {at}"),
        }
    }
}

pub fn bump() -> Result<(), VersionError> {
    Err(VersionError::Exhausted(3))
}

pub fn snapshot() -> VersionError {
    VersionError::Stale(0)
}

pub fn recover(e: &VersionError) -> bool {
    matches!(e, VersionError::Stale(_))
}
