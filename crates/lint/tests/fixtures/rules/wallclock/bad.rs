use std::time::Instant;

pub fn simulate_layer(work: u64) -> u64 {
    let start = Instant::now();
    let cycles = work * 3;
    let _elapsed = start.elapsed();
    let budget: u64 = std::env::var("SIM_BUDGET").unwrap().parse().unwrap();
    cycles.min(budget)
}
