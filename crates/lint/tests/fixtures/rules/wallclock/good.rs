use std::time::Duration;

pub fn simulate_layer(work: u64) -> u64 {
    work * 3
}

pub fn time_job(job: impl FnOnce() -> u64) -> (u64, Duration) {
    // tnpu-lint: allow(wallclock) — wall time brackets the whole job for a
    // stderr report; the simulation inside observes cycle time only.
    let start = std::time::Instant::now();
    let out = job();
    (out, start.elapsed())
}
