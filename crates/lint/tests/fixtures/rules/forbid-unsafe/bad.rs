//! A crate root without the safety attribute.

pub fn f() -> u32 {
    7
}
