#![forbid(unsafe_code)]
//! A crate root carrying the safety attribute.

pub fn f() -> u32 {
    7
}
