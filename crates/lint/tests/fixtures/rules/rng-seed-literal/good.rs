use tnpu_sim::rng::SplitMix64;

pub fn gather_stream(cell_seed: u64, npu: u64) -> SplitMix64 {
    SplitMix64::new(cell_seed ^ npu.wrapping_mul(0x9E37_79B9))
}

pub fn cell_seed(experiment: &str, model: &str, config: &str) -> u64 {
    SplitMix64::seed_from_labels(&[experiment, model, config])
}
