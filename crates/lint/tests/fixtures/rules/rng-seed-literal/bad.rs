use tnpu_sim::rng::SplitMix64;

pub fn gather_stream() -> SplitMix64 {
    SplitMix64::new(0xDEAD_BEEF)
}
