//! GOOD: the same chain surfaces a typed error instead of panicking, and
//! the one invariant panic left (a fixed-width slice of a fixed-size
//! array) carries a written justification through the allow escape hatch.

pub struct Session;

impl Session {
    pub fn attest(&self) -> Result<u64, String> {
        step_one()
    }
}

fn step_one() -> Result<u64, String> {
    step_two()
}

fn step_two() -> Result<u64, String> {
    let seed = [0u8; 32];
    let mut eight = [0u8; 8];
    // tnpu-lint: allow(panic-path) — `[..8]` of a fixed `[u8; 32]`.
    eight.copy_from_slice(&seed[..8]);
    Ok(u64::from_le_bytes(eight))
}
