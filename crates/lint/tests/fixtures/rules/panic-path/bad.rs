//! BAD: a panic two private calls behind the public `Session` API — the
//! attest-panics-on-dead-context bug class. Neither helper is `pub`, so
//! only reachability ties the `unwrap` back to the API surface.

pub struct Session;

impl Session {
    pub fn attest(&self) {
        step_one();
    }
}

fn step_one() {
    step_two();
}

fn step_two() {
    let state: Option<u32> = None;
    state.unwrap();
}
