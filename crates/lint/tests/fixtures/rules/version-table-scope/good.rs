// tnpu-lint: allow(version-table-scope) — read-only storage measurement on
// a scratch table; no engine ever verifies against it.
pub fn storage(table: &tnpu_core::VersionTable) -> u64 {
    table.storage_bytes()
}

pub fn run(runner: &mut tnpu_core::SecureRunner) {
    // The version manager in crates/core owns all mutation.
    runner.step();
}
