use tnpu_core::VersionTable;

pub fn shadow_versions() -> VersionTable {
    let mut table = VersionTable::new();
    table.register(0);
    table
}
