use tnpu_sim::Addr;

pub fn read(engine: &mut tnpu_memprot::SecurityEngine, addr: Addr) {
    let _ = engine.read_block(addr, 0);
}

#[cfg(test)]
mod tests {
    // Physical-attack modelling belongs in tests: flipping bits on the
    // simulated bus is the threat the engines must detect.
    use tnpu_memprot::functional::RawDram;
    use tnpu_sim::Addr;

    #[test]
    fn tamper() {
        let mut dram = RawDram::new();
        dram.write_block(Addr(0), [0u8; 64]);
        dram.block_mut(Addr(0)).unwrap()[5] ^= 0xff;
    }
}
