use tnpu_memprot::functional::RawDram;
use tnpu_sim::Addr;

pub fn poke(dram: &mut RawDram) {
    if let Some(block) = dram.block_mut(Addr(0)) {
        block[0] ^= 1;
    }
}
