//! The linter's acceptance gates: the real workspace lints clean (including
//! the semantic rules and with no stale allow comments), and the binary's
//! exit codes match its contract (`0` clean / advisory, `1` under
//! `--deny-all` with violations, `2` tool errors).

use std::path::{Path, PathBuf};
use std::process::Command;
use tnpu_lint::config::Config;
use tnpu_lint::{lint_root, validate_config, DriverOptions};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// Mirror the binary's config loading: `lint.toml` at the root if present,
/// compiled-in defaults otherwise.
fn workspace_config(root: &Path) -> Config {
    let path = root.join("lint.toml");
    if path.is_file() {
        let src = std::fs::read_to_string(&path).expect("readable lint.toml");
        Config::parse(&src).expect("valid lint.toml")
    } else {
        Config::default()
    }
}

#[test]
fn the_workspace_lints_clean() {
    let root = workspace_root();
    let config = workspace_config(&root);
    validate_config(&config).expect("config names only known rules and sane patterns");
    let report = lint_root(&root, &config, &DriverOptions::default()).expect("walk succeeds");
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must lint clean; violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unused_allows.is_empty(),
        "every allow comment must still suppress something; stale:\n{}",
        report
            .unused_allows
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn deny_all_exits_zero_on_the_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", workspace_root().to_str().expect("utf-8 path")])
        .args(["--deny-all", "--deny-unused-allows", "--no-cache"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "expected clean workspace, stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn deny_all_exits_nonzero_on_the_bad_workspace() {
    let bad_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws-bad");
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", bad_root.to_str().expect("utf-8 path")])
        .args(["--deny-all", "--no-cache"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "--deny-all must fail the build");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for expected in ["hash-collections", "wallclock", "forbid-unsafe"] {
        assert!(
            stdout.contains(expected),
            "diagnostics must include {expected}, got:\n{stdout}"
        );
    }
    assert!(
        stdout.contains("crates/sim/src/lib.rs:"),
        "diagnostics are file:line-prefixed, got:\n{stdout}"
    );
}

#[test]
fn advisory_mode_reports_but_exits_zero() {
    let bad_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws-bad");
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", bad_root.to_str().expect("utf-8 path")])
        .arg("--no-cache")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "advisory mode never fails the build");
    assert!(
        !String::from_utf8_lossy(&out.stdout).is_empty(),
        "violations are still reported"
    );
}

#[test]
fn list_rules_names_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .arg("--list-rules")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in tnpu_lint::rules::RULES {
        assert!(
            stdout.contains(rule.id),
            "--list-rules must mention {}",
            rule.id
        );
    }
    for rule in tnpu_lint::rules::SEM_RULES {
        assert!(
            stdout.contains(rule.id),
            "--list-rules must mention semantic rule {}",
            rule.id
        );
    }
}

#[test]
fn unknown_rule_in_config_is_a_tool_error() {
    let bad_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws-bad");
    let config = bad_root.join("bad-config.toml");
    std::fs::write(&config, "[rules.not-a-rule]\nenabled = false\n").expect("writable");
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", bad_root.to_str().expect("utf-8 path")])
        .args(["--config", config.to_str().expect("utf-8 path")])
        .arg("--no-cache")
        .output()
        .expect("binary runs");
    std::fs::remove_file(&config).ok();
    assert_eq!(out.status.code(), Some(2), "config errors exit 2");
}

#[test]
fn malformed_scope_pattern_in_config_is_a_tool_error() {
    let bad_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws-bad");
    let config = bad_root.join("bad-pattern-config.toml");
    std::fs::write(
        &config,
        "[rules.wallclock]\ninclude = [\"crates/sim/**\"]\n",
    )
    .expect("writable");
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", bad_root.to_str().expect("utf-8 path")])
        .args(["--config", config.to_str().expect("utf-8 path")])
        .arg("--no-cache")
        .output()
        .expect("binary runs");
    std::fs::remove_file(&config).ok();
    assert_eq!(out.status.code(), Some(2), "glob patterns exit 2");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("glob"),
        "the error explains the problem"
    );
}

#[test]
fn sarif_output_has_the_2_1_0_shape() {
    let bad_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws-bad");
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", bad_root.to_str().expect("utf-8 path")])
        .args(["--format", "sarif", "--deny-all", "--no-cache"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "--deny-all still governs exit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"version\": \"2.1.0\"",
        "\"name\": \"tnpu-lint\"",
        "\"results\": [",
        "\"uriBaseId\": \"%SRCROOT%\"",
        "\"level\": \"error\"",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
}

#[test]
fn baseline_ratchets_known_findings_away() {
    let bad_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws-bad");
    let baseline = std::env::temp_dir().join(format!("tnpu-lint-baseline-{}", std::process::id()));
    let write = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", bad_root.to_str().expect("utf-8 path")])
        .args(["--write-baseline", baseline.to_str().expect("utf-8 path")])
        .arg("--no-cache")
        .output()
        .expect("binary runs");
    assert!(write.status.success(), "--write-baseline exits 0");
    let replay = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", bad_root.to_str().expect("utf-8 path")])
        .args(["--baseline", baseline.to_str().expect("utf-8 path")])
        .args(["--deny-all", "--no-cache"])
        .output()
        .expect("binary runs");
    std::fs::remove_file(&baseline).ok();
    assert!(
        replay.status.success(),
        "all findings baselined, so --deny-all passes; stdout:\n{}",
        String::from_utf8_lossy(&replay.stdout)
    );
    assert!(
        String::from_utf8_lossy(&replay.stdout).is_empty(),
        "baselined findings are not printed"
    );
}

#[test]
fn warm_cached_run_is_byte_identical_to_cold() {
    // Run against the real workspace with a private cache dir: cold, then
    // warm; stdout must match byte for byte and the warm run must reuse
    // every record.
    let root = workspace_root();
    let cache_root =
        std::env::temp_dir().join(format!("tnpu-lint-warm-test-{}", std::process::id()));
    // The binary derives the cache dir from --root, so instead drive the
    // library here with an explicit cache dir.
    let config = workspace_config(&root);
    let opts = DriverOptions {
        threads: 0,
        cache_dir: Some(cache_root.clone()),
    };
    let cold = lint_root(&root, &config, &opts).expect("cold run");
    assert_eq!(cold.stats.cached, 0, "private cache dir starts empty");
    let warm = lint_root(&root, &config, &opts).expect("warm run");
    assert_eq!(warm.stats.cached, warm.stats.files, "warm run is all hits");
    assert_eq!(cold.diagnostics, warm.diagnostics);
    assert_eq!(cold.unused_allows, warm.unused_allows);
    std::fs::remove_dir_all(&cache_root).ok();
}
