//! The linter's acceptance gates: the real workspace lints clean, and the
//! binary's exit codes match its contract (`0` clean / advisory, `1` under
//! `--deny-all` with violations).

use std::path::{Path, PathBuf};
use std::process::Command;
use tnpu_lint::config::Config;
use tnpu_lint::{lint_root, validate_config};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// Mirror the binary's config loading: `lint.toml` at the root if present,
/// compiled-in defaults otherwise.
fn workspace_config(root: &Path) -> Config {
    let path = root.join("lint.toml");
    if path.is_file() {
        let src = std::fs::read_to_string(&path).expect("readable lint.toml");
        Config::parse(&src).expect("valid lint.toml")
    } else {
        Config::default()
    }
}

#[test]
fn the_workspace_lints_clean() {
    let root = workspace_root();
    let config = workspace_config(&root);
    validate_config(&config).expect("config names only known rules");
    let diagnostics = lint_root(&root, &config).expect("walk succeeds");
    assert!(
        diagnostics.is_empty(),
        "the workspace must lint clean; violations:\n{}",
        diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn deny_all_exits_zero_on_the_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", workspace_root().to_str().expect("utf-8 path")])
        .arg("--deny-all")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "expected clean workspace, stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn deny_all_exits_nonzero_on_the_bad_workspace() {
    let bad_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws-bad");
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", bad_root.to_str().expect("utf-8 path")])
        .arg("--deny-all")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "--deny-all must fail the build");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for expected in ["hash-collections", "wallclock", "forbid-unsafe"] {
        assert!(
            stdout.contains(expected),
            "diagnostics must include {expected}, got:\n{stdout}"
        );
    }
    assert!(
        stdout.contains("crates/sim/src/lib.rs:"),
        "diagnostics are file:line-prefixed, got:\n{stdout}"
    );
}

#[test]
fn advisory_mode_reports_but_exits_zero() {
    let bad_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws-bad");
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", bad_root.to_str().expect("utf-8 path")])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "advisory mode never fails the build");
    assert!(
        !String::from_utf8_lossy(&out.stdout).is_empty(),
        "violations are still reported"
    );
}

#[test]
fn list_rules_names_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .arg("--list-rules")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in tnpu_lint::rules::RULES {
        assert!(
            stdout.contains(rule.id),
            "--list-rules must mention {}",
            rule.id
        );
    }
}

#[test]
fn unknown_rule_in_config_is_a_tool_error() {
    let bad_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws-bad");
    let config = bad_root.join("bad-config.toml");
    std::fs::write(&config, "[rules.not-a-rule]\nenabled = false\n").expect("writable");
    let out = Command::new(env!("CARGO_BIN_EXE_tnpu-lint"))
        .args(["--root", bad_root.to_str().expect("utf-8 path")])
        .args(["--config", config.to_str().expect("utf-8 path")])
        .output()
        .expect("binary runs");
    std::fs::remove_file(&config).ok();
    assert_eq!(out.status.code(), Some(2), "config errors exit 2");
}
