//! Fixture-based self-tests: every rule must flag its known-bad snippet and
//! pass its known-good counterpart (which exercises the
//! `// tnpu-lint: allow(...)` escape hatch and `#[cfg(test)]` exemptions).

use std::fs;
use std::path::PathBuf;
use tnpu_lint::config::Config;
use tnpu_lint::{lint_file, lint_sources, Diagnostic};

/// `(rule id, pretend workspace path the fixture is linted as)`.
///
/// The pretend path places each fixture inside the rule's default scope;
/// `unchecked-arith` is file-scoped, so its fixture borrows a real
/// accounting path.
const FIXTURES: &[(&str, &str)] = &[
    ("hash-collections", "crates/sim/src/fixture.rs"),
    ("wallclock", "crates/core/src/fixture.rs"),
    ("rng-seed-literal", "crates/npu/src/fixture.rs"),
    ("narrowing-cast", "crates/npu/src/fixture.rs"),
    ("unchecked-arith", "crates/sim/src/stats.rs"),
    ("float-accumulation", "crates/bench/src/fixture.rs"),
    ("dram-bypass", "crates/npu/src/fixture.rs"),
    ("version-table-scope", "crates/bench/src/fixture.rs"),
    ("forbid-unsafe", "crates/demo/src/lib.rs"),
];

/// `(rule id, pretend workspace path the fixture is linted as)` for the
/// semantic families. Each fixture is linted inside a three-file
/// mini-workspace: the raw-DRAM sink and a protection engine (the
/// `engine-bypass` support files) plus the fixture itself, so call chains
/// have a real sink and barrier to reach.
const SEM_FIXTURES: &[(&str, &str)] = &[
    ("engine-bypass", "crates/sim/src/fixture.rs"),
    ("panic-path", "crates/core/src/fixture.rs"),
    ("error-variant-consumption", "crates/core/src/fixture.rs"),
];

fn sem_lint(rule: &str, path: &str, src: &str) -> Vec<Diagnostic> {
    let dram = fixture("engine-bypass", "dram.rs");
    let engine = fixture("engine-bypass", "engine.rs");
    let sources = [
        ("crates/memprot/src/functional/dram.rs", dram.as_str()),
        ("crates/memprot/src/functional/mod.rs", engine.as_str()),
        (path, src),
    ];
    lint_sources(&sources, &Config::default())
        .into_iter()
        .filter(|d| d.rule == rule)
        .collect()
}

fn fixture(rule: &str, name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/rules")
        .join(rule)
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_rule_has_fixture_coverage() {
    let covered: std::collections::BTreeSet<&str> = FIXTURES
        .iter()
        .chain(SEM_FIXTURES)
        .map(|(rule, _)| *rule)
        .collect();
    let all: std::collections::BTreeSet<&str> = tnpu_lint::rules::RULES
        .iter()
        .map(|r| r.id)
        .chain(tnpu_lint::rules::SEM_RULES.iter().map(|r| r.id))
        .collect();
    assert_eq!(covered, all, "each rule needs a bad/good fixture pair");
}

#[test]
fn bad_sem_fixtures_are_flagged() {
    for (rule, path) in SEM_FIXTURES {
        let src = fixture(rule, "bad.rs");
        let hits = sem_lint(rule, path, &src);
        assert!(
            !hits.is_empty(),
            "{rule}: bad.rs (as {path}) must produce at least one {rule} diagnostic"
        );
    }
}

#[test]
fn good_sem_fixtures_pass() {
    for (rule, path) in SEM_FIXTURES {
        let src = fixture(rule, "good.rs");
        let hits = sem_lint(rule, path, &src);
        assert!(
            hits.is_empty(),
            "{rule}: good.rs (as {path}) must be clean, got: {hits:?}"
        );
    }
}

#[test]
fn bypass_fixture_defeats_the_lexical_rule_but_not_the_semantic_one() {
    // The acceptance case: the entry function launders the access through
    // two helpers, so no `RawDram` token appears in it — the lexical rule
    // can only point at the token lines, while the reachability rule
    // reports the crossing at the entry's call site with a witness chain.
    let src = fixture("engine-bypass", "bad.rs");
    let hits = sem_lint("engine-bypass", "crates/sim/src/fixture.rs", &src);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(
        hits[0].message.contains("helper_two") && hits[0].message.contains("RawDram"),
        "witness chain names the laundering helpers: {}",
        hits[0].message
    );
}

#[test]
fn bad_fixtures_are_flagged() {
    let config = Config::default();
    for (rule, path) in FIXTURES {
        let src = fixture(rule, "bad.rs");
        let hits: Vec<_> = lint_file(path, &src, &config)
            .into_iter()
            .filter(|d| d.rule == *rule)
            .collect();
        assert!(
            !hits.is_empty(),
            "{rule}: bad.rs (as {path}) must produce at least one {rule} diagnostic"
        );
    }
}

#[test]
fn good_fixtures_pass() {
    let config = Config::default();
    for (rule, path) in FIXTURES {
        let src = fixture(rule, "good.rs");
        let hits: Vec<_> = lint_file(path, &src, &config)
            .into_iter()
            .filter(|d| d.rule == *rule)
            .collect();
        assert!(
            hits.is_empty(),
            "{rule}: good.rs (as {path}) must be clean, got: {hits:?}"
        );
    }
}

#[test]
fn bad_fixtures_escape_when_out_of_scope() {
    // The same bad snippets are fine where the rule does not apply: scope
    // is part of each rule's contract, not an accident of the walker.
    let config = Config::default();
    let src = fixture("hash-collections", "bad.rs");
    assert!(
        lint_file("tools/src/fixture.rs", &src, &config).is_empty(),
        "hash-collections is scoped to result-feeding crates"
    );
    let src = fixture("wallclock", "bad.rs");
    assert!(
        lint_file("crates/bench/src/fixture.rs", &src, &config)
            .iter()
            .all(|d| d.rule != "wallclock"),
        "wallclock is scoped to simulation crates; bench times jobs legally"
    );
}
