//! Linter configuration: compiled-in defaults plus a `lint.toml` overlay.
//!
//! The defaults encode the workspace policy (which rules apply to which
//! crates); `lint.toml` at the repository root can narrow or widen any
//! rule's scope, disable a rule, or change the walked roots, without
//! rebuilding the tool. Only the TOML subset the config needs is parsed —
//! sections, `key = "string"`, `key = true|false`, and single-line string
//! arrays — because the build container has no registry access and the
//! linter must stay dependency-free.

use std::collections::BTreeMap;

/// Per-rule scope override from `lint.toml`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RuleOverride {
    /// `false` disables the rule entirely.
    pub enabled: Option<bool>,
    /// Replacement include path prefixes (workspace-relative).
    pub include: Option<Vec<String>>,
    /// Replacement exclude path prefixes (workspace-relative).
    pub exclude: Option<Vec<String>>,
}

/// Parsed configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Directories walked for `.rs` files, relative to the workspace root.
    pub roots: Vec<String>,
    /// Path prefixes skipped entirely (fixtures, vendored stubs, ...).
    pub skip: Vec<String>,
    /// Per-rule overrides, keyed by rule id.
    pub rules: BTreeMap<String, RuleOverride>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: ["crates", "src", "tests", "examples"]
                .map(str::to_owned)
                .to_vec(),
            skip: ["crates/lint/tests/fixtures", "target", "vendor"]
                .map(str::to_owned)
                .to_vec(),
            rules: BTreeMap::new(),
        }
    }
}

/// A `lint.toml` parse failure, with its 1-indexed line.
#[derive(Debug)]
pub struct ConfigError {
    /// Offending line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parse a `lint.toml` document over the defaults.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on a line the subset parser cannot understand.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        // Current `[section]`: None = top level, Some(rule) = [rules.rule].
        let mut section: Option<String> = None;
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(err(lineno, "unterminated section header"));
                };
                let name = name.trim();
                if let Some(rule) = name.strip_prefix("rules.") {
                    section = Some(rule.trim().to_owned());
                } else {
                    return Err(err(
                        lineno,
                        "unknown section (only [rules.<id>] is supported)",
                    ));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, "expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            match &section {
                None => match key {
                    "roots" => config.roots = parse_array(value, lineno)?,
                    "skip" => config.skip = parse_array(value, lineno)?,
                    _ => return Err(err(lineno, &format!("unknown top-level key `{key}`"))),
                },
                Some(rule) => {
                    let entry = config.rules.entry(rule.clone()).or_default();
                    match key {
                        "enabled" => entry.enabled = Some(parse_bool(value, lineno)?),
                        "include" => entry.include = Some(parse_array(value, lineno)?),
                        "exclude" => entry.exclude = Some(parse_array(value, lineno)?),
                        _ => return Err(err(lineno, &format!("unknown rule key `{key}`"))),
                    }
                }
            }
        }
        Ok(config)
    }

    /// Render the configuration back to the `lint.toml` subset this module
    /// parses — `Config::parse(&c.to_toml())` reproduces `c` exactly (the
    /// round-trip the config tests pin down).
    #[must_use]
    pub fn to_toml(&self) -> String {
        let array = |items: &[String]| {
            let quoted: Vec<String> = items.iter().map(|i| format!("{i:?}")).collect();
            format!("[{}]", quoted.join(", "))
        };
        let mut out = String::new();
        out += &format!("roots = {}\n", array(&self.roots));
        out += &format!("skip = {}\n", array(&self.skip));
        for (rule, over) in &self.rules {
            out += &format!("\n[rules.{rule}]\n");
            if let Some(enabled) = over.enabled {
                out += &format!("enabled = {enabled}\n");
            }
            if let Some(include) = &over.include {
                out += &format!("include = {}\n", array(include));
            }
            if let Some(exclude) = &over.exclude {
                out += &format!("exclude = {}\n", array(exclude));
            }
        }
        out
    }
}

fn err(line: usize, message: &str) -> ConfigError {
    ConfigError {
        line,
        message: message.to_owned(),
    }
}

/// Drop a trailing `# comment`, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(value: &str, line: usize) -> Result<bool, ConfigError> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(err(line, &format!("expected true/false, got `{value}`"))),
    }
}

/// Parse a single-line `["a", "b"]` string array.
fn parse_array(value: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| err(line, "expected a single-line [\"...\"] array"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| err(line, "array elements must be double-quoted strings"))?;
        out.push(s.to_owned());
    }
    Ok(out)
}

/// Whether `path` (workspace-relative, `/`-separated) is under `prefix`,
/// matching whole components (`crates/sim` covers `crates/sim/src/x.rs`
/// but not `crates/simulator/x.rs`).
#[must_use]
pub fn path_under(path: &str, prefix: &str) -> bool {
    path == prefix
        || path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_config() {
        let c = Config::default();
        assert!(c.roots.contains(&"crates".to_owned()));
        assert!(c.skip.iter().any(|s| s.contains("fixtures")));
    }

    #[test]
    fn parses_sections_and_arrays() {
        let c = Config::parse(
            "# comment\nroots = [\"crates\", \"src\"]\n\n[rules.hash-collections]\nenabled = true\ninclude = [\"crates/sim\"] # trailing\n",
        )
        .unwrap();
        assert_eq!(c.roots, vec!["crates", "src"]);
        let r = &c.rules["hash-collections"];
        assert_eq!(r.enabled, Some(true));
        assert_eq!(r.include.as_deref(), Some(&["crates/sim".to_owned()][..]));
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(Config::parse("bogus = 3\n").is_err());
        assert!(Config::parse("[general]\n").is_err());
    }

    #[test]
    fn config_round_trips_through_to_toml() {
        let mut c = Config::default();
        c.rules.insert(
            "panic-path".to_owned(),
            RuleOverride {
                enabled: Some(true),
                include: None,
                exclude: Some(vec!["crates/core/src/attacks.rs".to_owned()]),
            },
        );
        c.rules.insert(
            "wallclock".to_owned(),
            RuleOverride {
                enabled: Some(false),
                include: Some(vec!["crates/sim".to_owned(), "crates/npu".to_owned()]),
                exclude: None,
            },
        );
        let rendered = c.to_toml();
        let reparsed = Config::parse(&rendered).expect("rendered config parses");
        assert_eq!(
            reparsed, c,
            "parse(to_toml(c)) must reproduce c:\n{rendered}"
        );
    }

    #[test]
    fn path_prefix_matches_components() {
        assert!(path_under("crates/sim/src/rng.rs", "crates/sim"));
        assert!(!path_under("crates/simulator/src/x.rs", "crates/sim"));
        assert!(path_under("crates/sim", "crates/sim"));
    }
}
