#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! `tnpu-lint` — a dependency-free workspace linter for determinism,
//! unit-safety, security-model, and robustness invariants.
//!
//! The paper's core claim (tree-less integrity with software-managed
//! versions) and PR 2's byte-identical-sweep guarantee both rest on
//! invariants `rustc` cannot see: no hash-order iteration into results, no
//! wall clock inside the simulation, no DRAM path around the protection
//! engine, version state owned by one module. This crate machine-checks
//! them. See `LINTS.md` at the repository root for the rule catalogue.
//!
//! Pipeline: [`lexer`] tokenises a file (stripping comments and literal
//! contents, recording `// tnpu-lint: allow(...)` comments and
//! `#[cfg(test)]` regions), [`parser`] builds item-level structure on top
//! of the tokens, [`rules`] pattern-match the token stream per file, and
//! [`symbols`]/[`callgraph`] assemble a workspace-wide call graph for the
//! semantic rule families (engine-bypass reachability, panic-path audit,
//! error-variant consumption). The driver here analyzes files on a worker
//! pool with a content-hash parse cache under `target/tnpu-lint/`, then
//! scopes each finding by path (defaults overridable via `lint.toml`,
//! parsed by [`config`]) and filters through allow comments and test-region
//! exemptions — tracking which allow comments actually fired, so stale
//! justifications can be denied (`--deny-unused-allows`).

pub mod cache;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod symbols;

use config::{path_under, Config};
use parser::ParsedFile;
use rules::RULES;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// Rule id.
    pub rule: &'static str,
    /// Explanation and suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// Line-independent identity used by `--baseline` ratcheting: moving a
    /// finding within a file must not count as a new finding.
    #[must_use]
    pub fn baseline_key(&self) -> String {
        format!("{}: {}: {}", self.path, self.rule, self.message)
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Pseudo-rule id for `--deny-unused-allows` findings.
pub const UNUSED_ALLOW_RULE: &str = "unused-allow";

/// Everything the analysis extracts from one file, independent of
/// configuration — scope filtering, allow filtering, and the semantic
/// rules all run downstream of this, so a cached record stays valid across
/// `lint.toml` edits.
#[derive(Debug, Default)]
pub struct FileRecord {
    /// Item-level parse (functions, calls, enums, uses, path refs).
    pub parsed: ParsedFile,
    /// Lexer side tables (allow comments, comment/attr lines, test
    /// regions); `tokens` is empty — records never carry the token stream.
    pub side: lexer::LexedFile,
    /// Raw lexical findings for *every* rule, pre scope/allow filtering:
    /// `(rule id, line, message)`.
    pub lexical: Vec<(String, u32, String)>,
}

/// One analyzed file.
#[derive(Debug)]
pub struct AnalyzedFile {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// Analysis record (parsed items + raw findings).
    pub record: FileRecord,
}

/// Analyze one file's source: lex, parse, and run every lexical rule.
#[must_use]
pub fn analyze_source(path: &str, src: &str) -> FileRecord {
    let mut lexed = lexer::lex(src);
    let parsed = parser::parse(&lexed);
    let mut lexical = Vec::new();
    for rule in RULES {
        for finding in (rule.check)(&lexed, path) {
            lexical.push((rule.id.to_owned(), finding.line, finding.message));
        }
    }
    lexed.tokens = Vec::new();
    FileRecord {
        parsed,
        side: lexed,
        lexical,
    }
}

/// Reject `lint.toml` overrides naming rules that do not exist (typos would
/// otherwise silently disable nothing), and malformed path patterns in any
/// scope list (a glob that never matches would silently widen a rule).
///
/// # Errors
///
/// A pointed description of the offending entry.
pub fn validate_config(config: &Config) -> Result<(), String> {
    for id in config.rules.keys() {
        if !rules::any_rule_by_id(id) {
            return Err(format!(
                "lint.toml: unknown rule `{id}` (see --list-rules for the catalogue)"
            ));
        }
    }
    for (what, list) in [("roots", &config.roots), ("skip", &config.skip)] {
        for p in list {
            validate_path_pattern(p)
                .map_err(|e| format!("lint.toml: bad `{what}` entry `{p}`: {e}"))?;
        }
    }
    for (id, over) in &config.rules {
        for (what, list) in [("include", &over.include), ("exclude", &over.exclude)] {
            if let Some(list) = list {
                for p in list {
                    validate_path_pattern(p).map_err(|e| {
                        format!("lint.toml: bad `{what}` entry `{p}` for rule `{id}`: {e}")
                    })?;
                }
            }
        }
    }
    Ok(())
}

/// Scope patterns are plain path prefixes matched per component — not
/// globs. Reject anything that can only be a mistake: glob metacharacters
/// (which `path_under` would match literally, i.e. never), backslashes,
/// absolute or `.`-relative paths, and empty components.
fn validate_path_pattern(p: &str) -> Result<(), String> {
    if p.is_empty() {
        return Err("empty pattern".to_owned());
    }
    if let Some(c) = p.chars().find(|c| matches!(c, '*' | '?' | '[' | ']')) {
        return Err(format!(
            "`{c}` is a glob metacharacter, but scopes are literal path \
             prefixes (write `crates/sim`, not `crates/sim/**`)"
        ));
    }
    if p.contains('\\') {
        return Err("use `/` separators".to_owned());
    }
    if p.starts_with('/') || p.ends_with('/') {
        return Err("no leading/trailing `/` (patterns are workspace-relative)".to_owned());
    }
    if p.split('/').any(|c| c == "." || c == "..") {
        return Err("no `.` or `..` components".to_owned());
    }
    Ok(())
}

/// Whether the rule `id` with the given scope defaults applies to `path`
/// under `config`'s overrides. Shared by lexical and semantic rules.
fn scope_applies(
    config: &Config,
    id: &str,
    default_include: &[&str],
    default_exclude: &[&str],
    exempt_tests: bool,
    path: &str,
) -> bool {
    let over = config.rules.get(id);
    if let Some(o) = over {
        if o.enabled == Some(false) {
            return false;
        }
    }
    let include: Vec<&str> = match over.and_then(|o| o.include.as_ref()) {
        Some(v) => v.iter().map(String::as_str).collect(),
        None => default_include.to_vec(),
    };
    let exclude: Vec<&str> = match over.and_then(|o| o.exclude.as_ref()) {
        Some(v) => v.iter().map(String::as_str).collect(),
        None => default_exclude.to_vec(),
    };
    if !include.is_empty() && !include.iter().any(|p| path_under(path, p)) {
        return false;
    }
    if exclude.iter().any(|p| path_under(path, p)) {
        return false;
    }
    if exempt_tests && in_test_dir(path) {
        return false;
    }
    true
}

/// Whether `path` lives in a directory conventionally holding test,
/// benchmark, example, or fixture code.
pub(crate) fn in_test_dir(path: &str) -> bool {
    path.split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"))
}

/// Driver statistics for `--stats` and the cache-correctness tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DriverStats {
    /// Total files linted.
    pub files: usize,
    /// Files whose records came from the parse cache.
    pub cached: usize,
    /// Files analyzed from source this run.
    pub analyzed: usize,
    /// Effective worker-thread count (after the `0` = auto default).
    pub threads: usize,
}

/// A full lint run's output.
#[derive(Debug)]
pub struct Report {
    /// Violations, sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Allow comments that never suppressed anything ([`UNUSED_ALLOW_RULE`]
    /// pseudo-diagnostics), sorted.
    pub unused_allows: Vec<Diagnostic>,
    /// Cache/parallelism statistics.
    pub stats: DriverStats,
}

/// Apply scoping, test-region, and allow filtering to raw findings and run
/// the semantic rules; track which allow comments fired.
#[must_use]
pub fn report(files: &[AnalyzedFile], config: &Config) -> Report {
    let mut diagnostics = Vec::new();
    // (file index, allow-comment line, rule id) triples that suppressed at
    // least one finding.
    let mut used_allows: BTreeSet<(usize, u32, String)> = BTreeSet::new();

    // Lexical findings.
    for (fi, file) in files.iter().enumerate() {
        for (rule_id, line, message) in &file.record.lexical {
            let Some(rule) = rules::rule_by_id(rule_id) else {
                continue; // stale id: a cache record this old fails to load
            };
            if !scope_applies(
                config,
                rule.id,
                rule.include,
                rule.exclude,
                rule.exempt_tests,
                &file.path,
            ) {
                continue;
            }
            if rule.exempt_tests && file.record.side.in_test_region(*line) {
                continue;
            }
            if let Some(allow_line) = file.record.side.allow_line_for(rule.id, *line) {
                used_allows.insert((fi, allow_line, rule.id.to_owned()));
                continue;
            }
            diagnostics.push(Diagnostic {
                path: file.path.clone(),
                line: *line,
                rule: rule.id,
                message: message.clone(),
            });
        }
    }

    // Semantic findings (workspace-wide analysis).
    let entries: Vec<symbols::FileEntry> = files
        .iter()
        .map(|f| symbols::FileEntry {
            path: f.path.clone(),
            parsed: f.record.parsed.clone(),
            test_regions: f.record.side.test_regions.clone(),
        })
        .collect();
    let ws = symbols::Workspace::build(entries);
    for finding in callgraph::analyze(&ws) {
        let file = &files[finding.file];
        let rule = rules::sem_rule_by_id(finding.rule).expect("semantic rules are registered");
        if !scope_applies(
            config,
            rule.id,
            rule.include,
            rule.exclude,
            rule.exempt_tests,
            &file.path,
        ) {
            continue;
        }
        if rule.exempt_tests && file.record.side.in_test_region(finding.line) {
            continue;
        }
        if let Some(allow_line) = file.record.side.allow_line_for(rule.id, finding.line) {
            used_allows.insert((finding.file, allow_line, rule.id.to_owned()));
            continue;
        }
        diagnostics.push(Diagnostic {
            path: file.path.clone(),
            line: finding.line,
            rule: rule.id,
            message: finding.message,
        });
    }
    diagnostics.sort();
    diagnostics.dedup();

    // Allow comments that never fired. Test dirs and `#[cfg(test)]`
    // regions are exempt: test sources legitimately embed allow comments
    // as *data* for the linter's own fixtures.
    let mut unused_allows = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if in_test_dir(&file.path) {
            continue;
        }
        for (line, rule_ids) in &file.record.side.allows {
            if file.record.side.in_test_region(*line) {
                continue;
            }
            for rule_id in rule_ids {
                if !used_allows.contains(&(fi, *line, rule_id.clone())) {
                    unused_allows.push(Diagnostic {
                        path: file.path.clone(),
                        line: *line,
                        rule: UNUSED_ALLOW_RULE,
                        message: format!(
                            "`allow({rule_id})` never suppressed a finding; the \
                             justification is stale — remove the comment (or fix the \
                             rule id)"
                        ),
                    });
                }
            }
        }
    }
    unused_allows.sort();

    Report {
        diagnostics,
        unused_allows,
        stats: DriverStats {
            files: files.len(),
            ..DriverStats::default()
        },
    }
}

/// Lint a set of in-memory sources as one workspace (lexical + semantic
/// rules, no cache). This is what the fixture tests drive.
#[must_use]
pub fn lint_sources(sources: &[(&str, &str)], config: &Config) -> Vec<Diagnostic> {
    let files: Vec<AnalyzedFile> = sources
        .iter()
        .map(|(path, src)| AnalyzedFile {
            path: (*path).to_owned(),
            record: analyze_source(path, src),
        })
        .collect();
    report(&files, config).diagnostics
}

/// Lint one file's source as if it lived at workspace-relative `path`.
///
/// Semantic rules see a one-file workspace: cross-file reachability cannot
/// fire, which is exactly right for single-file lexical fixtures.
#[must_use]
pub fn lint_file(path: &str, src: &str, config: &Config) -> Vec<Diagnostic> {
    lint_sources(&[(path, src)], config)
}

/// Driver knobs for [`lint_root`].
#[derive(Debug, Default, Clone)]
pub struct DriverOptions {
    /// Worker threads; `0` = one per CPU, capped at 8.
    pub threads: usize,
    /// Parse-cache directory (conventionally `<root>/target/tnpu-lint`);
    /// `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
}

impl DriverOptions {
    /// The conventional cache location for a workspace root.
    #[must_use]
    pub fn with_default_cache(root: &Path) -> Self {
        DriverOptions {
            threads: 0,
            cache_dir: Some(root.join("target/tnpu-lint")),
        }
    }
}

/// Lint every `.rs` file under `root`'s configured roots: parallel
/// analysis with the parse cache, then workspace-wide reporting. Output is
/// deterministic (sorted) regardless of thread count or cache state.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk; unreadable files are
/// errors, not skips, so CI cannot silently under-lint. Cache read/write
/// failures are never errors — the cache is best-effort.
pub fn lint_root(root: &Path, config: &Config, opts: &DriverOptions) -> io::Result<Report> {
    let mut paths = Vec::new();
    for top in &config.roots {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, root, config, &mut paths)?;
        }
    }
    paths.sort();
    paths.dedup();
    let sources: Vec<(String, String)> = paths
        .into_iter()
        .map(|rel| {
            let src = fs::read_to_string(root.join(&rel))?;
            Ok((rel, src))
        })
        .collect::<io::Result<_>>()?;

    if let Some(dir) = &opts.cache_dir {
        fs::create_dir_all(dir).ok();
    }
    let threads = match opts.threads {
        0 => std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(8),
        n => n,
    }
    .min(sources.len().max(1));

    let slots: Mutex<Vec<Option<(FileRecord, bool)>>> =
        Mutex::new((0..sources.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let analyze_one = |idx: usize| {
        let (path, src) = &sources[idx];
        let (record, reused) = match opts
            .cache_dir
            .as_deref()
            .and_then(|dir| cache::load(dir, path, src))
        {
            Some(record) => (record, true),
            None => {
                let record = analyze_source(path, src);
                if let Some(dir) = opts.cache_dir.as_deref() {
                    cache::store(dir, path, src, &record);
                }
                (record, false)
            }
        };
        slots.lock().expect("no poisoned workers")[idx] = Some((record, reused));
    };
    if threads <= 1 {
        for idx in 0..sources.len() {
            analyze_one(idx);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= sources.len() {
                        break;
                    }
                    analyze_one(idx);
                });
            }
        });
    }

    let mut cached = 0usize;
    let files: Vec<AnalyzedFile> = slots
        .into_inner()
        .expect("no poisoned workers")
        .into_iter()
        .zip(&sources)
        .map(|(slot, (path, _))| {
            let (record, reused) = slot.expect("every slot filled");
            if reused {
                cached += 1;
            }
            AnalyzedFile {
                path: path.clone(),
                record,
            }
        })
        .collect();

    let mut out = report(&files, config);
    out.stats = DriverStats {
        files: files.len(),
        cached,
        analyzed: files.len() - cached,
        threads,
    };
    Ok(out)
}

/// Load a baseline file (written by `--write-baseline`) into a multiset of
/// [`Diagnostic::baseline_key`] entries.
#[must_use]
pub fn load_baseline(src: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *out.entry(line.to_owned()).or_insert(0) += 1;
    }
    out
}

/// Drop diagnostics already recorded in the baseline (multiset semantics:
/// two identical findings need two baseline entries; a third is new).
#[must_use]
pub fn apply_baseline(
    diagnostics: Vec<Diagnostic>,
    baseline: &BTreeMap<String, usize>,
) -> Vec<Diagnostic> {
    let mut remaining = baseline.clone();
    diagnostics
        .into_iter()
        .filter(|d| {
            if let Some(n) = remaining.get_mut(&d.baseline_key()) {
                if *n > 0 {
                    *n -= 1;
                    return false;
                }
            }
            true
        })
        .collect()
}

/// Render diagnostics as baseline-file content.
#[must_use]
pub fn render_baseline(diagnostics: &[Diagnostic]) -> String {
    let mut lines: Vec<String> = diagnostics.iter().map(Diagnostic::baseline_key).collect();
    lines.sort();
    let mut out = String::from(
        "# tnpu-lint baseline: known findings the ratchet tolerates (one per\n\
         # line, line numbers ignored). Regenerate with --write-baseline.\n",
    );
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Recursively collect workspace-relative `.rs` paths, honouring the
/// config's skip list and ignoring hidden and build directories.
fn collect_rs_files(
    dir: &Path,
    root: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .expect("walk stays under root")
            .to_string_lossy()
            .replace('\\', "/");
        if config.skip.iter().any(|s| path_under(&rel, s)) {
            continue;
        }
        if path.is_dir() {
            if name == "target" {
                continue;
            }
            collect_rs_files(&path, root, config, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_comment_waives_a_line() {
        let cfg = Config::default();
        let bad = "use std::collections::HashMap;\n";
        assert_eq!(lint_file("crates/sim/src/x.rs", bad, &cfg).len(), 1);
        let allowed =
            "// tnpu-lint: allow(hash-collections) — keys never iterated\nuse std::collections::HashMap;\n";
        assert!(lint_file("crates/sim/src/x.rs", allowed, &cfg).is_empty());
    }

    #[test]
    fn scope_is_path_sensitive() {
        let cfg = Config::default();
        let src = "let t = Instant::now();";
        assert_eq!(lint_file("crates/sim/src/x.rs", src, &cfg).len(), 1);
        // bench is outside the wallclock scope: job timing is allowed there.
        assert!(lint_file("crates/bench/src/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let cfg = Config::default();
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n}\n";
        assert!(lint_file("crates/sim/src/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn test_dirs_are_exempt_for_exempting_rules() {
        let cfg = Config::default();
        let src = "use std::collections::HashMap;";
        assert!(lint_file("crates/sim/tests/x.rs", src, &cfg).is_empty());
        assert!(lint_file("examples/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn config_can_disable_and_rescope() {
        let cfg = Config::parse(
            "[rules.hash-collections]\nenabled = false\n\n[rules.wallclock]\ninclude = [\"crates/bench\"]\n",
        )
        .expect("valid config");
        assert!(lint_file(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap;",
            &cfg
        )
        .is_empty());
        assert_eq!(
            lint_file("crates/bench/src/x.rs", "Instant::now()", &cfg).len(),
            1
        );
    }

    #[test]
    fn unknown_rule_in_config_is_rejected() {
        let cfg = Config::parse("[rules.no-such-rule]\nenabled = false\n").expect("parses");
        assert!(validate_config(&cfg).is_err());
        assert!(validate_config(&Config::default()).is_ok());
    }

    #[test]
    fn semantic_rule_ids_are_valid_config_keys() {
        let cfg = Config::parse("[rules.engine-bypass]\nenabled = false\n").expect("parses");
        assert!(validate_config(&cfg).is_ok());
    }

    #[test]
    fn malformed_path_patterns_are_rejected_with_pointed_messages() {
        for (toml, needle) in [
            (
                "[rules.wallclock]\ninclude = [\"crates/sim/**\"]\n",
                "glob metacharacter",
            ),
            (
                "[rules.wallclock]\nexclude = [\"/crates/sim\"]\n",
                "leading/trailing",
            ),
            ("roots = [\"crates\\\\sim\"]\n", "separators"),
            ("skip = [\"crates/../etc\"]\n", "components"),
            ("roots = [\"\"]\n", "empty"),
        ] {
            let cfg = Config::parse(toml).expect("parses syntactically");
            let err = validate_config(&cfg).expect_err(toml);
            assert!(err.contains(needle), "`{toml}` -> `{err}`");
        }
    }

    #[test]
    fn diagnostics_render_grep_friendly() {
        let d = Diagnostic {
            path: "crates/sim/src/x.rs".to_owned(),
            line: 3,
            rule: "wallclock",
            message: "m".to_owned(),
        };
        assert_eq!(d.to_string(), "crates/sim/src/x.rs:3: wallclock: m");
    }

    #[test]
    fn unused_allows_are_reported_and_used_ones_are_not() {
        let cfg = Config::default();
        let src = "// tnpu-lint: allow(hash-collections) — used below\n\
                   use std::collections::HashMap;\n\
                   // tnpu-lint: allow(wallclock) — nothing here reads a clock\n\
                   let x = 1;\n";
        let files = vec![AnalyzedFile {
            path: "crates/sim/src/x.rs".to_owned(),
            record: analyze_source("crates/sim/src/x.rs", src),
        }];
        let rep = report(&files, &cfg);
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
        assert_eq!(rep.unused_allows.len(), 1, "{:?}", rep.unused_allows);
        assert_eq!(rep.unused_allows[0].line, 3);
        assert!(rep.unused_allows[0].message.contains("wallclock"));
    }

    #[test]
    fn baseline_roundtrip_filters_known_findings_only() {
        let old = vec![
            Diagnostic {
                path: "a.rs".into(),
                line: 1,
                rule: "wallclock",
                message: "m".into(),
            },
            Diagnostic {
                path: "a.rs".into(),
                line: 9,
                rule: "wallclock",
                message: "m".into(),
            },
        ];
        let baseline = load_baseline(&render_baseline(&old));
        // Same two findings on different lines: both ratcheted away.
        let moved: Vec<Diagnostic> = old
            .iter()
            .map(|d| Diagnostic {
                line: d.line + 100,
                ..d.clone()
            })
            .collect();
        assert!(apply_baseline(moved.clone(), &baseline).is_empty());
        // A third identical finding is new.
        let mut three = moved;
        three.push(Diagnostic {
            path: "a.rs".into(),
            line: 500,
            rule: "wallclock",
            message: "m".into(),
        });
        assert_eq!(apply_baseline(three, &baseline).len(), 1);
    }
}
