#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! `tnpu-lint` — a dependency-free workspace linter for determinism,
//! unit-safety, and security-model invariants.
//!
//! The paper's core claim (tree-less integrity with software-managed
//! versions) and PR 2's byte-identical-sweep guarantee both rest on
//! invariants `rustc` cannot see: no hash-order iteration into results, no
//! wall clock inside the simulation, no DRAM path around the protection
//! engine, version state owned by one module. This crate machine-checks
//! them. See `LINTS.md` at the repository root for the rule catalogue.
//!
//! Pipeline: [`lexer`] tokenises a file (stripping comments and literal
//! contents, recording `// tnpu-lint: allow(...)` comments and
//! `#[cfg(test)]` regions), [`rules`] pattern-match the token stream, and
//! the engine here walks the tree, scopes each rule by path (defaults
//! overridable via `lint.toml`, parsed by [`config`]), and filters findings
//! through allow comments and test-region exemptions.

pub mod config;
pub mod lexer;
pub mod rules;

use config::{path_under, Config};
use rules::{Rule, RULES};
use std::fs;
use std::io;
use std::path::Path;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// Rule id.
    pub rule: &'static str,
    /// Explanation and suggested fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Reject `lint.toml` overrides naming rules that do not exist (typos would
/// otherwise silently disable nothing).
///
/// # Errors
///
/// The unknown rule id.
pub fn validate_config(config: &Config) -> Result<(), String> {
    for id in config.rules.keys() {
        if rules::rule_by_id(id).is_none() {
            return Err(format!(
                "lint.toml: unknown rule `{id}` (see --list-rules for the catalogue)"
            ));
        }
    }
    Ok(())
}

/// Whether `rule` applies to `path` under `config`'s scope overrides.
fn rule_applies(rule: &Rule, config: &Config, path: &str) -> bool {
    let over = config.rules.get(rule.id);
    if let Some(o) = over {
        if o.enabled == Some(false) {
            return false;
        }
    }
    let include: Vec<&str> = match over.and_then(|o| o.include.as_ref()) {
        Some(v) => v.iter().map(String::as_str).collect(),
        None => rule.include.to_vec(),
    };
    let exclude: Vec<&str> = match over.and_then(|o| o.exclude.as_ref()) {
        Some(v) => v.iter().map(String::as_str).collect(),
        None => rule.exclude.to_vec(),
    };
    if !include.is_empty() && !include.iter().any(|p| path_under(path, p)) {
        return false;
    }
    if exclude.iter().any(|p| path_under(path, p)) {
        return false;
    }
    if rule.exempt_tests && in_test_dir(path) {
        return false;
    }
    true
}

/// Whether `path` lives in a directory conventionally holding test,
/// benchmark, example, or fixture code.
fn in_test_dir(path: &str) -> bool {
    path.split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"))
}

/// Lint one file's source as if it lived at workspace-relative `path`.
///
/// This is the core entry point; [`lint_root`] maps it over a tree, and the
/// fixture tests call it directly with pretend paths.
#[must_use]
pub fn lint_file(path: &str, src: &str, config: &Config) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let mut out = Vec::new();
    for rule in RULES {
        if !rule_applies(rule, config, path) {
            continue;
        }
        for finding in (rule.check)(&lexed, path) {
            if rule.exempt_tests && lexed.in_test_region(finding.line) {
                continue;
            }
            if lexed.is_allowed(rule.id, finding.line) {
                continue;
            }
            out.push(Diagnostic {
                path: path.to_owned(),
                line: finding.line,
                rule: rule.id,
                message: finding.message,
            });
        }
    }
    out
}

/// Lint every `.rs` file under `root`'s configured roots, in deterministic
/// (sorted-path) order.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk; unreadable files are
/// errors, not skips, so CI cannot silently under-lint.
pub fn lint_root(root: &Path, config: &Config) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for top in &config.roots {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, root, config, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        out.extend(lint_file(&rel, &src, config));
    }
    out.sort();
    Ok(out)
}

/// Recursively collect workspace-relative `.rs` paths, honouring the
/// config's skip list and ignoring hidden and build directories.
fn collect_rs_files(
    dir: &Path,
    root: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .expect("walk stays under root")
            .to_string_lossy()
            .replace('\\', "/");
        if config.skip.iter().any(|s| path_under(&rel, s)) {
            continue;
        }
        if path.is_dir() {
            if name == "target" {
                continue;
            }
            collect_rs_files(&path, root, config, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_comment_waives_a_line() {
        let cfg = Config::default();
        let bad = "use std::collections::HashMap;\n";
        assert_eq!(lint_file("crates/sim/src/x.rs", bad, &cfg).len(), 1);
        let allowed =
            "// tnpu-lint: allow(hash-collections) — keys never iterated\nuse std::collections::HashMap;\n";
        assert!(lint_file("crates/sim/src/x.rs", allowed, &cfg).is_empty());
    }

    #[test]
    fn scope_is_path_sensitive() {
        let cfg = Config::default();
        let src = "let t = Instant::now();";
        assert_eq!(lint_file("crates/sim/src/x.rs", src, &cfg).len(), 1);
        // bench is outside the wallclock scope: job timing is allowed there.
        assert!(lint_file("crates/bench/src/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let cfg = Config::default();
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n}\n";
        assert!(lint_file("crates/sim/src/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn test_dirs_are_exempt_for_exempting_rules() {
        let cfg = Config::default();
        let src = "use std::collections::HashMap;";
        assert!(lint_file("crates/sim/tests/x.rs", src, &cfg).is_empty());
        assert!(lint_file("examples/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn config_can_disable_and_rescope() {
        let cfg = Config::parse(
            "[rules.hash-collections]\nenabled = false\n\n[rules.wallclock]\ninclude = [\"crates/bench\"]\n",
        )
        .expect("valid config");
        assert!(lint_file(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap;",
            &cfg
        )
        .is_empty());
        assert_eq!(
            lint_file("crates/bench/src/x.rs", "Instant::now()", &cfg).len(),
            1
        );
    }

    #[test]
    fn unknown_rule_in_config_is_rejected() {
        let cfg = Config::parse("[rules.no-such-rule]\nenabled = false\n").expect("parses");
        assert!(validate_config(&cfg).is_err());
        assert!(validate_config(&Config::default()).is_ok());
    }

    #[test]
    fn diagnostics_render_grep_friendly() {
        let d = Diagnostic {
            path: "crates/sim/src/x.rs".to_owned(),
            line: 3,
            rule: "wallclock",
            message: "m".to_owned(),
        };
        assert_eq!(d.to_string(), "crates/sim/src/x.rs:3: wallclock: m");
    }
}
