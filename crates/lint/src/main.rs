#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! The `tnpu-lint` binary.
//!
//! ```text
//! tnpu-lint [--root DIR] [--config FILE] [--deny-all] [--list-rules]
//! ```
//!
//! Walks the workspace (default: the current directory), prints one
//! `file:line: rule: message` diagnostic per violation to stdout, and a
//! summary to stderr. Exit codes: `0` clean (or advisory mode), `1`
//! violations under `--deny-all`, `2` usage/config/I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use tnpu_lint::config::Config;
use tnpu_lint::rules::RULES;
use tnpu_lint::{lint_root, validate_config};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut list_rules = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(file) => config_path = Some(PathBuf::from(file)),
                None => return usage_error("--config needs a file"),
            },
            "--deny-all" => deny_all = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!(
                    "tnpu-lint [--root DIR] [--config FILE] [--deny-all] [--list-rules]\n\
                     Workspace linter for determinism, unit-safety, and security invariants.\n\
                     See LINTS.md for the rule catalogue."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in RULES {
            println!("{:<20} [{}] {}", rule.id, rule.family.label(), rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let config_file = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = if config_file.is_file() {
        let src = match std::fs::read_to_string(&config_file) {
            Ok(s) => s,
            Err(e) => return tool_error(&format!("{}: {e}", config_file.display())),
        };
        match Config::parse(&src) {
            Ok(c) => c,
            Err(e) => return tool_error(&e.to_string()),
        }
    } else {
        Config::default()
    };
    if let Err(e) = validate_config(&config) {
        return tool_error(&e);
    }

    let diagnostics = match lint_root(&root, &config) {
        Ok(d) => d,
        Err(e) => return tool_error(&format!("walking {}: {e}", root.display())),
    };

    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        eprintln!("tnpu-lint: clean ({} rules)", RULES.len());
        ExitCode::SUCCESS
    } else {
        let files: std::collections::BTreeSet<&str> =
            diagnostics.iter().map(|d| d.path.as_str()).collect();
        eprintln!(
            "tnpu-lint: {} violation(s) in {} file(s)",
            diagnostics.len(),
            files.len()
        );
        if deny_all {
            ExitCode::FAILURE
        } else {
            eprintln!("tnpu-lint: advisory mode (pass --deny-all to fail the build)");
            ExitCode::SUCCESS
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("tnpu-lint: {message} (try --help)");
    ExitCode::from(2)
}

fn tool_error(message: &str) -> ExitCode {
    eprintln!("tnpu-lint: {message}");
    ExitCode::from(2)
}
