#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! The `tnpu-lint` binary.
//!
//! ```text
//! tnpu-lint [--root DIR] [--config FILE] [--deny-all] [--list-rules]
//!           [--format text|sarif] [--baseline FILE] [--write-baseline FILE]
//!           [--deny-unused-allows] [--threads N] [--no-cache] [--stats]
//! ```
//!
//! Walks the workspace (default: the current directory), prints one
//! `file:line: rule: message` diagnostic per violation to stdout (or a
//! SARIF 2.1.0 log with `--format sarif`), and a summary to stderr. Exit
//! codes: `0` clean (or advisory mode), `1` violations under `--deny-all`
//! (or stale allows under `--deny-unused-allows`), `2` usage/config/I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use tnpu_lint::config::Config;
use tnpu_lint::rules::{RULES, SEM_RULES};
use tnpu_lint::{
    apply_baseline, lint_root, load_baseline, render_baseline, sarif, validate_config,
    DriverOptions,
};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut deny_unused_allows = false;
    let mut list_rules = false;
    let mut format_sarif = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut threads = 0usize;
    let mut use_cache = true;
    let mut stats = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(file) => config_path = Some(PathBuf::from(file)),
                None => return usage_error("--config needs a file"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format_sarif = false,
                Some("sarif") => format_sarif = true,
                Some(other) => {
                    return usage_error(&format!("--format must be text or sarif, not `{other}`"))
                }
                None => return usage_error("--format needs text or sarif"),
            },
            "--baseline" => match args.next() {
                Some(file) => baseline_path = Some(PathBuf::from(file)),
                None => return usage_error("--baseline needs a file"),
            },
            "--write-baseline" => match args.next() {
                Some(file) => write_baseline = Some(PathBuf::from(file)),
                None => return usage_error("--write-baseline needs a file"),
            },
            "--threads" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => threads = n,
                None => return usage_error("--threads needs a number"),
            },
            "--deny-all" => deny_all = true,
            "--deny-unused-allows" => deny_unused_allows = true,
            "--no-cache" => use_cache = false,
            "--stats" => stats = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!(
                    "tnpu-lint [--root DIR] [--config FILE] [--deny-all] [--list-rules]\n\
                     \x20         [--format text|sarif] [--baseline FILE] [--write-baseline FILE]\n\
                     \x20         [--deny-unused-allows] [--threads N] [--no-cache] [--stats]\n\
                     Workspace linter for determinism, unit-safety, security, and\n\
                     robustness invariants. See LINTS.md for the rule catalogue."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in RULES {
            println!("{:<26} [{}] {}", rule.id, rule.family.label(), rule.summary);
        }
        for rule in SEM_RULES {
            println!("{:<26} [{}] {}", rule.id, rule.family.label(), rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let config_file = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = if config_file.is_file() {
        let src = match std::fs::read_to_string(&config_file) {
            Ok(s) => s,
            Err(e) => return tool_error(&format!("{}: {e}", config_file.display())),
        };
        match Config::parse(&src) {
            Ok(c) => c,
            Err(e) => return tool_error(&e.to_string()),
        }
    } else {
        Config::default()
    };
    if let Err(e) = validate_config(&config) {
        return tool_error(&e);
    }

    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(src) => Some(load_baseline(&src)),
            Err(e) => return tool_error(&format!("{}: {e}", path.display())),
        },
        None => None,
    };

    let opts = DriverOptions {
        threads,
        cache_dir: use_cache.then(|| root.join("target/tnpu-lint")),
    };
    let started = Instant::now();
    let report = match lint_root(&root, &config, &opts) {
        Ok(r) => r,
        Err(e) => return tool_error(&format!("walking {}: {e}", root.display())),
    };
    let elapsed = started.elapsed();

    if let Some(path) = &write_baseline {
        let content = render_baseline(&report.diagnostics);
        if let Err(e) = std::fs::write(path, content) {
            return tool_error(&format!("{}: {e}", path.display()));
        }
        eprintln!(
            "tnpu-lint: wrote baseline with {} finding(s) to {}",
            report.diagnostics.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let diagnostics = match &baseline {
        Some(b) => apply_baseline(report.diagnostics, b),
        None => report.diagnostics,
    };
    let mut shown = diagnostics;
    if deny_unused_allows {
        shown.extend(report.unused_allows.iter().cloned());
        shown.sort();
    }

    if format_sarif {
        print!("{}", sarif::render(&shown, deny_all));
    } else {
        for d in &shown {
            println!("{d}");
        }
    }
    if stats {
        eprintln!(
            "tnpu-lint: {} file(s): {} analyzed, {} from cache; {} thread(s); {:.1} ms",
            report.stats.files,
            report.stats.analyzed,
            report.stats.cached,
            report.stats.threads,
            elapsed.as_secs_f64() * 1000.0
        );
    }

    if shown.is_empty() {
        eprintln!("tnpu-lint: clean ({} rules)", RULES.len() + SEM_RULES.len());
        ExitCode::SUCCESS
    } else {
        let files: std::collections::BTreeSet<&str> =
            shown.iter().map(|d| d.path.as_str()).collect();
        eprintln!(
            "tnpu-lint: {} violation(s) in {} file(s)",
            shown.len(),
            files.len()
        );
        let stale_allows =
            deny_unused_allows && shown.iter().any(|d| d.rule == tnpu_lint::UNUSED_ALLOW_RULE);
        if deny_all || stale_allows {
            ExitCode::FAILURE
        } else {
            eprintln!("tnpu-lint: advisory mode (pass --deny-all to fail the build)");
            ExitCode::SUCCESS
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("tnpu-lint: {message} (try --help)");
    ExitCode::from(2)
}

fn tool_error(message: &str) -> ExitCode {
    eprintln!("tnpu-lint: {message}");
    ExitCode::from(2)
}
