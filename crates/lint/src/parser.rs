//! A hand-rolled item-level parser over the [`lexer`](crate::lexer) token
//! stream.
//!
//! Same offline constraint as the lexer: no `syn`, no `proc-macro2` — the
//! build container has no registry access, and the linter must build before
//! anything else. The parser therefore recognises exactly the structure the
//! semantic rules need, and nothing more:
//!
//! * **items** — `mod` nesting, `fn` definitions (free, inherent, trait
//!   impl, trait default), `impl`/`trait` containers, `enum` declarations
//!   with their variants, and `use` declarations including group imports,
//!   glob imports, and `as` renames;
//! * **call expressions** — path calls (`a::b::c(..)`, `helper(..)`,
//!   turbofished), and method calls (`.m(..)`), attributed to the enclosing
//!   function;
//! * **panic sites** — `.unwrap()`, `.expect(..)`, the `panic!` macro
//!   family, and slice-index expressions (`buf[i]` can panic);
//! * **pattern contexts** — `match` arms, `if let`/`while let`, plain `let`
//!   destructuring, `for` patterns, and `matches!`, so an `Enum::Variant`
//!   path can be classified as *consumed* (named in a pattern) versus
//!   *constructed* (named in an expression).
//!
//! The walker is deliberately tolerant: anything it does not understand is
//! skipped token-by-token, so a parse never fails — it just yields fewer
//! facts. The semantic rules are designed so that missing facts make them
//! *quieter*, never wrong about code that parses cleanly.

use crate::lexer::{LexedFile, Tok, TokKind};

/// Everything the semantic analyses need from one source file.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ParsedFile {
    /// Function definitions (including trait-declaration signatures, which
    /// carry no body but still name call-graph nodes).
    pub fns: Vec<FnItem>,
    /// Enum declarations with their variants.
    pub enums: Vec<EnumItem>,
    /// Flattened `use` declarations: one entry per imported leaf.
    pub uses: Vec<UseItem>,
    /// Multi-segment paths named in *pattern* position (match arms,
    /// `if let`, `matches!`, `let` destructuring) — consumption evidence.
    pub pattern_refs: Vec<PathRef>,
    /// Multi-segment paths named in *expression* position that are not
    /// calls (unit variants, struct-literal variants, associated consts) —
    /// construction evidence.
    pub expr_refs: Vec<PathRef>,
}

/// The impl/trait block a function or reference sits in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// The `Self` type: `X` in `impl X`, `impl T for X`, or the trait name
    /// for methods declared/defaulted inside `trait T { .. }`.
    pub type_name: String,
    /// `T` in `impl T for X` (last path segment); `None` for inherent
    /// impls and trait declarations.
    pub trait_name: Option<String>,
}

/// One function definition (or trait-method signature).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Inline-module path within the file (`mod a { mod b { fn f } }` →
    /// `["a", "b"]`); the file's own module path is prepended later by the
    /// symbol table.
    pub module: Vec<String>,
    /// Enclosing impl/trait block, if any.
    pub container: Option<Container>,
    /// Whether the item is `pub` (methods in trait blocks count as pub:
    /// their visibility is the trait's).
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing brace (or of the `;` for signatures).
    pub end_line: u32,
    /// Calls made from the body, in source order.
    pub calls: Vec<CallSite>,
    /// Panic-capable sites in the body, in source order.
    pub panics: Vec<PanicSite>,
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-indexed line of the call.
    pub line: u32,
    /// Path segments as written (`["RawDram", "read_block"]`,
    /// `["helper"]`); method calls carry their single bare name.
    pub path: Vec<String>,
    /// `true` for `.m(..)` receiver calls — the receiver's type is
    /// unknown, so resolution is by name (documented over-approximation).
    pub method: bool,
}

/// What kind of panic a [`PanicSite`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(..)`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro(String),
    /// Slice/array index expression (`buf[i]` panics out of range).
    Index,
}

impl PanicKind {
    /// Short diagnostic label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PanicKind::Unwrap => "`.unwrap()`".to_owned(),
            PanicKind::Expect => "`.expect(..)`".to_owned(),
            PanicKind::Macro(name) => format!("`{name}!`"),
            PanicKind::Index => "slice indexing".to_owned(),
        }
    }
}

/// One panic-capable expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// 1-indexed line.
    pub line: u32,
    /// What can panic here.
    pub kind: PanicKind,
}

/// One enum declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// Inline-module path within the file.
    pub module: Vec<String>,
    /// Line of the `enum` keyword.
    pub line: u32,
    /// `(variant name, line)` pairs in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// One imported leaf of a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseItem {
    /// Inline-module path of the `use` within the file.
    pub module: Vec<String>,
    /// Full imported path (`["tnpu_memprot", "functional", "dram"]`).
    pub path: Vec<String>,
    /// Name the import binds locally (last segment, or the `as` rename).
    /// Empty for glob imports.
    pub alias: String,
    /// `use path::*;`.
    pub glob: bool,
}

/// A multi-segment path reference with enough context to resolve it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathRef {
    /// 1-indexed line.
    pub line: u32,
    /// Segments as written (`["VersionError", "Exhausted"]`).
    pub path: Vec<String>,
    /// Inline-module path of the reference within the file.
    pub module: Vec<String>,
    /// `Self` type of the enclosing impl/trait block, if any — used both
    /// to resolve `Self::Variant` and to exclude an enum's own impl blocks
    /// from consumption evidence.
    pub container: Option<String>,
}

/// Parse a lexed file into items and call/pattern facts.
#[must_use]
pub fn parse(lexed: &LexedFile) -> ParsedFile {
    let mut p = Parser {
        toks: &lexed.tokens,
        i: 0,
        out: ParsedFile::default(),
    };
    let mut module = Vec::new();
    p.items(&mut module, None, false);
    p.out
}

/// Identifiers that can never start an expression path.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "true", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// The panic-macro family `panic-path` audits. `assert!`/`assert_eq!` are
/// deliberately absent: the workspace uses them as *loud invariant checks*
/// the security argument depends on (e.g. `clamp_block` aliasing guards).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
    out: ParsedFile,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.i)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.i + off)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.i);
        self.i += 1;
        t
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(s))
    }

    /// Skip one `#[...]` / `#![...]` attribute if the cursor is on `#`.
    fn skip_attr(&mut self) -> bool {
        if !self.at_punct("#") {
            return false;
        }
        let mut j = self.i + 1;
        if self.toks.get(j).is_some_and(|t| t.is_punct("!")) {
            j += 1;
        }
        if !self.toks.get(j).is_some_and(|t| t.is_punct("[")) {
            self.i += 1; // stray `#`, tolerate
            return true;
        }
        let mut depth = 0i32;
        while let Some(t) = self.toks.get(j) {
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        self.i = (j + 1).min(self.toks.len());
        true
    }

    /// Skip a balanced `<...>` generic group; cursor is on `<`.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth <= 0 {
                    self.i += 1;
                    return;
                }
            } else if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                // Const-generic expressions / fn pointers inside bounds.
                self.skip_balanced();
                continue;
            }
            self.i += 1;
        }
    }

    /// Skip a balanced `(..)`, `[..]`, or `{..}` group; cursor is on the
    /// opener.
    fn skip_balanced(&mut self) {
        let (open, close) = match self.peek() {
            Some(t) if t.is_punct("(") => ("(", ")"),
            Some(t) if t.is_punct("[") => ("[", "]"),
            Some(t) if t.is_punct("{") => ("{", "}"),
            _ => {
                self.i += 1;
                return;
            }
        };
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skip tokens until a `;` at delimiter depth 0 (consumed).
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct(";") {
                self.i += 1;
                return;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                self.skip_balanced();
            } else {
                self.i += 1;
            }
        }
    }

    /// Parse items until EOF or a `}` closing the enclosing block (the `}`
    /// is consumed). `trait_scope` marks impl/trait-decl bodies, where
    /// methods inherit the trait's visibility without a `pub` keyword.
    fn items(
        &mut self,
        module: &mut Vec<String>,
        container: Option<&Container>,
        trait_scope: bool,
    ) {
        loop {
            while self.skip_attr() {}
            let Some(t) = self.peek() else { return };
            if t.is_punct("}") {
                self.i += 1;
                return;
            }
            // Visibility + qualifiers.
            let mut is_pub = trait_scope;
            loop {
                if self.at_ident("pub") {
                    is_pub = true;
                    self.i += 1;
                    if self.at_punct("(") {
                        self.skip_balanced(); // pub(crate) / pub(super)
                    }
                } else if self.at_ident("const")
                    && self.peek_at(1).is_some_and(|t| t.is_ident("fn"))
                    || self.at_ident("async")
                    || self.at_ident("unsafe")
                    || self.at_ident("default")
                {
                    self.i += 1;
                } else if self.at_ident("extern") {
                    self.i += 1;
                    if self.peek().is_some_and(|t| t.kind == TokKind::Str) {
                        self.i += 1;
                    }
                } else {
                    break;
                }
            }
            let Some(t) = self.peek() else { return };
            match t.text.as_str() {
                "mod" if t.kind == TokKind::Ident => {
                    self.i += 1;
                    let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    if self.at_punct("{") {
                        self.i += 1;
                        module.push(name);
                        self.items(module, container, trait_scope);
                        module.pop();
                    } else {
                        self.skip_to_semi();
                    }
                }
                "use" if t.kind == TokKind::Ident => {
                    self.i += 1;
                    let mut prefix = Vec::new();
                    self.use_tree(&mut prefix, module);
                    self.skip_to_semi();
                }
                "fn" if t.kind == TokKind::Ident => {
                    self.parse_fn(module, container, is_pub);
                }
                "enum" if t.kind == TokKind::Ident => {
                    self.parse_enum(module);
                }
                "impl" if t.kind == TokKind::Ident => {
                    self.parse_impl(module);
                }
                "trait" if t.kind == TokKind::Ident => {
                    self.i += 1;
                    let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    // Generics / supertraits / where-clause up to the body.
                    while let Some(t) = self.peek() {
                        if t.is_punct("{") {
                            break;
                        }
                        if t.is_punct("<") {
                            self.skip_angles();
                        } else if t.is_punct(";") {
                            self.i += 1;
                            break;
                        } else {
                            self.i += 1;
                        }
                    }
                    if self.at_punct("{") {
                        self.i += 1;
                        let c = Container {
                            type_name: name,
                            trait_name: None,
                        };
                        self.items(module, Some(&c), true);
                    }
                }
                "struct" | "union" if t.kind == TokKind::Ident => {
                    self.i += 1;
                    while let Some(t) = self.peek() {
                        if t.is_punct(";") {
                            self.i += 1;
                            break;
                        }
                        if t.is_punct("{") {
                            self.skip_balanced();
                            break;
                        }
                        if t.is_punct("<") {
                            self.skip_angles();
                        } else if t.is_punct("(") {
                            self.skip_balanced(); // tuple struct; `;` follows
                        } else {
                            self.i += 1;
                        }
                    }
                }
                "static" | "const" | "type" if t.kind == TokKind::Ident => {
                    self.skip_to_semi();
                }
                "macro_rules" if t.kind == TokKind::Ident => {
                    self.i += 1; // name + `!` + body
                    while let Some(t) = self.peek() {
                        if t.is_punct("{") {
                            self.skip_balanced();
                            break;
                        }
                        if t.is_punct(";") {
                            self.i += 1;
                            break;
                        }
                        self.i += 1;
                    }
                }
                _ => {
                    // Unrecognised — advance one token (tolerant).
                    self.i += 1;
                }
            }
        }
    }

    /// Parse one `use` tree; cursor is after `use` (or inside a group).
    fn use_tree(&mut self, prefix: &mut Vec<String>, module: &[String]) {
        loop {
            let Some(t) = self.peek() else { return };
            if t.is_punct("*") {
                self.i += 1;
                self.out.uses.push(UseItem {
                    module: module.to_vec(),
                    path: prefix.clone(),
                    alias: String::new(),
                    glob: true,
                });
                return;
            }
            if t.is_punct("{") {
                self.i += 1;
                loop {
                    let Some(t) = self.peek() else { return };
                    if t.is_punct("}") {
                        self.i += 1;
                        return;
                    }
                    if t.is_punct(",") {
                        self.i += 1;
                        continue;
                    }
                    let mut sub = prefix.clone();
                    self.use_tree(&mut sub, module);
                }
            }
            if t.kind != TokKind::Ident {
                return;
            }
            if t.text == "self" && !prefix.is_empty() {
                // `use x::y::{self, ..}` — binds the prefix's last segment.
                self.i += 1;
                self.out.uses.push(UseItem {
                    module: module.to_vec(),
                    path: prefix.clone(),
                    alias: prefix.last().cloned().unwrap_or_default(),
                    glob: false,
                });
                return;
            }
            let seg = t.text.clone();
            self.i += 1;
            if self.at_punct("::") {
                prefix.push(seg);
                self.i += 1;
                continue;
            }
            // Leaf: optional `as` rename.
            let alias = if self.at_ident("as") {
                self.i += 1;
                self.bump().map(|t| t.text.clone()).unwrap_or_default()
            } else {
                seg.clone()
            };
            prefix.push(seg);
            self.out.uses.push(UseItem {
                module: module.to_vec(),
                path: prefix.clone(),
                alias,
                glob: false,
            });
            return;
        }
    }

    /// Parse an enum declaration; cursor is on `enum`.
    fn parse_enum(&mut self, module: &[String]) {
        let line = self.peek().map_or(0, |t| t.line);
        self.i += 1;
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        let mut item = EnumItem {
            name,
            module: module.to_vec(),
            line,
            variants: Vec::new(),
        };
        // Generics / where-clause up to the body.
        while let Some(t) = self.peek() {
            if t.is_punct("{") {
                break;
            }
            if t.is_punct("<") {
                self.skip_angles();
            } else if t.is_punct(";") {
                self.i += 1;
                self.out.enums.push(item);
                return;
            } else {
                self.i += 1;
            }
        }
        self.i += 1; // `{`
        loop {
            while self.skip_attr() {}
            let Some(t) = self.peek() else { break };
            if t.is_punct("}") {
                self.i += 1;
                break;
            }
            if t.is_punct(",") {
                self.i += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                item.variants.push((t.text.clone(), t.line));
                self.i += 1;
                // Payload / discriminant.
                match self.peek() {
                    Some(t) if t.is_punct("(") || t.is_punct("{") => self.skip_balanced(),
                    Some(t) if t.is_punct("=") => {
                        while let Some(t) = self.peek() {
                            if t.is_punct(",") || t.is_punct("}") {
                                break;
                            }
                            self.i += 1;
                        }
                    }
                    _ => {}
                }
            } else {
                self.i += 1;
            }
        }
        self.out.enums.push(item);
    }

    /// Parse an impl block; cursor is on `impl`.
    fn parse_impl(&mut self, module: &mut Vec<String>) {
        self.i += 1;
        if self.at_punct("<") {
            self.skip_angles();
        }
        // First path: either the Self type (inherent) or the trait.
        let first = self.impl_path();
        let container = if self.at_ident("for") {
            self.i += 1;
            let ty = self.impl_path();
            Container {
                type_name: ty,
                trait_name: Some(first),
            }
        } else {
            Container {
                type_name: first,
                trait_name: None,
            }
        };
        // Where-clause up to the body.
        while let Some(t) = self.peek() {
            if t.is_punct("{") {
                break;
            }
            if t.is_punct("<") {
                self.skip_angles();
            } else if t.is_punct(";") {
                self.i += 1;
                return;
            } else {
                self.i += 1;
            }
        }
        if self.at_punct("{") {
            self.i += 1;
            let trait_scope = container.trait_name.is_some();
            self.items(module, Some(&container), trait_scope);
        }
    }

    /// Read a type/trait path in an impl header, returning its last
    /// meaningful segment (`tnpu_memprot::ProtectionEngine` → that name;
    /// `SecureRunner<M>` → `SecureRunner`; `&mut X` → `X`).
    fn impl_path(&mut self) -> String {
        let mut last = String::new();
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Ident {
                if t.text == "for" || t.text == "where" {
                    break;
                }
                last = t.text.clone();
                self.i += 1;
                if self.at_punct("<") {
                    self.skip_angles();
                }
                if self.at_punct("::") {
                    self.i += 1;
                    continue;
                }
                break;
            } else if t.is_punct("&") || t.is_punct("<") && last.is_empty() {
                // `impl<T> Trait for &T` / `impl <T as X>::Out` — tolerate.
                self.i += 1;
            } else {
                break;
            }
        }
        last
    }

    /// Parse a fn item; cursor is on `fn`.
    fn parse_fn(&mut self, module: &[String], container: Option<&Container>, is_pub: bool) {
        let line = self.peek().map_or(0, |t| t.line);
        self.i += 1;
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        let mut f = FnItem {
            name,
            module: module.to_vec(),
            container: container.cloned(),
            is_pub,
            line,
            end_line: line,
            calls: Vec::new(),
            panics: Vec::new(),
        };
        if self.at_punct("<") {
            self.skip_angles();
        }
        if self.at_punct("(") {
            self.skip_balanced();
        }
        // Return type / where-clause up to the body or `;`.
        loop {
            let Some(t) = self.peek() else {
                self.out.fns.push(f);
                return;
            };
            if t.is_punct("{") {
                break;
            }
            if t.is_punct(";") {
                f.end_line = t.line;
                self.i += 1;
                self.out.fns.push(f);
                return;
            }
            if t.is_punct("<") {
                self.skip_angles();
            } else if t.is_punct("(") || t.is_punct("[") {
                self.skip_balanced(); // fn-pointer / array types
            } else {
                self.i += 1;
            }
        }
        self.i += 1; // `{`
        self.expr_until_close(&mut f, "}");
        f.end_line = self
            .toks
            .get(self.i.saturating_sub(1))
            .map_or(f.line, |t| t.line);
        self.out.fns.push(f);
    }

    // ------------------------------------------------------------------
    // Expression scanning
    // ------------------------------------------------------------------

    /// Scan expression content until the delimiter closing the group the
    /// cursor is inside (the closer is consumed).
    fn expr_until_close(&mut self, f: &mut FnItem, close: &str) {
        loop {
            let Some(t) = self.peek() else { return };
            if t.is_punct(close) {
                self.i += 1;
                return;
            }
            self.expr_step(f);
        }
    }

    /// Process one expression construct at the cursor: a call path, a
    /// method call, a panic site, a nested delimiter group, `match`,
    /// `let`-pattern, or a single uninteresting token.
    fn expr_step(&mut self, f: &mut FnItem) {
        let Some(t) = self.peek() else { return };
        if self.skip_attr() {
            return;
        }
        match t.kind {
            TokKind::Punct if t.text == "(" || t.text == "{" => {
                self.i += 1;
                let close = if t.text == "(" { ")" } else { "}" };
                self.expr_until_close(f, close);
            }
            TokKind::Punct if t.text == "[" => {
                // Index heuristic: `expr[..]` panics; `[1, 2]` / `&[u8]`
                // / `vec![..]` do not (the previous token tells them
                // apart).
                if self.prev_is_indexable() {
                    f.panics.push(PanicSite {
                        line: t.line,
                        kind: PanicKind::Index,
                    });
                }
                self.i += 1;
                self.expr_until_close(f, "]");
            }
            TokKind::Punct if t.text == "." => {
                self.i += 1;
                let Some(n) = self.peek() else { return };
                if n.kind != TokKind::Ident {
                    return; // tuple field `.0`, `.await` handled below
                }
                let name = n.text.clone();
                let line = n.line;
                self.i += 1;
                if self.at_punct("::") && self.peek_at(1).is_some_and(|t| t.is_punct("<")) {
                    self.i += 1;
                    self.skip_angles(); // turbofish `.collect::<Vec<_>>()`
                }
                if self.at_punct("(") {
                    match name.as_str() {
                        "unwrap" => f.panics.push(PanicSite {
                            line,
                            kind: PanicKind::Unwrap,
                        }),
                        "expect" => f.panics.push(PanicSite {
                            line,
                            kind: PanicKind::Expect,
                        }),
                        _ => f.calls.push(CallSite {
                            line,
                            path: vec![name],
                            method: true,
                        }),
                    }
                }
                // The `(..)` argument group is scanned by the main loop.
            }
            TokKind::Ident => {
                let text = t.text.as_str();
                match text {
                    "match" => {
                        self.i += 1;
                        self.scan_match(f);
                    }
                    "if" | "while" => {
                        self.i += 1;
                        if self.at_ident("let") {
                            self.i += 1;
                            self.scan_pattern_until(f, &["="]);
                        }
                    }
                    "for" => {
                        self.i += 1;
                        self.scan_pattern_until(f, &["in"]);
                    }
                    "let" => {
                        self.i += 1;
                        let stop = self.scan_pattern_until(f, &["=", ";", ":"]);
                        if stop.as_deref() == Some(":") {
                            // Type ascription: skip to `=` or `;`.
                            while let Some(t) = self.peek() {
                                if t.is_punct("=") || t.is_punct(";") {
                                    break;
                                }
                                if t.is_punct("<") {
                                    self.skip_angles();
                                } else if t.is_punct("(") || t.is_punct("[") {
                                    self.skip_balanced();
                                } else {
                                    self.i += 1;
                                }
                            }
                        }
                    }
                    "fn" => {
                        // Nested item fn: parse as its own node.
                        let module = f.module.clone();
                        self.parse_fn(&module, None, false);
                    }
                    _ if KEYWORDS.contains(&text) => {
                        self.i += 1;
                    }
                    "matches" if self.peek_at(1).is_some_and(|t| t.is_punct("!")) => {
                        self.i += 2;
                        self.scan_matches_macro(f);
                    }
                    _ if PANIC_MACROS.contains(&text)
                        && self.peek_at(1).is_some_and(|t| t.is_punct("!")) =>
                    {
                        f.panics.push(PanicSite {
                            line: t.line,
                            kind: PanicKind::Macro(text.to_owned()),
                        });
                        self.i += 2;
                    }
                    _ if self.peek_at(1).is_some_and(|t| t.is_punct("!")) => {
                        // Other macro invocation: skip the name and bang;
                        // the argument tokens scan as plain expression
                        // content (calls inside them are still recorded).
                        self.i += 2;
                    }
                    _ => self.scan_path_expr(f),
                }
            }
            _ => {
                self.i += 1;
            }
        }
    }

    /// Whether the token before the cursor can be an index receiver.
    fn prev_is_indexable(&self) -> bool {
        let Some(p) = self.i.checked_sub(1).and_then(|j| self.toks.get(j)) else {
            return false;
        };
        match p.kind {
            TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
            TokKind::Punct => p.text == ")" || p.text == "]",
            _ => false,
        }
    }

    /// Collect an expression path starting at a non-keyword ident and
    /// classify it: call, or multi-segment reference.
    fn scan_path_expr(&mut self, f: &mut FnItem) {
        let line = self.peek().map_or(0, |t| t.line);
        let mut path = Vec::new();
        while let Some(t) = self.peek() {
            if t.kind != TokKind::Ident {
                break;
            }
            path.push(t.text.clone());
            self.i += 1;
            if self.at_punct("::") {
                if self.peek_at(1).is_some_and(|t| t.is_punct("<")) {
                    self.i += 1;
                    self.skip_angles(); // turbofish
                    break;
                }
                if self.peek_at(1).is_some_and(|t| t.kind == TokKind::Ident) {
                    self.i += 1;
                    continue;
                }
            }
            break;
        }
        if path.is_empty() {
            self.i += 1;
            return;
        }
        if self.at_punct("(") {
            f.calls.push(CallSite {
                line,
                path,
                method: false,
            });
            // Argument group scanned by the main loop.
        } else if path.len() >= 2 {
            self.out.expr_refs.push(PathRef {
                line,
                path,
                module: f.module.clone(),
                container: f.container.as_ref().map(|c| c.type_name.clone()),
            });
        }
    }

    /// Scan a `match`: head expression, then the arm list.
    fn scan_match(&mut self, f: &mut FnItem) {
        // Head: expression until a `{` at this level (delimiters recurse,
        // so the body brace is the first `{` the loop sees directly).
        loop {
            let Some(t) = self.peek() else { return };
            if t.is_punct("{") {
                self.i += 1;
                break;
            }
            self.expr_step(f);
        }
        // Arms.
        loop {
            while self.skip_attr() {}
            let Some(t) = self.peek() else { return };
            if t.is_punct("}") {
                self.i += 1;
                return;
            }
            if t.is_punct(",") {
                self.i += 1;
                continue;
            }
            // Pattern up to `=>` (or an `if` guard, whose condition is
            // expression content).
            let stop = self.scan_pattern_until(f, &["=>", "if"]);
            if stop.as_deref() == Some("if") {
                loop {
                    let Some(t) = self.peek() else { return };
                    if t.is_punct("=>") {
                        self.i += 1;
                        break;
                    }
                    self.expr_step(f);
                }
            }
            // Arm body: a block, or an expression up to `,` / the closing
            // `}` of the match.
            if self.at_punct("{") {
                self.i += 1;
                self.expr_until_close(f, "}");
            } else {
                loop {
                    let Some(t) = self.peek() else { return };
                    if t.is_punct(",") {
                        self.i += 1;
                        break;
                    }
                    if t.is_punct("}") {
                        break; // match's own closer; outer loop consumes
                    }
                    self.expr_step(f);
                }
            }
        }
    }

    /// Scan `matches!(expr, pattern)`: first argument as expression, the
    /// rest as pattern.
    fn scan_matches_macro(&mut self, f: &mut FnItem) {
        if !self.at_punct("(") && !self.at_punct("[") && !self.at_punct("{") {
            return;
        }
        let close = match self.peek().map(|t| t.text.as_str()) {
            Some("(") => ")",
            Some("[") => "]",
            _ => "}",
        };
        self.i += 1;
        // Scrutinee expression until the first `,` at this level.
        loop {
            let Some(t) = self.peek() else { return };
            if t.is_punct(",") {
                self.i += 1;
                break;
            }
            if t.is_punct(close) {
                self.i += 1;
                return; // malformed; tolerate
            }
            self.expr_step(f);
        }
        let stop = self.scan_pattern_until(f, &[close, "if"]);
        if stop.as_deref() == Some("if") {
            // Guard expression until the closer.
            loop {
                let Some(t) = self.peek() else { return };
                if t.is_punct(close) {
                    self.i += 1;
                    return;
                }
                self.expr_step(f);
            }
        }
    }

    /// Scan pattern tokens, recording multi-segment paths as pattern
    /// references, until one of `stops` appears at delimiter depth 0
    /// (idents like `in`/`if` match identifier stops; punct stops match
    /// punctuation). The stop token is consumed; returns which stop fired.
    fn scan_pattern_until(&mut self, f: &FnItem, stops: &[&str]) -> Option<String> {
        let mut depth = 0i32;
        loop {
            let t = self.peek()?;
            if depth == 0 && stops.contains(&t.text.as_str()) {
                let hit = t.text.clone();
                self.i += 1;
                return Some(hit);
            }
            match t.kind {
                TokKind::Punct if matches!(t.text.as_str(), "(" | "[" | "{") => {
                    depth += 1;
                    self.i += 1;
                }
                TokKind::Punct if matches!(t.text.as_str(), ")" | "]" | "}") => {
                    if depth == 0 {
                        return None; // end of enclosing group; not consumed
                    }
                    depth -= 1;
                    self.i += 1;
                }
                TokKind::Punct if t.text == ";" && depth == 0 => {
                    return None; // malformed pattern; tolerate
                }
                TokKind::Ident if !KEYWORDS.contains(&t.text.as_str()) => {
                    let line = t.line;
                    let mut path = vec![t.text.clone()];
                    self.i += 1;
                    while self.at_punct("::")
                        && self.peek_at(1).is_some_and(|t| t.kind == TokKind::Ident)
                    {
                        self.i += 1;
                        path.push(self.bump().map(|t| t.text.clone()).unwrap_or_default());
                    }
                    if path.len() >= 2 {
                        self.out.pattern_refs.push(PathRef {
                            line,
                            path,
                            module: f.module.clone(),
                            container: f.container.as_ref().map(|c| c.type_name.clone()),
                        });
                    }
                }
                _ => {
                    self.i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not parsed: {:?}", p.fns))
    }

    #[test]
    fn fns_modules_and_calls() {
        let p = parse_src(
            "mod outer {\n  pub mod inner {\n    pub fn helper(x: u64) -> u64 { deeper(x) }\n    fn deeper(x: u64) -> u64 { x }\n  }\n}\nfn top() { outer::inner::helper(3); }\n",
        );
        let helper = fn_named(&p, "helper");
        assert_eq!(helper.module, vec!["outer", "inner"]);
        assert!(helper.is_pub);
        assert_eq!(helper.calls.len(), 1);
        assert_eq!(helper.calls[0].path, vec!["deeper"]);
        let top = fn_named(&p, "top");
        assert!(!top.is_pub);
        assert_eq!(top.calls[0].path, vec!["outer", "inner", "helper"]);
    }

    #[test]
    fn impl_blocks_and_method_calls() {
        let p = parse_src(
            "struct Runner;\nimpl Runner {\n  pub fn go(&mut self) { self.step(); RawDram::new(); }\n}\nimpl Drop for Runner {\n  fn drop(&mut self) {}\n}\n",
        );
        let go = fn_named(&p, "go");
        let c = go.container.as_ref().expect("container");
        assert_eq!(c.type_name, "Runner");
        assert_eq!(c.trait_name, None);
        assert!(go.is_pub);
        let calls: Vec<_> = go
            .calls
            .iter()
            .map(|c| (c.path.clone(), c.method))
            .collect();
        assert_eq!(
            calls,
            vec![
                (vec!["step".to_owned()], true),
                (vec!["RawDram".to_owned(), "new".to_owned()], false)
            ]
        );
        let drop = fn_named(&p, "drop");
        let c = drop.container.as_ref().expect("container");
        assert_eq!(c.type_name, "Runner");
        assert_eq!(c.trait_name.as_deref(), Some("Drop"));
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let p = parse_src(
            "impl<M: FunctionalMemory> SecureRunner<M> {\n  fn tick(&self) {}\n}\nimpl tnpu_memprot::ProtectionEngine for TreelessEngine {\n  fn scheme(&self) {}\n}\n",
        );
        let tick = fn_named(&p, "tick");
        assert_eq!(tick.container.as_ref().unwrap().type_name, "SecureRunner");
        let scheme = fn_named(&p, "scheme");
        let c = scheme.container.as_ref().unwrap();
        assert_eq!(c.type_name, "TreelessEngine");
        assert_eq!(c.trait_name.as_deref(), Some("ProtectionEngine"));
    }

    #[test]
    fn trait_decl_default_methods_belong_to_the_trait() {
        let p = parse_src(
            "pub trait ProtectionEngine: Send {\n  fn read_block(&mut self, a: u64);\n  fn read_run(&mut self, r: Run) { self.read_block(r.base()); }\n}\n",
        );
        let sig = fn_named(&p, "read_block");
        assert_eq!(
            sig.container.as_ref().unwrap().type_name,
            "ProtectionEngine"
        );
        assert!(sig.is_pub, "trait methods inherit the trait's visibility");
        assert!(sig.calls.is_empty());
        let dflt = fn_named(&p, "read_run");
        let calls: Vec<_> = dflt.calls.iter().map(|c| c.path.join("::")).collect();
        assert_eq!(calls, vec!["read_block", "base"]);
        assert!(dflt.calls.iter().all(|c| c.method));
    }

    #[test]
    fn use_trees_with_groups_globs_and_renames() {
        let p = parse_src(
            "use tnpu_memprot::functional::dram as raw;\nuse tnpu_core::{VersionTable, version::VersionError as VErr};\nuse tnpu_sim::*;\nmod m { use super::helper; }\n",
        );
        let find = |alias: &str| {
            p.uses
                .iter()
                .find(|u| u.alias == alias)
                .unwrap_or_else(|| panic!("no alias {alias}: {:?}", p.uses))
        };
        assert_eq!(find("raw").path, vec!["tnpu_memprot", "functional", "dram"]);
        assert_eq!(
            find("VErr").path,
            vec!["tnpu_core", "version", "VersionError"]
        );
        assert_eq!(find("VersionTable").path, vec!["tnpu_core", "VersionTable"]);
        let glob = p.uses.iter().find(|u| u.glob).expect("glob import");
        assert_eq!(glob.path, vec!["tnpu_sim"]);
        assert_eq!(find("helper").module, vec!["m"]);
    }

    #[test]
    fn enums_and_variants() {
        let p = parse_src(
            "pub enum VersionError {\n  UnknownTensor(TensorId),\n  NoSuchTile { tensor: TensorId, tile: u32 },\n  Exhausted(TensorId),\n}\nenum Simple { A, B = 3, C }\n",
        );
        let ve = &p.enums[0];
        assert_eq!(ve.name, "VersionError");
        let names: Vec<_> = ve.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["UnknownTensor", "NoSuchTile", "Exhausted"]);
        let simple = &p.enums[1];
        let names: Vec<_> = simple.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn panic_sites_unwrap_expect_macros_and_indexing() {
        let p = parse_src(
            "fn f(v: &[u8], m: &M) -> u8 {\n  let a = m.get(0).unwrap();\n  let b = m.get(1).expect(\"msg\");\n  if v.is_empty() { panic!(\"empty\"); }\n  let c = v[2];\n  let d = [1u8, 2];\n  let e = &v[..1];\n  a + b + c + d[0] + e[0]\n}\n",
        );
        let f = fn_named(&p, "f");
        let kinds: Vec<_> = f.panics.iter().map(|s| (s.line, s.kind.clone())).collect();
        assert_eq!(
            kinds,
            vec![
                (2, PanicKind::Unwrap),
                (3, PanicKind::Expect),
                (4, PanicKind::Macro("panic".to_owned())),
                (5, PanicKind::Index),
                (7, PanicKind::Index),
                (8, PanicKind::Index),
                (8, PanicKind::Index),
            ]
        );
    }

    #[test]
    fn array_literals_types_and_macros_are_not_indexing() {
        let p = parse_src(
            "fn f() {\n  let a: [u8; 4] = [0; 4];\n  let v = vec![1, 2];\n  let s: &[u8] = &a;\n  let m = Measurement { bytes: [0u8; 32] };\n  g(s, v, m);\n}\n",
        );
        let f = fn_named(&p, "f");
        assert!(
            f.panics.is_empty(),
            "no index panics expected: {:?}",
            f.panics
        );
    }

    #[test]
    fn match_arms_are_pattern_context() {
        let p = parse_src(
            "fn f(e: VersionError) -> u32 {\n  match e {\n    VersionError::Exhausted(t) => handle(t),\n    VersionError::NoSuchTile { tensor, .. } if tensor.0 > guard_fn() => 1,\n    _ => fallback(),\n  }\n}\n",
        );
        let pats: Vec<_> = p.pattern_refs.iter().map(|r| r.path.join("::")).collect();
        assert_eq!(
            pats,
            vec!["VersionError::Exhausted", "VersionError::NoSuchTile"]
        );
        let f = fn_named(&p, "f");
        let calls: Vec<_> = f.calls.iter().map(|c| c.path.join("::")).collect();
        // handle (arm body), guard_fn (guard), fallback (arm body) are all
        // expression context — and the scrutinee is too.
        assert_eq!(calls, vec!["handle", "guard_fn", "fallback"]);
    }

    #[test]
    fn if_let_while_let_matches_and_let_destructuring() {
        let p = parse_src(
            "fn f(r: Res) {\n  if let Err(RunError::Poisoned) = check(r) { recover(); }\n  while let Some(x) = iter.next() { use_it(x); }\n  let hit = matches!(classify(r), RunError::Finished | RunError::Cpu(_));\n  let Wrapper(inner) = r;\n}\n",
        );
        let pats: Vec<_> = p.pattern_refs.iter().map(|r| r.path.join("::")).collect();
        assert_eq!(
            pats,
            vec!["RunError::Poisoned", "RunError::Finished", "RunError::Cpu"]
        );
        let f = fn_named(&p, "f");
        let calls: Vec<_> = f.calls.iter().map(|c| c.path.join("::")).collect();
        assert!(calls.contains(&"check".to_owned()));
        assert!(calls.contains(&"classify".to_owned()));
        assert!(calls.contains(&"recover".to_owned()));
    }

    #[test]
    fn unit_variant_construction_is_an_expr_ref() {
        let p = parse_src(
            "fn f() -> RunError {\n  log(RunError::Poisoned);\n  VersionError::Exhausted(t);\n  Err(SessionError::DeadContext(id))?;\n  RunError::Finished\n}\n",
        );
        let exprs: Vec<_> = p.expr_refs.iter().map(|r| r.path.join("::")).collect();
        assert!(exprs.contains(&"RunError::Poisoned".to_owned()));
        assert!(exprs.contains(&"RunError::Finished".to_owned()));
        // Tuple-variant constructions surface as calls instead.
        let f = fn_named(&p, "f");
        let calls: Vec<_> = f.calls.iter().map(|c| c.path.join("::")).collect();
        assert!(calls.contains(&"VersionError::Exhausted".to_owned()));
        assert!(calls.contains(&"SessionError::DeadContext".to_owned()));
    }

    #[test]
    fn self_paths_carry_their_container() {
        let p = parse_src("impl RunError {\n  fn poisoned() -> Self { Self::Poisoned }\n}\n");
        let r = &p.expr_refs[0];
        assert_eq!(r.path, vec!["Self", "Poisoned"]);
        assert_eq!(r.container.as_deref(), Some("RunError"));
    }

    #[test]
    fn turbofish_calls_and_nested_fns() {
        let p = parse_src(
            "fn f() {\n  let v = Vec::<u8>::new();\n  let n = usize::try_from(x).expect(\"fits\");\n  fn nested() { inner_call(); }\n}\n",
        );
        let f = fn_named(&p, "f");
        assert!(f
            .calls
            .iter()
            .any(|c| c.path == vec!["usize".to_owned(), "try_from".to_owned()]));
        assert_eq!(f.panics.len(), 1, "the expect: {:?}", f.panics);
        let nested = fn_named(&p, "nested");
        assert_eq!(nested.calls[0].path, vec!["inner_call"]);
    }

    #[test]
    fn match_head_calls_are_recorded() {
        let p = parse_src(
            "fn f(t: T) -> u32 {\n  match self.table.version(t) {\n    Ok(v) => v,\n    Err(e) => match nested(e) { _ => 0 },\n  }\n}\n",
        );
        let f = fn_named(&p, "f");
        let calls: Vec<_> = f.calls.iter().map(|c| c.path.join("::")).collect();
        assert!(calls.contains(&"version".to_owned()), "head: {calls:?}");
        assert!(
            calls.contains(&"nested".to_owned()),
            "nested head: {calls:?}"
        );
    }
}
