//! Content-hash parse cache for the lint driver.
//!
//! A warm `tnpu-lint` run should re-analyze only edited files: the per-file
//! [`FileRecord`] (item-level parse, lexer side tables, and raw pre-filter
//! lexical findings) is serialized to `target/tnpu-lint/<fnv64(path)>.rec`
//! together with a hash of the file's path and content. Records are
//! *configuration-independent* — scoping, allow filtering, and the
//! workspace-wide semantic rules all run downstream of the record — so a
//! `lint.toml` edit never invalidates the cache, only a source edit does.
//!
//! The on-disk format is a versioned, line-based text encoding (one tagged
//! line per item; tab-separated fields). Anything unexpected — wrong format
//! version, hash mismatch, malformed line, or a rule id the current binary
//! does not know — makes the loader return `None` and the driver re-analyze
//! from source, so stale caches can degrade speed but never correctness.

use crate::lexer::LexedFile;
use crate::parser::{
    CallSite, Container, EnumItem, FnItem, PanicKind, PanicSite, ParsedFile, PathRef, UseItem,
};
use crate::rules;
use crate::FileRecord;
use std::fs;
use std::path::{Path, PathBuf};

/// Bump when the record encoding or any rule's message text changes shape;
/// old records then reload as misses instead of mis-parsing.
pub const CACHE_FORMAT: u32 = 1;

/// FNV-1a 64-bit — stable across runs and platforms, unlike `DefaultHasher`.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn content_hash(path: &str, src: &str) -> u64 {
    let mut bytes = Vec::with_capacity(path.len() + 1 + src.len());
    bytes.extend_from_slice(path.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(src.as_bytes());
    fnv64(&bytes)
}

fn record_path(dir: &Path, path: &str) -> PathBuf {
    dir.join(format!("{:016x}.rec", fnv64(path.as_bytes())))
}

/// Load the cached record for `path`, or `None` on any miss or mismatch.
#[must_use]
pub fn load(dir: &Path, path: &str, src: &str) -> Option<FileRecord> {
    let text = fs::read_to_string(record_path(dir, path)).ok()?;
    deserialize(&text, content_hash(path, src))
}

/// Persist the record for `path`. Best-effort: errors are swallowed — a
/// cache write failure must never fail the lint run.
pub fn store(dir: &Path, path: &str, src: &str, record: &FileRecord) {
    let final_path = record_path(dir, path);
    // Unique temp name per process, then rename: concurrent lint runs may
    // race on the same record, but each sees a whole file or none.
    let tmp = dir.join(format!(
        "{:016x}.tmp.{}",
        fnv64(path.as_bytes()),
        std::process::id()
    ));
    if fs::write(&tmp, serialize(record, content_hash(path, src))).is_ok() {
        let _ = fs::rename(&tmp, &final_path);
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            match it.next()? {
                '\\' => out.push('\\'),
                't' => out.push('\t'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Join identifier segments; identifiers never contain `,` so the encoding
/// is unambiguous. Empty list encodes as `-` (not a valid identifier).
fn segs(v: &[String]) -> String {
    if v.is_empty() {
        "-".to_owned()
    } else {
        v.join(",")
    }
}

fn unsegs(s: &str) -> Vec<String> {
    if s == "-" {
        Vec::new()
    } else {
        s.split(',').map(str::to_owned).collect()
    }
}

fn opt(s: Option<&str>) -> &str {
    s.unwrap_or("-")
}

fn unopt(s: &str) -> Option<String> {
    if s == "-" {
        None
    } else {
        Some(s.to_owned())
    }
}

/// Serialize a record. Public for the cache-correctness test, which asserts
/// a round-tripped record re-serializes byte-identically.
#[must_use]
pub fn serialize(record: &FileRecord, hash: u64) -> String {
    use std::fmt::Write as _;
    let mut o = String::new();
    let _ = writeln!(o, "tnpu-lint-cache {CACHE_FORMAT}");
    let _ = writeln!(o, "hash {hash:016x}");
    for f in &record.parsed.fns {
        let (ct, tr) = f.container.as_ref().map_or(("-", None), |c| {
            (c.type_name.as_str(), c.trait_name.as_deref())
        });
        let _ = writeln!(
            o,
            "fn\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            f.name,
            segs(&f.module),
            ct,
            opt(tr),
            u8::from(f.is_pub),
            f.line,
            f.end_line
        );
        for c in &f.calls {
            let _ = writeln!(
                o,
                "c\t{}\t{}\t{}",
                c.line,
                u8::from(c.method),
                segs(&c.path)
            );
        }
        for p in &f.panics {
            let kind = match &p.kind {
                PanicKind::Unwrap => "u".to_owned(),
                PanicKind::Expect => "e".to_owned(),
                PanicKind::Index => "i".to_owned(),
                PanicKind::Macro(name) => format!("m:{name}"),
            };
            let _ = writeln!(o, "p\t{}\t{}", p.line, kind);
        }
    }
    for e in &record.parsed.enums {
        let _ = writeln!(o, "en\t{}\t{}\t{}", e.name, segs(&e.module), e.line);
        for (name, line) in &e.variants {
            let _ = writeln!(o, "va\t{name}\t{line}");
        }
    }
    for u in &record.parsed.uses {
        let _ = writeln!(
            o,
            "us\t{}\t{}\t{}\t{}",
            segs(&u.module),
            segs(&u.path),
            u.alias,
            u8::from(u.glob)
        );
    }
    for (tag, refs) in [
        ("pr", &record.parsed.pattern_refs),
        ("xr", &record.parsed.expr_refs),
    ] {
        for r in refs {
            let _ = writeln!(
                o,
                "{tag}\t{}\t{}\t{}\t{}",
                r.line,
                segs(&r.path),
                segs(&r.module),
                opt(r.container.as_deref())
            );
        }
    }
    for (rule, line, message) in &record.lexical {
        let _ = writeln!(o, "lx\t{rule}\t{line}\t{}", esc(message));
    }
    for (line, ids) in &record.side.allows {
        let ids: Vec<String> = ids.iter().cloned().collect();
        let _ = writeln!(o, "al\t{line}\t{}", segs(&ids));
    }
    for line in &record.side.comment_lines {
        let _ = writeln!(o, "cl\t{line}");
    }
    for line in &record.side.attr_lines {
        let _ = writeln!(o, "at\t{line}");
    }
    for (a, b) in &record.side.test_regions {
        let _ = writeln!(o, "tr\t{a}\t{b}");
    }
    o
}

/// Parse a serialized record, validating format version and content hash.
/// Any irregularity yields `None` (treated as a cache miss).
#[must_use]
pub fn deserialize(text: &str, expect_hash: u64) -> Option<FileRecord> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let version = header.strip_prefix("tnpu-lint-cache ")?;
    if version.parse::<u32>().ok()? != CACHE_FORMAT {
        return None;
    }
    let hash_line = lines.next()?;
    let hash = u64::from_str_radix(hash_line.strip_prefix("hash ")?, 16).ok()?;
    if hash != expect_hash {
        return None;
    }

    let mut parsed = ParsedFile::default();
    let mut side = LexedFile::default();
    let mut lexical = Vec::new();
    for line in lines {
        let mut f = line.split('\t');
        let tag = f.next()?;
        match tag {
            "fn" => {
                let name = f.next()?.to_owned();
                let module = unsegs(f.next()?);
                let type_name = f.next()?;
                let trait_name = unopt(f.next()?);
                let container = if type_name == "-" {
                    None
                } else {
                    Some(Container {
                        type_name: type_name.to_owned(),
                        trait_name,
                    })
                };
                let is_pub = f.next()? == "1";
                let line = f.next()?.parse().ok()?;
                let end_line = f.next()?.parse().ok()?;
                parsed.fns.push(FnItem {
                    name,
                    module,
                    container,
                    is_pub,
                    line,
                    end_line,
                    calls: Vec::new(),
                    panics: Vec::new(),
                });
            }
            "c" => {
                let line = f.next()?.parse().ok()?;
                let method = f.next()? == "1";
                let path = unsegs(f.next()?);
                parsed
                    .fns
                    .last_mut()?
                    .calls
                    .push(CallSite { line, path, method });
            }
            "p" => {
                let line = f.next()?.parse().ok()?;
                let kind = match f.next()? {
                    "u" => PanicKind::Unwrap,
                    "e" => PanicKind::Expect,
                    "i" => PanicKind::Index,
                    k => PanicKind::Macro(k.strip_prefix("m:")?.to_owned()),
                };
                parsed.fns.last_mut()?.panics.push(PanicSite { line, kind });
            }
            "en" => {
                let name = f.next()?.to_owned();
                let module = unsegs(f.next()?);
                let line = f.next()?.parse().ok()?;
                parsed.enums.push(EnumItem {
                    name,
                    module,
                    line,
                    variants: Vec::new(),
                });
            }
            "va" => {
                let name = f.next()?.to_owned();
                let line = f.next()?.parse().ok()?;
                parsed.enums.last_mut()?.variants.push((name, line));
            }
            "us" => {
                parsed.uses.push(UseItem {
                    module: unsegs(f.next()?),
                    path: unsegs(f.next()?),
                    alias: f.next()?.to_owned(),
                    glob: f.next()? == "1",
                });
            }
            "pr" | "xr" => {
                let r = PathRef {
                    line: f.next()?.parse().ok()?,
                    path: unsegs(f.next()?),
                    module: unsegs(f.next()?),
                    container: unopt(f.next()?),
                };
                if tag == "pr" {
                    parsed.pattern_refs.push(r);
                } else {
                    parsed.expr_refs.push(r);
                }
            }
            "lx" => {
                let rule = f.next()?.to_owned();
                // A record written by a binary with different rules is
                // stale even if it parses.
                rules::rule_by_id(&rule)?;
                let line = f.next()?.parse().ok()?;
                let message = unesc(f.next()?)?;
                lexical.push((rule, line, message));
            }
            "al" => {
                let line = f.next()?.parse().ok()?;
                side.allows
                    .insert(line, unsegs(f.next()?).into_iter().collect());
            }
            "cl" => {
                side.comment_lines.insert(f.next()?.parse().ok()?);
            }
            "at" => {
                side.attr_lines.insert(f.next()?.parse().ok()?);
            }
            "tr" => {
                let a = f.next()?.parse().ok()?;
                let b = f.next()?.parse().ok()?;
                side.test_regions.push((a, b));
            }
            _ => return None,
        }
        if f.next().is_some() {
            return None; // trailing fields: not ours
        }
    }
    Some(FileRecord {
        parsed,
        side,
        lexical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_source;

    const SRC: &str = r#"
// tnpu-lint: allow(wallclock) — fixture
use std::collections::HashMap as Map;
pub struct W;
impl W {
    pub fn go(&self, xs: &[u32]) -> u32 {
        helper().unwrap();
        xs[0]
    }
}
fn helper() -> Option<u32> { None }
pub enum E { A, B(u32) }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { panic!("x"); }
}
"#;

    #[test]
    fn roundtrip_preserves_everything() {
        let rec = analyze_source("crates/sim/src/x.rs", SRC);
        let text = serialize(&rec, 42);
        let back = deserialize(&text, 42).expect("roundtrips");
        assert_eq!(back.parsed, rec.parsed);
        assert_eq!(back.lexical, rec.lexical);
        assert_eq!(back.side.allows, rec.side.allows);
        assert_eq!(back.side.comment_lines, rec.side.comment_lines);
        assert_eq!(back.side.attr_lines, rec.side.attr_lines);
        assert_eq!(back.side.test_regions, rec.side.test_regions);
        assert!(back.side.tokens.is_empty());
        // Re-serialization is byte-identical: the encoding is canonical.
        assert_eq!(serialize(&back, 42), text);
    }

    #[test]
    fn hash_or_version_mismatch_is_a_miss() {
        let rec = analyze_source("crates/sim/src/x.rs", SRC);
        let text = serialize(&rec, 42);
        assert!(deserialize(&text, 43).is_none());
        let bumped = text.replacen("tnpu-lint-cache 1", "tnpu-lint-cache 999", 1);
        assert!(deserialize(&bumped, 42).is_none());
    }

    #[test]
    fn malformed_lines_and_unknown_rules_are_misses() {
        let rec = analyze_source("crates/sim/src/x.rs", SRC);
        let mut text = serialize(&rec, 42);
        text.push_str("zz\t1\n");
        assert!(deserialize(&text, 42).is_none());
        let mut text2 = serialize(&rec, 42);
        text2.push_str("lx\tno-such-rule\t3\tmsg\n");
        assert!(deserialize(&text2, 42).is_none());
    }

    #[test]
    fn store_then_load_hits_and_edits_miss() {
        let dir = std::env::temp_dir().join(format!("tnpu-lint-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let rec = analyze_source("crates/sim/src/x.rs", SRC);
        store(&dir, "crates/sim/src/x.rs", SRC, &rec);
        assert!(load(&dir, "crates/sim/src/x.rs", SRC).is_some());
        // Content change invalidates.
        assert!(load(&dir, "crates/sim/src/x.rs", "fn other() {}").is_none());
        // Different path hashes to a different record file.
        assert!(load(&dir, "crates/sim/src/y.rs", SRC).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn message_escaping_roundtrips() {
        assert_eq!(
            unesc(&esc("a\tb\nc\\d\re")).as_deref(),
            Some("a\tb\nc\\d\re")
        );
        assert!(unesc("bad\\q").is_none());
    }
}
