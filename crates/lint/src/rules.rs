//! The domain rules and their token-pattern checks.
//!
//! Three families, mirroring the invariants the workspace depends on:
//!
//! * **determinism** — the PR 2 guarantee that a sweep is byte-identical at
//!   any thread count holds only if nothing order-dependent, clock-dependent,
//!   or environment-dependent reaches a result;
//! * **unit-safety** — cycle and byte accounting must not silently truncate
//!   or wrap;
//! * **security** — the paper's threat model (no DRAM path around the
//!   protection engine, version state owned by the version manager) is a
//!   hardware property in MGX/GuardNN; here only tooling can enforce it.
//!
//! Every rule is a token-pattern scan over [`LexedFile`] — deliberately
//! simple, so the linter stays dependency-free and auditable. Each rule
//! documents its default path scope; `lint.toml` can widen, narrow, or
//! disable any of them, and `// tnpu-lint: allow(rule-id)` on (or directly
//! above) a line waives that line with an in-code justification.

use crate::lexer::{LexedFile, TokKind};

/// One diagnostic produced by a rule, before path/allow filtering.
#[derive(Debug)]
pub struct Finding {
    /// 1-indexed source line.
    pub line: u32,
    /// Human-readable message (what, why, and how to fix or allow).
    pub message: String,
}

/// Rule family, for `--list-rules` and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Byte-identical-sweep hazards.
    Determinism,
    /// Narrowing/overflow hazards in accounting.
    UnitSafety,
    /// Threat-model invariants.
    Security,
    /// Panic/error-handling hazards on the public API surface.
    Robustness,
}

impl Family {
    /// Lower-case label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Family::Determinism => "determinism",
            Family::UnitSafety => "unit-safety",
            Family::Security => "security",
            Family::Robustness => "robustness",
        }
    }
}

/// A lint rule: scope defaults plus a token-pattern check.
pub struct Rule {
    /// Kebab-case id used in diagnostics, `lint.toml`, and allow comments.
    pub id: &'static str,
    /// Rule family.
    pub family: Family,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// Default workspace-relative path prefixes (or exact files) the rule
    /// applies to. Empty = everywhere.
    pub include: &'static [&'static str],
    /// Default path prefixes exempt from the rule.
    pub exclude: &'static [&'static str],
    /// Whether `#[cfg(test)]` regions and `tests/`, `benches/`, `examples/`
    /// directories are exempt.
    pub exempt_tests: bool,
    /// The check itself. Receives the lexed file and its workspace-relative
    /// path; returns raw findings (filtered by the engine afterwards).
    pub check: fn(&LexedFile, &str) -> Vec<Finding>,
}

/// Crates whose computation feeds printed results; the determinism rules
/// default to this scope.
const RESULT_CRATES: &[&str] = &[
    "crates/sim",
    "crates/memprot",
    "crates/npu",
    "crates/core",
    "crates/tee",
    "crates/bench",
    "crates/models",
    "crates/crypto",
    "crates/lint",
    "src",
];

/// Crates simulating hardware: wall clocks and host environment must not
/// influence anything here.
const SIMULATION_CRATES: &[&str] = &["crates/sim", "crates/memprot", "crates/npu", "crates/core"];

/// The cycle/byte accounting modules where bare `+`/`*` are banned in
/// favour of named saturating operations.
const ACCOUNTING_FILES: &[&str] = &[
    "crates/sim/src/cycles.rs",
    "crates/sim/src/stats.rs",
    "crates/npu/src/report.rs",
];

/// All rules, in the order diagnostics list them.
pub const RULES: &[Rule] = &[
    Rule {
        id: "hash-collections",
        family: Family::Determinism,
        summary: "HashMap/HashSet in result-feeding crates (iteration order is nondeterministic)",
        include: RESULT_CRATES,
        exclude: &[],
        exempt_tests: true,
        check: check_hash_collections,
    },
    Rule {
        id: "wallclock",
        family: Family::Determinism,
        summary: "Instant/SystemTime/std::env inside simulation paths",
        include: SIMULATION_CRATES,
        exclude: &[],
        exempt_tests: true,
        check: check_wallclock,
    },
    Rule {
        id: "rng-seed-literal",
        family: Family::Determinism,
        summary: "RNG constructed from a hard-coded literal seed instead of the RunSpec derivation",
        include: RESULT_CRATES,
        exclude: &["crates/sim/src/rng.rs"],
        exempt_tests: true,
        check: check_rng_seed_literal,
    },
    Rule {
        id: "narrowing-cast",
        family: Family::UnitSafety,
        summary: "narrowing `as` cast in cycle/byte code (silent truncation)",
        include: &["crates/sim", "crates/npu"],
        exclude: &[],
        exempt_tests: true,
        check: check_narrowing_cast,
    },
    Rule {
        id: "unchecked-arith",
        family: Family::UnitSafety,
        summary: "bare +/* in accounting modules (overflow wraps in release builds)",
        include: ACCOUNTING_FILES,
        exclude: &[],
        exempt_tests: true,
        check: check_unchecked_arith,
    },
    Rule {
        id: "float-accumulation",
        family: Family::Determinism,
        summary: "float accumulation over map iteration order",
        include: RESULT_CRATES,
        exclude: &[],
        exempt_tests: true,
        check: check_float_accumulation,
    },
    Rule {
        id: "dram-bypass",
        family: Family::Security,
        summary: "direct RawDram access outside the protection engines",
        include: &[],
        exclude: &["crates/memprot"],
        exempt_tests: true,
        check: check_dram_bypass,
    },
    Rule {
        id: "version-table-scope",
        family: Family::Security,
        summary: "VersionTable handled outside the version-manager crate",
        include: &[],
        exclude: &["crates/core"],
        exempt_tests: true,
        check: check_version_table_scope,
    },
    Rule {
        id: "forbid-unsafe",
        family: Family::Security,
        summary: "crate root missing #![forbid(unsafe_code)]",
        include: &[],
        exclude: &[],
        exempt_tests: false,
        check: check_forbid_unsafe,
    },
];

/// A semantic (call-graph) rule: scoping metadata only — the checks run
/// workspace-wide in [`callgraph`](crate::callgraph), because they need
/// every file's parse, not one file's tokens. The include/exclude scope
/// controls where *findings* are reported; evidence (calls, constructions,
/// matches) is always gathered from the whole workspace.
pub struct SemRule {
    /// Kebab-case id used in diagnostics, `lint.toml`, and allow comments.
    pub id: &'static str,
    /// Rule family.
    pub family: Family,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// Default path scope findings are reported in. Empty = everywhere.
    pub include: &'static [&'static str],
    /// Default path prefixes exempt from the rule.
    pub exclude: &'static [&'static str],
    /// Whether test regions/directories are exempt.
    pub exempt_tests: bool,
}

/// The semantic rule families (see `LINTS.md` for the full semantics).
pub const SEM_RULES: &[SemRule] = &[
    SemRule {
        id: "engine-bypass",
        family: Family::Security,
        summary: "call chain from outside crates/memprot reaches functional::dram \
                  without traversing a protection engine",
        include: &[],
        // Code inside memprot is the protection implementation itself;
        // the rule reports the call sites that cross into it.
        exclude: &["crates/memprot"],
        exempt_tests: true,
    },
    SemRule {
        id: "panic-path",
        family: Family::Robustness,
        summary: "unwrap/expect/panic!/indexing reachable from the public \
                  Session/SecureRunner/serving API surface",
        include: &["crates/core", "crates/tee"],
        exclude: &[],
        exempt_tests: true,
    },
    SemRule {
        id: "error-variant-consumption",
        family: Family::Robustness,
        summary: "error-enum variant not both constructed and matched/handled \
                  in non-test code",
        include: &[],
        exclude: &[],
        exempt_tests: true,
    },
];

/// The error enums `error-variant-consumption` audits: the typed-error
/// surfaces recovery and serving dispatch on. A variant of these that is
/// constructed but never matched is dead recovery logic (the PR 6
/// `Exhausted` bug class); one matched but never constructed is a stale
/// handler.
pub const AUDITED_ERROR_ENUMS: &[&str] =
    &["VersionError", "IntegrityError", "SessionError", "RunError"];

/// Look up a rule by id.
#[must_use]
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Look up a semantic rule by id.
#[must_use]
pub fn sem_rule_by_id(id: &str) -> Option<&'static SemRule> {
    SEM_RULES.iter().find(|r| r.id == id)
}

/// Whether `id` names any rule, lexical or semantic.
#[must_use]
pub fn any_rule_by_id(id: &str) -> bool {
    rule_by_id(id).is_some() || sem_rule_by_id(id).is_some()
}

fn check_hash_collections(lexed: &LexedFile, _path: &str) -> Vec<Finding> {
    lexed
        .tokens
        .iter()
        .filter(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
        .map(|t| Finding {
            line: t.line,
            message: format!(
                "{} iterates in a nondeterministic order that can leak into results; \
                 use BTreeMap/BTreeSet or sort before iterating",
                t.text
            ),
        })
        .collect()
}

fn check_wallclock(lexed: &LexedFile, _path: &str) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            out.push(Finding {
                line: t.line,
                message: format!(
                    "{} reads the wall clock inside a simulation path; simulated time \
                     must come from the cycle model, and timing reports must stay on stderr",
                    t.text
                ),
            });
        } else if t.is_ident("env")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct("::") || n.is_punct("!"))
        {
            out.push(Finding {
                line: t.line,
                message: "host environment read inside a simulation path; thread count and \
                          host state must never influence simulated behaviour"
                    .to_owned(),
            });
        }
    }
    out
}

fn check_rng_seed_literal(lexed: &LexedFile, _path: &str) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(4) {
        if toks[i].is_ident("SplitMix64")
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("new")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].kind == TokKind::Int
        {
            out.push(Finding {
                line: toks[i].line,
                message: "RNG seeded from a hard-coded literal; derive the seed from what is \
                          simulated via RunSpec::seed / SplitMix64::seed_from_labels so reruns \
                          and thread counts cannot shift the stream"
                    .to_owned(),
            });
        }
    }
    out
}

/// Integer types an `as` cast may truncate into. `u64`/`u128`/`i64`/`i128`
/// are deliberately absent: casts *up* to them are the common widening idiom.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32"];

fn check_narrowing_cast(lexed: &LexedFile, _path: &str) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].is_ident("as")
            && toks[i + 1].kind == TokKind::Ident
            && NARROW_TYPES.contains(&toks[i + 1].text.as_str())
        {
            out.push(Finding {
                line: toks[i].line,
                message: format!(
                    "`as {}` silently truncates out-of-range values; use \
                     `{}::try_from(..).expect(..)` (or restructure to avoid the narrowing)",
                    toks[i + 1].text,
                    toks[i + 1].text
                ),
            });
        }
    }
    out
}

fn check_unchecked_arith(lexed: &LexedFile, _path: &str) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let compound = t.is_punct("+=") || t.is_punct("*=");
        // A bare `+`/`*` is binary (not deref/reference/unary) when it
        // follows a value-producing token.
        let binary = (t.is_punct("+") || t.is_punct("*"))
            && i > 0
            && (matches!(
                toks[i - 1].kind,
                TokKind::Ident | TokKind::Int | TokKind::Float
            ) || toks[i - 1].is_punct(")")
                || toks[i - 1].is_punct("]"));
        if compound || binary {
            out.push(Finding {
                line: t.line,
                message: format!(
                    "bare `{}` in an accounting module wraps on overflow in release builds; \
                     use saturating_add/saturating_mul (or checked_* when the caller can react)",
                    t.text
                ),
            });
        }
    }
    out
}

fn check_float_accumulation(lexed: &LexedFile, _path: &str) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(2) {
        let map_iter = (toks[i].is_ident("values") || toks[i].is_ident("keys"))
            && toks[i + 1].is_punct("(")
            && toks[i + 2].is_punct(")");
        if !map_iter {
            continue;
        }
        let reduces = toks[i + 3..]
            .iter()
            .take(10)
            .any(|t| t.is_ident("sum") || t.is_ident("fold") || t.is_ident("product"));
        if reduces {
            out.push(Finding {
                line: toks[i].line,
                message: "accumulation over map iteration order; float reduction order changes \
                          the result — collect and sort (or iterate a BTreeMap) first"
                    .to_owned(),
            });
        }
    }
    out
}

fn check_dram_bypass(lexed: &LexedFile, _path: &str) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let raw_dram = t.is_ident("RawDram");
        let dram_path = t.is_ident("functional")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("dram"));
        if raw_dram || dram_path {
            out.push(Finding {
                line: t.line,
                message: "direct DRAM access bypasses the protection engine (threat-model \
                          violation); route reads/writes through SecurityEngine, or keep \
                          physical-attack modelling inside #[cfg(test)]"
                    .to_owned(),
            });
        }
    }
    out
}

fn check_version_table_scope(lexed: &LexedFile, _path: &str) -> Vec<Finding> {
    lexed
        .tokens
        .iter()
        .filter(|t| t.is_ident("VersionTable"))
        .map(|t| Finding {
            line: t.line,
            message: "VersionTable state is owned by the version manager in crates/core; \
                      mutating (or constructing) one elsewhere can fork version history and \
                      reopen the replay window the table exists to close"
                .to_owned(),
        })
        .collect()
}

fn check_forbid_unsafe(lexed: &LexedFile, path: &str) -> Vec<Finding> {
    let crate_root =
        path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"));
    if !crate_root {
        return Vec::new();
    }
    let toks = &lexed.tokens;
    let has_attr = (0..toks.len().saturating_sub(7)).any(|i| {
        toks[i].is_punct("#")
            && toks[i + 1].is_punct("!")
            && toks[i + 2].is_punct("[")
            && toks[i + 3].is_ident("forbid")
            && toks[i + 4].is_punct("(")
            && toks[i + 5].is_ident("unsafe_code")
            && toks[i + 6].is_punct(")")
            && toks[i + 7].is_punct("]")
    });
    if has_attr {
        Vec::new()
    } else {
        vec![Finding {
            line: 1,
            message: "crate root must carry #![forbid(unsafe_code)]: the security argument \
                      assumes no unchecked memory access anywhere in the workspace"
                .to_owned(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: &str, src: &str) -> Vec<Finding> {
        (rule_by_id(rule).expect("known rule").check)(&lex(src), "crates/x/src/f.rs")
    }

    #[test]
    fn hash_collections_hits_types_not_strings() {
        assert_eq!(run("hash-collections", "let m = HashMap::new();").len(), 1);
        assert!(run("hash-collections", "let s = \"HashMap\"; // HashMap").is_empty());
        assert!(run("hash-collections", "let m = BTreeMap::new();").is_empty());
    }

    #[test]
    fn wallclock_hits_clocks_and_env() {
        assert_eq!(run("wallclock", "let t = Instant::now();").len(), 1);
        assert_eq!(run("wallclock", "std::env::var(\"X\")").len(), 1);
        assert_eq!(run("wallclock", "env!(\"PATH\")").len(), 1);
        assert!(run("wallclock", "let env = 3; env.max(1);").is_empty());
        assert!(run("wallclock", "Duration::from_secs(1)").is_empty());
    }

    #[test]
    fn rng_literal_seeds_only() {
        assert_eq!(run("rng-seed-literal", "SplitMix64::new(42)").len(), 1);
        assert!(run("rng-seed-literal", "SplitMix64::new(seed ^ 3)").is_empty());
        assert!(run("rng-seed-literal", "SplitMix64::seed_from_labels(&[a])").is_empty());
    }

    #[test]
    fn narrowing_casts_flag_narrow_targets_only() {
        assert_eq!(run("narrowing-cast", "x as u32").len(), 1);
        assert_eq!(run("narrowing-cast", "x as usize").len(), 1);
        assert!(run("narrowing-cast", "x as u64").is_empty());
        assert!(run("narrowing-cast", "x as f64").is_empty());
    }

    #[test]
    fn unchecked_arith_distinguishes_binary_from_deref() {
        assert_eq!(run("unchecked-arith", "a + b").len(), 1);
        assert_eq!(run("unchecked-arith", "a += b;").len(), 1);
        assert_eq!(run("unchecked-arith", "f(x) * 2").len(), 1);
        assert!(run("unchecked-arith", "let v = *slot;").is_empty());
        assert!(run("unchecked-arith", "a.saturating_add(b)").is_empty());
        assert!(run("unchecked-arith", "a - b").is_empty());
    }

    #[test]
    fn float_accumulation_needs_map_iter_and_reduce() {
        assert_eq!(
            run("float-accumulation", "m.values().sum::<f64>()").len(),
            1
        );
        assert_eq!(run("float-accumulation", "m.keys().fold(0.0, f)").len(), 1);
        assert!(run("float-accumulation", "m.values().any(|x| x > 0)").is_empty());
        assert!(run("float-accumulation", "values.iter().sum::<f64>()").is_empty());
    }

    #[test]
    fn dram_bypass_hits_type_and_path() {
        assert_eq!(run("dram-bypass", "let d = RawDram::new();").len(), 1);
        assert_eq!(
            run("dram-bypass", "use tnpu_memprot::functional::dram;").len(),
            1
        );
        assert!(run("dram-bypass", "engine.read_block(addr)").is_empty());
    }

    #[test]
    fn version_table_scope_hits_ident() {
        assert_eq!(run("version-table-scope", "VersionTable::new()").len(), 1);
        assert!(run("version-table-scope", "table.version(t, 0)").is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots_only() {
        let rule = rule_by_id("forbid-unsafe").expect("known rule");
        let missing = (rule.check)(&lex("pub fn f() {}"), "crates/x/src/lib.rs");
        assert_eq!(missing.len(), 1);
        let present = (rule.check)(
            &lex("#![forbid(unsafe_code)]\npub fn f() {}"),
            "crates/x/src/lib.rs",
        );
        assert!(present.is_empty());
        let not_root = (rule.check)(&lex("pub fn f() {}"), "crates/x/src/other.rs");
        assert!(not_root.is_empty());
    }
}
